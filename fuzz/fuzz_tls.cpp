// libFuzzer harness for the incremental TLS record parser.
#include <cstddef>
#include <cstdint>

#include "drivers.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)wm::fuzz::drive_tls(wm::util::BytesView(data, size));
  return 0;
}
