#include "drivers.hpp"

#include <sstream>
#include <stdexcept>

#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/json.hpp"
#include "wm/util/time.hpp"

namespace wm::fuzz {

namespace {

/// In-memory stream over the fuzzer's bytes (streaming-parser path —
/// the mmap path is covered by the same parse code via the block/record
/// parsers, and fuzzing must not touch the filesystem).
std::istringstream byte_stream(util::BytesView data) {
  return std::istringstream(std::string(util::as_chars(data)));
}

/// The documented failure surface of the capture/JSON parsers:
/// std::runtime_error (malformed input) and ByteReader's bounds error.
/// Anything else — bad variant access, logic errors, raw UB — escapes
/// to the harness and counts as a finding.
template <typename Fn>
Outcome expect_rejection(Fn&& parse) {
  try {
    return parse();
  } catch (const std::runtime_error&) {
    return Outcome::kRejected;
  } catch (const util::OutOfBoundsError&) {
    return Outcome::kRejected;
  }
}

}  // namespace

std::string to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDesync: return "desync";
  }
  return "?";
}

Outcome drive_pcap(util::BytesView data) {
  return expect_rejection([data] {
    auto in = byte_stream(data);
    net::PcapReader reader(in);
    while (reader.next().has_value()) {
    }
    // Second pass through the zero-copy API: both must agree that the
    // input is well-formed.
    auto again = byte_stream(data);
    net::PcapReader views(again);
    while (views.next_view().has_value()) {
    }
    return Outcome::kOk;
  });
}

Outcome drive_pcapng(util::BytesView data) {
  return expect_rejection([data] {
    auto in = byte_stream(data);
    net::PcapngReader reader(in);
    while (reader.next().has_value()) {
    }
    return Outcome::kOk;
  });
}

Outcome drive_tls(util::BytesView data) {
  if (data.empty()) return Outcome::kOk;
  // Byte 0 selects the chunking so corpus entries pin specific split
  // positions (mid-header, mid-record) rather than always feeding one
  // contiguous buffer.
  const std::size_t chunk = 1 + data[0] % 97;
  data = data.subspan(1);
  tls::TlsRecordParser parser;
  std::int64_t tick = 0;
  while (!data.empty()) {
    const std::size_t take = data.size() < chunk ? data.size() : chunk;
    (void)parser.feed(util::SimTime::from_nanos(tick++), data.first(take));
    data = data.subspan(take);
  }
  return parser.desynchronized() ? Outcome::kDesync : Outcome::kOk;
}

Outcome drive_json(util::BytesView data) {
  return expect_rejection([data] {
    const util::JsonValue value =
        util::JsonValue::parse(util::as_chars(data));
    // Round-trip: whatever parsed must serialize and re-parse to the
    // same document (canonical form is part of the side-channel model).
    const std::string dumped = value.dump();
    if (util::JsonValue::parse(dumped) != value) {
      throw std::logic_error("json round-trip mismatch");  // escapes: a bug
    }
    return Outcome::kOk;
  });
}

}  // namespace wm::fuzz
