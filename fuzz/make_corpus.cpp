// Seed-corpus generator: writes the committed fuzz/corpus/ tree.
//
//   gen_corpus <corpus-dir>
//
// Every seed is produced deterministically from the project's own
// writers (then surgically corrupted), so regenerating after a
// deliberate format change is one command. Each file name carries the
// Outcome the driver produced at generation time —
// `<name>.<outcome>` — and tests/test_fuzz_corpus.cpp asserts replays
// still produce that outcome: the taxonomy is pinned by the tree
// itself, with no side-channel expectations file.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "drivers.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace fs = std::filesystem;
using wm::fuzz::Outcome;
using wm::util::Bytes;
using wm::util::BytesView;

namespace {

using Driver = Outcome (*)(BytesView);

void emit(const fs::path& dir, const std::string& name, Driver driver,
          BytesView bytes) {
  const Outcome outcome = driver(bytes);
  fs::create_directories(dir);
  const fs::path path = dir / (name + "." + wm::fuzz::to_string(outcome));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  wm::util::write_all(out, bytes);
  if (!out) {
    std::cerr << "write failed: " << path << "\n";
    std::exit(2);
  }
  std::cout << path.string() << " (" << bytes.size() << " bytes)\n";
}

/// A tiny two-packet capture serialized by the project's own writer.
template <typename Writer>
Bytes capture_bytes() {
  std::ostringstream out;
  {
    Writer writer(out);
    Bytes frame;
    for (int i = 0; i < 64; ++i) frame.push_back(static_cast<std::uint8_t>(i));
    writer.write(wm::net::Packet(wm::util::SimTime::from_nanos(1'000), frame));
    frame.push_back(0xff);
    writer.write(wm::net::Packet(wm::util::SimTime::from_nanos(2'000), frame));
  }
  const std::string text = out.str();
  return Bytes(text.begin(), text.end());
}

Bytes truncated(BytesView bytes, std::size_t keep) {
  return Bytes(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(keep, bytes.size())));
}

void make_pcap(const fs::path& dir) {
  const Bytes good = capture_bytes<wm::net::PcapWriter>();
  emit(dir, "two-packets", wm::fuzz::drive_pcap, good);
  emit(dir, "empty", wm::fuzz::drive_pcap, Bytes{});
  emit(dir, "header-only", wm::fuzz::drive_pcap, truncated(good, 24));
  emit(dir, "truncated-file-header", wm::fuzz::drive_pcap,
       truncated(good, 17));
  emit(dir, "truncated-record-header", wm::fuzz::drive_pcap,
       truncated(good, 24 + 9));
  emit(dir, "truncated-record-body", wm::fuzz::drive_pcap,
       truncated(good, 24 + 16 + 30));
  Bytes bad_magic = good;
  bad_magic[0] ^= 0x5a;
  emit(dir, "bad-magic", wm::fuzz::drive_pcap, bad_magic);
  Bytes huge_record = good;
  // captured-length field of record 1 inflated past the buffer.
  huge_record[24 + 8] = 0xff;
  huge_record[24 + 9] = 0xff;
  emit(dir, "captured-length-lies", wm::fuzz::drive_pcap, huge_record);
}

void make_pcapng(const fs::path& dir) {
  const Bytes good = capture_bytes<wm::net::PcapngWriter>();
  emit(dir, "two-packets", wm::fuzz::drive_pcapng, good);
  emit(dir, "empty", wm::fuzz::drive_pcapng, Bytes{});
  // ISSUE case: a block whose declared total length runs past EOF.
  emit(dir, "truncated-shb", wm::fuzz::drive_pcapng, truncated(good, 11));
  emit(dir, "truncated-mid-block", wm::fuzz::drive_pcapng,
       truncated(good, good.size() - 13));
  Bytes bad_bom = good;
  bad_bom[8] ^= 0xff;  // byte-order magic inside the SHB body
  emit(dir, "bad-byte-order-magic", wm::fuzz::drive_pcapng, bad_bom);
  Bytes tiny_len = good;
  tiny_len[4] = 8;  // SHB total length below the 12-byte minimum
  tiny_len[5] = 0;
  tiny_len[6] = 0;
  tiny_len[7] = 0;
  emit(dir, "block-length-below-minimum", wm::fuzz::drive_pcapng, tiny_len);
  Bytes odd_len = good;
  odd_len[4] = static_cast<std::uint8_t>(odd_len[4] + 2);  // break 4-align
  emit(dir, "block-length-unaligned", wm::fuzz::drive_pcapng, odd_len);
}

/// Prepend the chunk-size selector byte the TLS driver consumes.
Bytes with_chunking(std::uint8_t selector, BytesView stream) {
  Bytes out;
  out.push_back(selector);
  out.insert(out.end(), stream.begin(), stream.end());
  return out;
}

void make_tls(const fs::path& dir) {
  std::vector<wm::tls::TlsRecord> records(2);
  records[0].payload.assign(200, 0xaa);
  records[1].payload.assign(1400, 0xbb);
  const Bytes stream = wm::tls::serialize_records(records);

  // selector 0 -> 1-byte chunks: every split position, including all
  // four mid-header cuts and every mid-record cut (the ISSUE's
  // "mid-record split" case in its most hostile form).
  emit(dir, "two-records-one-byte-chunks", wm::fuzz::drive_tls,
       with_chunking(0, stream));
  // 96 -> 97-byte chunks: splits that land mid-record at varying phase.
  emit(dir, "two-records-97-byte-chunks", wm::fuzz::drive_tls,
       with_chunking(96, stream));
  emit(dir, "truncated-final-record", wm::fuzz::drive_tls,
       with_chunking(12, BytesView(stream).first(stream.size() - 37)));
  emit(dir, "empty", wm::fuzz::drive_tls, Bytes{});

  Bytes garbage(64, 0x00);
  emit(dir, "desync-zero-type", wm::fuzz::drive_tls,
       with_chunking(7, garbage));
  Bytes oversize = stream;
  oversize[3 + 1] = 0x50;  // record length field above kMaxCiphertextLength
  emit(dir, "desync-implausible-length", wm::fuzz::drive_tls,
       with_chunking(30, oversize));

  // --- Resync-scanner seeds: excised spans and garbage runs that force
  // the parser out of lock, pinning whether the chain validator re-locks
  // (enough trailing records) or keeps scanning (chain cut short).
  std::vector<wm::tls::TlsRecord> eight(8);
  for (wm::tls::TlsRecord& record : eight) record.payload.assign(300, 0xaa);
  const Bytes long_stream = wm::tls::serialize_records(eight);
  // A lost-segment cut: bytes [400, 700) vanish, splicing record 1's
  // payload onto record 2's tail. The parser silently swallows spliced
  // bytes as payload, lands misaligned in ciphertext, scans, and must
  // chain the surviving tail records to re-lock.
  Bytes excised(long_stream.begin(), long_stream.begin() + 400);
  excised.insert(excised.end(), long_stream.begin() + 700, long_stream.end());
  emit(dir, "resync-after-excised-span", wm::fuzz::drive_tls,
       with_chunking(19, excised));
  // Garbage then only two records: a consistent-but-inconclusive chain
  // at end of input (the driver never flushes), so the scanner must
  // hold out rather than re-lock on thin evidence.
  Bytes short_chain(32, 0x00);
  short_chain.insert(short_chain.end(), stream.begin(), stream.end());
  emit(dir, "desync-resync-chain-cut-short", wm::fuzz::drive_tls,
       with_chunking(4, short_chain));
  // Locked -> scanning transition with nothing to re-lock on: good
  // records followed by a candidate-free garbage tail.
  Bytes garbage_tail = stream;
  garbage_tail.insert(garbage_tail.end(), 64, 0x41);
  emit(dir, "desync-garbage-tail", wm::fuzz::drive_tls,
       with_chunking(13, garbage_tail));
  // A plausible-looking header inside garbage whose length field points
  // back into garbage: the chain validator must reject it and re-lock
  // on the real records that follow.
  Bytes false_candidate(20, 0x00);
  const std::uint8_t decoy[] = {0x17, 0x03, 0x03, 0x00, 0x10};
  false_candidate.insert(false_candidate.end(), std::begin(decoy),
                         std::end(decoy));
  false_candidate.insert(false_candidate.end(), 16, 0x00);
  false_candidate.insert(false_candidate.end(), long_stream.begin(),
                         long_stream.begin() + 4 * 305);
  emit(dir, "resync-skips-false-candidate", wm::fuzz::drive_tls,
       with_chunking(44, false_candidate));
}

void make_json(const fs::path& dir) {
  const auto text_bytes = [](std::string_view text) {
    const BytesView view = wm::util::as_bytes(text);
    return Bytes(view.begin(), view.end());
  };
  emit(dir, "state-shape", wm::fuzz::drive_json,
       text_bytes(R"({"choices":[{"id":"a1","weight":1.5},null,true],)"
                  R"("token":"é\n","segments":[[0,1],[2,3]]})"));
  emit(dir, "empty", wm::fuzz::drive_json, Bytes{});
  emit(dir, "trailing-garbage", wm::fuzz::drive_json, text_bytes("{} x"));
  emit(dir, "bad-escape", wm::fuzz::drive_json, text_bytes(R"("\q")"));
  emit(dir, "unterminated-string", wm::fuzz::drive_json,
       text_bytes("\"never closed"));
  emit(dir, "number-overflow", wm::fuzz::drive_json,
       text_bytes("999999999999999999999999999"));
  // ISSUE case: nesting far past the parser's 192-level cap — must be
  // a clean rejection, never a stack overflow.
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "[{\"k\":";
  emit(dir, "nested-past-depth-cap", wm::fuzz::drive_json,
       text_bytes(deep));
  std::string near_cap;
  for (int i = 0; i < 95; ++i) near_cap += "[";
  near_cap += "0";
  for (int i = 0; i < 95; ++i) near_cap += "]";
  emit(dir, "nested-near-depth-cap", wm::fuzz::drive_json,
       text_bytes(near_cap));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-dir>\n";
    return 2;
  }
  const fs::path root = argv[1];
  make_pcap(root / "pcap");
  make_pcapng(root / "pcapng");
  make_tls(root / "tls");
  make_json(root / "json");
  return 0;
}
