// Standalone replacement for libFuzzer's driver, used when the compiler
// has no -fsanitize=fuzzer runtime (GCC). Links against the same
// LLVMFuzzerTestOneInput as the fuzzing build and replays the files
// given on the command line, so `fuzz_pcap corpus/pcap/*` behaves the
// same in both toolchains (minus the mutation loop).
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <input-file>...\n"
              << "(no-mutation replay driver; build with Clang and "
                 "-DWM_FUZZ=ON for real fuzzing)\n";
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    const std::vector<std::uint8_t> data(bytes.begin(), bytes.end());
    (void)LLVMFuzzerTestOneInput(data.data(), data.size());
    std::cout << argv[i] << ": ok (" << data.size() << " bytes)\n";
  }
  return 0;
}
