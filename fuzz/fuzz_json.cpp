// libFuzzer harness for the JSON document parser.
#include <cstddef>
#include <cstdint>

#include "drivers.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)wm::fuzz::drive_json(wm::util::BytesView(data, size));
  return 0;
}
