// libFuzzer harness for the classic-pcap stream reader.
#include <cstddef>
#include <cstdint>

#include "drivers.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)wm::fuzz::drive_pcap(wm::util::BytesView(data, size));
  return 0;
}
