// Fuzz entry points for the four hostile-input parsers.
//
// Each driver feeds raw bytes to one parser exactly the way the attack
// pipeline does, translates the parser's *expected* failure modes into
// an Outcome, and lets anything unexpected (segfault, sanitizer abort,
// uncaught foreign exception) escape — that escape is what the fuzzer
// and the corpus-replay test are hunting for.
//
// The same four functions back three harness shapes:
//   * libFuzzer binaries (fuzz_pcap etc.) under -DWM_FUZZ=ON with Clang,
//   * standalone file-replay binaries with any other compiler, and
//   * tests/test_fuzz_corpus.cpp, which replays the committed corpus in
//     every plain build and asserts the error taxonomy stays stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "wm/util/bytes.hpp"

namespace wm::fuzz {

/// How a parser disposed of one input. The taxonomy is deliberately
/// coarse — replay tests assert it is *stable*, i.e. a given corpus
/// file keeps producing the same Outcome until the parser's contract
/// deliberately changes.
enum class Outcome {
  kOk = 0,     // parsed to completion
  kRejected,   // parser threw one of its documented error types
  kDesync,     // TLS parser entered its terminal desynchronized state
};

[[nodiscard]] std::string to_string(Outcome outcome);

/// Classic pcap: stream-parse every record, both next() and read_all().
[[nodiscard]] Outcome drive_pcap(util::BytesView data);

/// pcapng: stream-parse every block, including unknown-type skipping.
[[nodiscard]] Outcome drive_pcapng(util::BytesView data);

/// TLS record layer: the first input byte picks a chunk size so one
/// corpus tree exercises many mid-record split positions; the rest is
/// the stream.
[[nodiscard]] Outcome drive_tls(util::BytesView data);

/// JSON document model: parse, and round-trip dump on success.
[[nodiscard]] Outcome drive_json(util::BytesView data);

}  // namespace wm::fuzz
