// Online eavesdropper: feeds a merged two-viewer capture through the
// streaming engine packet by packet (as a tap would) and prints each
// viewer's decoded choices the moment the corresponding TLS record is
// observed — demonstrating that the attack is real-time and separates
// concurrent viewers behind one vantage point.
//
// The engine does all the plumbing the old version of this example did
// by hand: per-flow reassembly, record extraction, classification, and
// per-client decoding, sharded across worker threads. This program is
// just a sink.
#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"

using namespace wm;

int main(int argc, char** argv) {
  util::CliParser cli("live_monitor", "online multi-viewer choice inference demo");
  cli.add_int("seed", "first victim session seed", 99);
  cli.add_int("shards", "engine worker threads (0 = inline)", 2);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const story::StoryGraph graph = story::make_bandersnatch();

  // Calibrate offline once.
  std::vector<story::Choice> calib_choices;
  for (int i = 0; i < 13; ++i) {
    calib_choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                       : story::Choice::kDefault);
  }
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig calib_config;
    calib_config.seed = 4242 + s;
    auto calib = sim::simulate_session(graph, calib_choices, calib_config);
    calibration.push_back(core::CalibrationSession{
        std::move(calib.capture.packets), std::move(calib.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Two victims behind the same tap, starts offset by a couple seconds.
  std::vector<story::Choice> victim_choices{
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kNonDefault, story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault};

  std::vector<net::Packet> merged;
  std::map<std::string, sim::SessionGroundTruth> truths;
  for (int v = 0; v < 2; ++v) {
    sim::SessionConfig config;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed")) +
                  static_cast<std::uint64_t>(v);
    if (v == 1) {
      config.packetize.client_ip = net::Ipv4Address(10, 0, 0, 77);
      config.packetize.cdn_client_port = 53342;
      config.packetize.api_client_port = 53343;
      std::reverse(victim_choices.begin(), victim_choices.end());
    }
    auto victim = sim::simulate_session(graph, victim_choices, config);
    truths.emplace(victim.capture.client_ip.to_string(), victim.truth);
    for (net::Packet& packet : victim.capture.packets) {
      packet.timestamp += util::Duration::millis(2300) * v;
      merged.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });

  std::printf("monitoring %zu packets from %zu viewers...\n\n", merged.size(),
              truths.size());

  // Live output: the engine invokes the sink from its worker threads on
  // every significant (type-1/type-2) record, with a fresh best-effort
  // decode of that viewer's session so far.
  std::mutex print_mutex;
  std::map<std::string, std::size_t> last_question_count;
  core::InferOptions options;
  options.shards = static_cast<std::size_t>(cli.get_int("shards"));
  options.per_client = true;
  options.sink = [&](const engine::ViewerUpdate& update) {
    const std::lock_guard<std::mutex> lock(print_mutex);
    const auto& session = update.session;
    if (update.record_class == core::RecordClass::kType1Json) {
      std::size_t& seen = last_question_count[update.client];
      if (session.questions.size() <= seen) return;  // duplicate suppressed
      seen = session.questions.size();
      std::printf("[%s] %s: Q%zu appeared (record %u B) — assuming DEFAULT "
                  "until overridden\n",
                  update.at.to_string().c_str(), update.client.c_str(),
                  session.questions.size(), update.record_length);
    } else if (!session.questions.empty()) {
      std::printf("[%s] %s: Q%zu OVERRIDE: viewer picked the NON-DEFAULT "
                  "branch (record %u B)\n",
                  update.at.to_string().c_str(), update.client.c_str(),
                  session.questions.size(), update.record_length);
    }
  };

  engine::VectorSource source(&merged);
  const core::InferReport report = attack.infer(source, options);

  std::printf("\nsession over: %s\n", report.stats.to_string().c_str());
  for (const auto& [client, session] : report.per_client) {
    std::printf("\nviewer %s decoded %zu questions:", client.c_str(),
                session.questions.size());
    for (const auto& q : session.questions) {
      std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
    }
    std::printf("\n  ground truth was:          ");
    for (const auto& q : truths.at(client).questions) {
      std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
