// Online eavesdropper: consumes a capture packet by packet (as a tap
// would) and prints choices the moment the corresponding record is
// observed — demonstrating that the attack is real-time, not post-hoc.
//
// Uses the streaming RecordStreamExtractor: after every packet we
// drain any newly completed TLS records, classify them, and update the
// running choice decode.
#include <cstdio>
#include <map>
#include <optional>

#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/cli.hpp"

using namespace wm;

namespace {

/// Incremental decoder: same semantics as core::decode_choices, fed one
/// observation at a time.
class LiveDecoder {
 public:
  explicit LiveDecoder(const core::RecordClassifier& classifier)
      : classifier_(classifier) {}

  void on_record(const tls::RecordEvent& event) {
    if (!event.is_client_application_data()) return;
    switch (classifier_.classify(event.record_length)) {
      case core::RecordClass::kType1Json: {
        if (has_last_type1_ &&
            event.timestamp - last_type1_ < util::Duration::millis(120)) {
          break;
        }
        has_last_type1_ = true;
        last_type1_ = event.timestamp;
        ++questions_;
        std::printf("[%s] Q%zu appeared (record %u B) — assuming DEFAULT until "
                    "overridden\n",
                    event.timestamp.to_string().c_str(), questions_,
                    event.record_length);
        overridden_ = false;
        break;
      }
      case core::RecordClass::kType2Json:
        if (questions_ == 0 || overridden_) break;
        overridden_ = true;
        std::printf("[%s] Q%zu OVERRIDE: viewer picked the NON-DEFAULT branch "
                    "(record %u B)\n",
                    event.timestamp.to_string().c_str(), questions_,
                    event.record_length);
        break;
      case core::RecordClass::kOther:
        break;
    }
  }

  [[nodiscard]] std::size_t questions() const { return questions_; }

 private:
  const core::RecordClassifier& classifier_;
  util::SimTime last_type1_;
  bool has_last_type1_ = false;
  std::size_t questions_ = 0;
  bool overridden_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("live_monitor", "online choice inference demo");
  cli.add_int("seed", "victim session seed", 99);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const story::StoryGraph graph = story::make_bandersnatch();

  // Calibrate offline once.
  std::vector<story::Choice> calib_choices;
  for (int i = 0; i < 13; ++i) {
    calib_choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                       : story::Choice::kDefault);
  }
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig calib_config;
    calib_config.seed = 4242 + s;
    auto calib = sim::simulate_session(graph, calib_choices, calib_config);
    calibration.push_back(core::CalibrationSession{
        std::move(calib.capture.packets), std::move(calib.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Victim session to monitor.
  std::vector<story::Choice> victim_choices{
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kNonDefault, story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault};
  sim::SessionConfig victim_config;
  victim_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto victim = sim::simulate_session(graph, victim_choices, victim_config);

  std::printf("monitoring %zu packets as they arrive...\n\n",
              victim.capture.packets.size());

  // Streaming loop: packet in -> any completed records out -> decode.
  // RecordStreamExtractor accumulates per-flow state; we drain by
  // re-running finish() only at the end, so for live output we keep our
  // own per-flow reassembly here via the extractor's streaming sibling:
  // feed packets one at a time and track how many events we've consumed
  // per flow.
  tls::RecordStreamExtractor extractor;
  LiveDecoder decoder(attack.classifier());
  std::map<std::string, std::size_t> consumed;

  for (const net::Packet& packet : victim.capture.packets) {
    extractor.add_packet(packet);
    // Poll for new events (finish() is cheap relative to a demo).
    for (const auto& stream : extractor.finish()) {
      const std::string key = stream.flow.to_string();
      std::size_t& seen = consumed[key];
      for (std::size_t i = seen; i < stream.events.size(); ++i) {
        decoder.on_record(stream.events[i]);
      }
      seen = stream.events.size();
    }
  }

  std::printf("\nsession over: %zu questions observed\n", decoder.questions());
  std::printf("ground truth was:");
  for (const auto& q : victim.truth.questions) {
    std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
  }
  std::printf("\n");
  return 0;
}
