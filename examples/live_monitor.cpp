// Online eavesdropper: drives a merged two-viewer capture through the
// continuous monitor, which emits each viewer's inferred choice the
// moment its evidence window closes — no end-of-capture barrier — and
// then cross-checks the online answers against a batch decode of the
// same packets.
//
// This is the service-shaped version of the attack: wm::monitor keeps
// O(1) state per live viewer, ages idle viewers out through a timer
// wheel, and delivers typed events (question opened, choice inferred,
// viewer evicted) through engine::EventSink as they happen.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "wm/core/pipeline.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"

using namespace wm;

namespace {

/// Prints every monitor event as it fires (single-threaded delivery —
/// no locking needed, unlike an engine sink with shards > 0).
class PrintSink final : public engine::EventSink {
 public:
  void on_question_opened(const engine::QuestionOpenedEvent& event) override {
    std::printf("[%s] %s: Q%zu appeared (record %u B) — assuming DEFAULT "
                "until overridden\n",
                event.question.question_time.to_string().c_str(),
                std::string(event.client).c_str(), event.question.index + 1,
                event.record_length);
  }
  void on_choice_inferred(const engine::ChoiceInferredEvent& event) override {
    if (!event.final) return;
    const bool overridden =
        event.question.choice == story::Choice::kNonDefault;
    std::printf("[%s] %s: Q%zu FINAL: %s (confidence %.2f)\n",
                event.at.to_string().c_str(),
                std::string(event.client).c_str(), event.question.index + 1,
                overridden ? "NON-DEFAULT branch" : "default branch",
                event.question.confidence);
    if (overridden) ++overrides_;
  }
  void on_viewer_evicted(const engine::ViewerEvictedEvent& event) override {
    std::printf("[%s] %s: viewer retired (%zu questions)\n",
                event.at.to_string().c_str(),
                std::string(event.client).c_str(), event.questions_emitted);
  }

  [[nodiscard]] std::size_t overrides() const { return overrides_; }

 private:
  std::size_t overrides_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("live_monitor", "online multi-viewer choice inference demo");
  cli.add_int("seed", "first victim session seed", 99);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const story::StoryGraph graph = story::make_bandersnatch();

  // Calibrate offline once.
  std::vector<story::Choice> calib_choices;
  for (int i = 0; i < 13; ++i) {
    calib_choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                       : story::Choice::kDefault);
  }
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig calib_config;
    calib_config.seed = 4242 + s;
    auto calib = sim::simulate_session(graph, calib_choices, calib_config);
    calibration.push_back(core::CalibrationSession{
        std::move(calib.capture.packets), std::move(calib.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Two victims behind the same tap, starts offset by a couple seconds.
  std::vector<story::Choice> victim_choices{
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kNonDefault, story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault};

  std::vector<net::Packet> merged;
  std::map<std::string, sim::SessionGroundTruth> truths;
  for (int v = 0; v < 2; ++v) {
    sim::SessionConfig config;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed")) +
                  static_cast<std::uint64_t>(v);
    if (v == 1) {
      config.packetize.client_ip = net::Ipv4Address(10, 0, 0, 77);
      config.packetize.cdn_client_port = 53342;
      config.packetize.api_client_port = 53343;
      std::reverse(victim_choices.begin(), victim_choices.end());
    }
    auto victim = sim::simulate_session(graph, victim_choices, config);
    truths.emplace(victim.capture.client_ip.to_string(), victim.truth);
    for (net::Packet& packet : victim.capture.packets) {
      packet.timestamp += util::Duration::millis(2300) * v;
      merged.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });

  std::printf("monitoring %zu packets from %zu viewers...\n\n", merged.size(),
              truths.size());

  PrintSink sink;
  monitor::MonitorConfig config;
  config.viewer_idle_timeout = util::Duration::seconds(30);
  config.flow_idle_timeout = util::Duration::seconds(20);
  monitor::ContinuousMonitor monitor(attack.classifier(), config, &sink);
  engine::VectorSource source(&merged);
  monitor.consume(source);
  const monitor::MonitorStats stats = monitor.finish();

  std::printf("\nmonitoring over: %s\n", stats.to_string().c_str());

  // Cross-check: the batch pipeline over the same packets must agree
  // with what the monitor emitted online.
  core::InferOptions options;
  options.per_client = true;
  engine::VectorSource batch_source(&merged);
  const core::InferReport report = attack.infer(batch_source, options);
  for (const auto& [client, session] : report.per_client) {
    std::printf("\nviewer %s batch-decoded %zu questions:", client.c_str(),
                session.questions.size());
    for (const auto& q : session.questions) {
      std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
    }
    std::printf("\n  ground truth was:                 ");
    for (const auto& q : truths.at(client).questions) {
      std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
