// Operational attack tool: recover viewer choices from pcap files.
//
//   capture_to_choices --calibrate c1.pcap:c1.json[,c2.pcap:c2.json...]
//                      --target victim.pcap [--classifier interval]
//
// Calibration pairs are {trace, ground-truth JSON} data points in the
// dataset's on-disk format (see generate_dataset / DESIGN.md). With
// --demo (default when no flags are given) the tool synthesizes its own
// calibration and target captures first, writes them to a temp
// directory, and then runs purely from the files — demonstrating that
// the pipeline operates on the same artefacts a real eavesdropper
// would have.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "wm/core/pipeline.hpp"
#include "wm/dataset/builder.hpp"
#include "wm/obs/registry.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/strings.hpp"

using namespace wm;
namespace fs = std::filesystem;

namespace {

core::CalibrationSession load_pair(const std::string& spec) {
  const auto parts = util::split(spec, ':');
  if (parts.size() != 2) {
    throw std::runtime_error("calibration pair must be trace.pcap:truth.json, got " +
                             spec);
  }
  core::CalibrationSession session;
  session.packets = net::read_any_capture(parts[0]);
  session.truth = dataset::read_ground_truth(parts[1]);
  return session;
}

/// Write demo captures and return (calibration spec, target path).
std::pair<std::string, std::string> make_demo(const fs::path& dir) {
  fs::create_directories(dir);
  const story::StoryGraph graph = story::make_bandersnatch();

  std::string calibration_spec;
  for (std::uint64_t s = 0; s < 2; ++s) {
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    sim::SessionConfig config;
    config.seed = 7700 + s;
    const auto session = sim::simulate_session(graph, choices, config);

    const fs::path trace = dir / util::format("calib_%llu.pcap",
                                              static_cast<unsigned long long>(s));
    const fs::path truth = dir / util::format("calib_%llu.json",
                                              static_cast<unsigned long long>(s));
    net::write_pcap(trace, session.capture.packets);
    std::ofstream out(truth);
    dataset::Viewer viewer;
    viewer.id = static_cast<std::uint32_t>(s + 1);
    out << dataset::ground_truth_to_json(viewer, session.truth, graph) << '\n';
    if (!calibration_spec.empty()) calibration_spec += ',';
    calibration_spec += trace.string() + ":" + truth.string();
  }

  std::vector<story::Choice> victim_choices{
      story::Choice::kDefault,    story::Choice::kNonDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kNonDefault, story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault,    story::Choice::kDefault,
      story::Choice::kDefault};
  sim::SessionConfig config;
  config.seed = 7800;
  const auto victim = sim::simulate_session(graph, victim_choices, config);
  const fs::path target = dir / "victim.pcap";
  net::write_pcap(target, victim.capture.packets);
  std::printf("demo victim's true choices:");
  for (const auto& q : victim.truth.questions) {
    std::printf(" %s", story::choice_notation(q.index, q.choice).c_str());
  }
  std::printf("\n\n");
  return {calibration_spec, target.string()};
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("capture_to_choices",
                      "recover interactive-video choices from pcap captures");
  cli.add_string("calibrate", "comma-separated trace.pcap:truth.json pairs", "");
  cli.add_string("target", "pcap to attack", "");
  cli.add_string("classifier", "interval | knn | gaussian-nb", "interval");
  cli.add_int("shards", "engine worker threads (0 = inline)", 0);
  cli.add_bool("metrics", "print the wm::obs stage report after the attack");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  try {
    std::string calibration_spec = cli.get_string("calibrate");
    std::string target = cli.get_string("target");
    if (calibration_spec.empty() || target.empty()) {
      std::printf("no inputs given: running self-contained demo\n");
      const auto demo = make_demo(fs::temp_directory_path() / "wm_capture_demo");
      calibration_spec = demo.first;
      target = demo.second;
    }

    core::AttackPipeline attack(cli.get_string("classifier"));
    // Observability: with --metrics every stage (calibration, capture
    // source, per-shard extraction, collector, decode) reports into a
    // registry and the run ends with the stage report. Without it, the
    // null registry costs nothing.
    obs::Registry registry;
    if (cli.get_bool("metrics")) attack.set_metrics(&registry);

    std::vector<core::CalibrationSession> calibration;
    for (const std::string& pair : util::split(calibration_spec, ',')) {
      calibration.push_back(load_pair(pair));
    }
    attack.calibrate(calibration);
    std::printf("calibrated '%s' classifier on %zu session(s)\n",
                cli.get_string("classifier").c_str(), calibration.size());

    core::InferOptions options;
    options.shards = static_cast<std::size_t>(cli.get_int("shards"));

    // The typed-error path: open/parse failures come back as a
    // wm::Result instead of an exception, so an operational tool can
    // distinguish "file missing" from "not a capture" from "corrupt".
    const auto result = attack.infer_capture(target, options);
    if (!result.ok()) {
      std::fprintf(stderr, "cannot analyse %s: %s\n", target.c_str(),
                   result.error().to_string().c_str());
      return result.error().code == ErrorCode::kNotFound ? 2 : 3;
    }
    const core::InferredSession& inferred = result->combined;
    std::printf("target: %s\n", target.c_str());
    std::printf("detected %zu questions (%zu type-1, %zu type-2, %zu other "
                "client records)\n\n",
                inferred.questions.size(), inferred.type1_records,
                inferred.type2_records, inferred.other_records);
    for (const auto& q : inferred.questions) {
      std::printf("  Q%zu at %s: %s", q.index, q.question_time.to_string().c_str(),
                  story::choice_notation(q.index, q.choice).c_str());
      if (q.override_time) {
        std::printf("  (override at %s)", q.override_time->to_string().c_str());
      }
      std::printf("\n");
    }

    const story::StoryGraph graph = story::make_bandersnatch();
    const auto path = core::reconstruct_path(graph, inferred.choices());
    std::printf("\nimplied path: %s\n",
                util::join(path.segment_names, " -> ").c_str());

    if (cli.get_bool("metrics")) {
      std::printf("\n%s", registry.snapshot().to_text().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
