// Build a synthetic IITM-Bandersnatch dataset on disk (§IV).
//
//   generate_dataset --out /tmp/iitm-bandersnatch --viewers 100 --seed 2019
//
// Produces the release layout:
//   <out>/manifest.json, viewers.csv, traces/viewer_NNN.pcap,
//   truth/viewer_NNN.json
// Default is 10 viewers so the example finishes in seconds; pass
// --viewers 100 for the full paper-scale cohort.
#include <cstdio>
#include <filesystem>

#include "wm/dataset/builder.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"

using namespace wm;

int main(int argc, char** argv) {
  util::CliParser cli("generate_dataset",
                      "synthesize the IITM-Bandersnatch dataset");
  cli.add_string("out", "output directory", "");
  cli.add_int("viewers", "cohort size", 10);
  cli.add_int("seed", "dataset seed", 2019);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::filesystem::path out = cli.get_string("out");
  if (out.empty()) {
    out = std::filesystem::temp_directory_path() / "iitm-bandersnatch";
  }

  const story::StoryGraph graph = story::make_bandersnatch();
  dataset::DatasetConfig config;
  config.viewer_count = static_cast<std::size_t>(cli.get_int("viewers"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("writing %zu-viewer dataset to %s ...\n", config.viewer_count,
              out.string().c_str());
  const std::size_t written = dataset::write_dataset(out, graph, config);

  // Verify by reading the manifest back.
  const auto index = dataset::read_manifest(out);
  std::printf("done: %zu data points; manifest lists %zu viewers\n", written,
              index.size());

  std::uintmax_t bytes = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(out)) {
    if (entry.is_regular_file()) bytes += entry.file_size();
  }
  std::printf("dataset size on disk: %.1f MiB\n",
              static_cast<double>(bytes) / (1024.0 * 1024.0));

  std::printf("\nfirst data points:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(index.size(), 5); ++i) {
    const auto truth = dataset::read_ground_truth(index[i].truth_file);
    std::printf("  viewer %03u  %-50s questions=%zu ending=%s\n",
                index[i].viewer.id,
                index[i].viewer.operational.to_string().c_str(),
                truth.questions.size(), truth.reached_ending ? "yes" : "no");
  }
  return 0;
}
