// Quickstart: the whole attack in one file.
//
// 1. Build the Bandersnatch-like story graph.
// 2. Simulate a calibration session (attacker watches the film once,
//    noting their own choices) and fit the interval classifier.
// 3. Simulate a victim session under different operating conditions.
// 4. Recover the victim's choices from the encrypted capture alone and
//    compare against ground truth.
//
//   ./quickstart [--seed N] [--victim-os Windows|Linux|Mac]
#include <cstdio>
#include <filesystem>

#include "wm/core/pipeline.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/net/pcap.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

sim::SessionResult simulate(const story::StoryGraph& graph,
                            const sim::OperationalConditions& conditions,
                            const std::vector<story::Choice>& choices,
                            std::uint64_t seed) {
  sim::SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return sim::simulate_session(graph, choices, config);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("quickstart", "White Mirror end-to-end demo");
  cli.add_int("seed", "base RNG seed", 42);
  cli.add_string("victim-os", "victim OS: Windows, Linux or Mac", "Linux");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const story::StoryGraph graph = story::make_bandersnatch();
  std::printf("film: %s (%zu segments, %zu choice points)\n\n",
              graph.title().c_str(), graph.segment_count(),
              graph.choice_segments().size());

  // --- 1. Attacker calibrates on their own viewing ---------------------
  sim::OperationalConditions calib_conditions;  // Linux/Firefox desktop
  util::Rng calib_rng(seed);
  dataset::BehavioralAttributes calib_behavior;
  const auto calib_choices = dataset::draw_choices(graph, calib_behavior, calib_rng);
  sim::SessionResult calib = simulate(graph, calib_conditions, calib_choices, seed);

  core::AttackPipeline attack("interval");
  attack.calibrate({core::CalibrationSession{calib.capture.packets, calib.truth}});
  const auto& classifier =
      dynamic_cast<const core::IntervalClassifier&>(attack.classifier());
  std::printf("calibrated bands: type-1 JSON = %s, type-2 JSON = %s bytes\n\n",
              classifier.type1_band().to_string().c_str(),
              classifier.type2_band().to_string().c_str());

  // --- 2. Victim watches under their own conditions --------------------
  sim::OperationalConditions victim_conditions = calib_conditions;
  const std::string os = cli.get_string("victim-os");
  if (auto parsed = dataset::parse_os(os)) {
    victim_conditions.os = *parsed;
  } else {
    std::fprintf(stderr, "unknown OS '%s'\n", os.c_str());
    return 1;
  }

  util::Rng victim_rng(seed + 1);
  dataset::BehavioralAttributes victim_behavior;
  victim_behavior.mood = dataset::StateOfMind::kStressed;
  const auto victim_choices =
      dataset::draw_choices(graph, victim_behavior, victim_rng);
  sim::SessionResult victim =
      simulate(graph, victim_conditions, victim_choices, seed + 1);
  std::printf("victim session: %zu packets, %zu questions answered, conditions %s\n",
              victim.capture.packets.size(), victim.truth.questions.size(),
              victim_conditions.to_string().c_str());

  // --- 3. Attack: encrypted capture -> choices -------------------------
  wm::engine::VectorSource victim_source(&victim.capture.packets);
  const core::InferredSession inferred = attack.infer(victim_source).combined;
  const core::InferredPath path =
      core::reconstruct_path(graph, inferred.choices());

  std::printf("\n%-4s %-38s %-12s %-12s %s\n", "Q", "prompt", "truth", "inferred",
              "ok");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < victim.truth.questions.size(); ++i) {
    const auto& truth = victim.truth.questions[i];
    const char* inferred_label =
        i < inferred.questions.size()
            ? (inferred.questions[i].choice == story::Choice::kDefault
                   ? "default"
                   : "non-default")
            : "(missed)";
    const bool ok = i < inferred.questions.size() &&
                    inferred.questions[i].choice == truth.choice;
    if (ok) ++correct;
    std::printf("Q%-3zu %-38.38s %-12s %-12s %s\n", truth.index,
                truth.prompt.c_str(), story::to_string(truth.choice).c_str(),
                inferred_label, ok ? "yes" : "NO");
  }
  std::printf("\nrecovered %zu/%zu choices (%s)\n", correct,
              victim.truth.questions.size(),
              util::format_percent(victim.truth.questions.empty()
                                       ? 1.0
                                       : static_cast<double>(correct) /
                                             static_cast<double>(
                                                 victim.truth.questions.size()))
                  .c_str());

  std::printf("\ninferred path through the film:\n");
  for (const std::string& name : path.segment_names) {
    std::printf("  -> %s\n", name.c_str());
  }

  // --- 4. Same attack, from a capture file -----------------------------
  // infer_capture() returns wm::Result: failures are typed error codes,
  // not exceptions, so callers can branch on what went wrong.
  const auto pcap_path =
      std::filesystem::temp_directory_path() / "wm_quickstart_victim.pcap";
  net::write_pcap(pcap_path, victim.capture.packets);
  const auto from_file = attack.infer_capture(pcap_path);
  if (!from_file.ok()) {
    std::fprintf(stderr, "pcap analysis failed: %s\n",
                 from_file.error().to_string().c_str());
    return 1;
  }
  std::printf("\nre-ran from %s: %zu questions (matches in-memory run: %s)\n",
              pcap_path.c_str(), from_file->combined.questions.size(),
              from_file->combined.questions.size() == inferred.questions.size()
                  ? "yes"
                  : "NO");
  const auto missing = attack.infer_capture(pcap_path.string() + ".does-not-exist");
  std::printf("a missing file reports a typed error, no throw: [%s]\n",
              missing.ok() ? "??" : missing.error().to_string().c_str());
  std::filesystem::remove(pcap_path);
  return 0;
}
