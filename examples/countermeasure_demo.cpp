// Defence walkthrough (§VI): what each countermeasure does to the
// attacker's view of one viewing session, and what the timing channel
// still reveals afterwards.
#include <cstdio>

#include "wm/core/features.hpp"
#include "wm/counter/eval.hpp"
#include "wm/counter/timing_attack.hpp"
#include "wm/counter/transforms.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/stats.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

/// Show the client record-length histogram an eavesdropper sees for one
/// protected session, with the ground-truth class of each length noted.
void show_upload_lengths(const char* title,
                         const sim::ClientPayloadTransform& transform,
                         std::uint64_t seed) {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                 : story::Choice::kDefault);
  }
  sim::SessionConfig config;
  config.seed = seed;
  config.packetize.client_transform = transform;
  const auto session = sim::simulate_session(graph, choices, config);

  const auto observations = core::extract_client_records(session.capture.packets);
  const auto labelled = core::label_observations(observations, session.truth);

  std::array<util::IntHistogram, core::kRecordClassCount> by_class;
  for (const auto& item : labelled) {
    by_class[static_cast<std::size_t>(item.label)].add(
        item.observation.record_length);
  }

  std::printf("%s\n", title);
  for (std::size_t cls = 0; cls < core::kRecordClassCount; ++cls) {
    const auto band = util::covering_interval(by_class[cls]);
    std::printf("  %-12s count=%-4llu lengths=%s\n",
                core::to_string(static_cast<core::RecordClass>(cls)).c_str(),
                static_cast<unsigned long long>(by_class[cls].total()),
                band ? band->to_string().c_str() : "-");
  }

  // Are the JSON bands still distinguishable?
  const auto band1 = util::covering_interval(by_class[0]);
  const auto band2 = util::covering_interval(by_class[1]);
  const bool distinguishable = band1 && band2 && !band1->overlaps(*band2);
  std::printf("  JSON types distinguishable by length: %s\n\n",
              distinguishable ? "YES (attack works)" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("countermeasure_demo",
                      "show what each SectionVI defence does to the wire image");
  cli.add_int("seed", "session seed", 616);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("client upload record lengths under each defence\n");
  std::printf("(one session, viewer alternates non-default/default)\n\n");

  show_upload_lengths("defence: none", counter::identity_transform(), seed);
  show_upload_lengths("defence: compress(0.42)", counter::compress(0.42, 0.08),
                      seed);
  show_upload_lengths("defence: split(1024) — note the tail fragments",
                      counter::split_records(1024), seed);
  show_upload_lengths("defence: pad(4096)", counter::pad_to_bucket(4096), seed);
  show_upload_lengths("defence: split+pad(1024)", counter::split_and_pad(1024),
                      seed);

  // The residual timing channel, on the strongest defence.
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 3 == 0 ? story::Choice::kNonDefault
                                 : story::Choice::kDefault);
  }
  sim::SessionConfig config;
  config.seed = seed + 1;
  config.packetize.client_transform = counter::split_and_pad(1024);
  const auto protected_session = sim::simulate_session(graph, choices, config);

  counter::TimingAttackConfig timing_config;
  const auto timing =
      counter::timing_attack(protected_session.capture.packets, timing_config);
  const auto score =
      core::score_session(protected_session.truth, timing.session);

  std::printf("timing attack against split+pad(1024):\n");
  std::printf("  true questions: %zu, windows detected: %zu\n",
              protected_session.truth.questions.size(), timing.windows_detected);
  for (std::size_t i = 0; i < timing.session.questions.size(); ++i) {
    const auto& q = timing.session.questions[i];
    const char* truth_label =
        i < protected_session.truth.questions.size()
            ? story::to_string(protected_session.truth.questions[i].choice).c_str()
            : "(none)";
    std::printf("  window %zu at %s -> inferred %s (truth: %s)\n", i + 1,
                q.question_time.to_string().c_str(),
                story::to_string(q.choice).c_str(), truth_label);
  }
  std::printf("  choices recovered by timing alone: %s\n",
              util::format_percent(score.choice_accuracy).c_str());
  std::printf("\nconclusion (§VI): hiding lengths is not enough — the\n"
              "prefetch/abort *process* of Fig. 1 remains visible in time.\n");
  return 0;
}
