// Platform-blind attack: the eavesdropper does NOT know the victim's
// OS or browser. They build a library of per-condition classifiers
// offline (their own devices), identify the victim's platform from the
// capture alone, and decode with the matched classifier.
//
//   ./fingerprint_attack [--victim-os Mac] [--victim-browser Firefox]
#include <cstdio>

#include "wm/core/fingerprint.hpp"
#include "wm/dataset/attributes.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

int main(int argc, char** argv) {
  util::CliParser cli("fingerprint_attack",
                      "attack a victim whose platform is unknown");
  cli.add_string("victim-os", "Windows | Linux | Mac", "Mac");
  cli.add_string("victim-browser", "Google-chrome | Firefox", "Firefox");
  cli.add_int("seed", "victim session seed", 77);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const story::StoryGraph graph = story::make_bandersnatch();

  // --- offline: build the per-condition library -----------------------
  std::vector<sim::OperationalConditions> library_conditions;
  for (auto os : {sim::OperatingSystem::kWindows, sim::OperatingSystem::kLinux,
                  sim::OperatingSystem::kMac}) {
    for (auto browser : {sim::Browser::kChrome, sim::Browser::kFirefox}) {
      sim::OperationalConditions c;
      c.os = os;
      c.browser = browser;
      library_conditions.push_back(c);
    }
  }
  std::printf("building classifier library for %zu conditions...\n",
              library_conditions.size());
  const auto library = core::ConditionFingerprinter::build_library(
      graph, library_conditions, /*sessions_per_condition=*/3, /*seed=*/24680);

  // --- the victim watches, platform unknown to the attacker -----------
  sim::OperationalConditions victim_conditions;
  const auto os = dataset::parse_os(cli.get_string("victim-os"));
  const auto browser = dataset::parse_browser(cli.get_string("victim-browser"));
  if (!os || !browser) {
    std::fprintf(stderr, "unknown OS or browser\n");
    return 1;
  }
  victim_conditions.os = *os;
  victim_conditions.browser = *browser;

  std::vector<story::Choice> choices;
  util::Rng choice_rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  for (int i = 0; i < 13; ++i) {
    choices.push_back(choice_rng.bernoulli(0.55) ? story::Choice::kDefault
                                                 : story::Choice::kNonDefault);
  }
  sim::SessionConfig config;
  config.conditions = victim_conditions;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed")) * 31 + 5;
  const auto victim = sim::simulate_session(graph, choices, config);
  std::printf("victim session captured: %zu packets (true platform: %s)\n\n",
              victim.capture.packets.size(),
              victim_conditions.to_string().c_str());

  // --- fingerprint, then attack ---------------------------------------
  const auto observations =
      core::extract_client_records(victim.capture.packets);
  std::printf("hypothesis scores (best first):\n");
  for (const auto& score : library.score(observations)) {
    std::printf("  %-50s t1=%-3zu t2=%-3zu %s\n",
                score.conditions.to_string().c_str(), score.type1_hits,
                score.type2_hits, score.plausible ? "plausible" : "-");
  }

  const auto result = library.infer(victim.capture.packets);
  if (!result.conditions) {
    std::printf("\nno plausible platform hypothesis — aborting.\n");
    return 1;
  }
  std::printf("\nidentified platform: %s\n", result.conditions->to_string().c_str());

  std::size_t correct = 0;
  for (std::size_t i = 0; i < victim.truth.questions.size(); ++i) {
    const bool ok = i < result.session.questions.size() &&
                    result.session.questions[i].choice ==
                        victim.truth.questions[i].choice;
    correct += ok ? 1 : 0;
    std::printf("  Q%zu: inferred %-12s truth %-12s %s\n", i + 1,
                i < result.session.questions.size()
                    ? story::to_string(result.session.questions[i].choice).c_str()
                    : "(missed)",
                story::to_string(victim.truth.questions[i].choice).c_str(),
                ok ? "ok" : "WRONG");
  }
  std::printf("\nrecovered %zu/%zu choices with no prior platform knowledge\n",
              correct, victim.truth.questions.size());
  return 0;
}
