// Figure 1 — "The streaming process of Black Mirror: Bandersnatch".
//
// Regenerates the paper's example: the viewer takes the DEFAULT branch
// S1 at Q1 and the NON-DEFAULT branch S2' at Q2. The bench prints the
// application-level timeline: Segment-0 chunk streaming, the type-1
// JSON at each question, default-branch prefetching inside the choice
// window, and — on the S2' override — the type-2 JSON plus the
// discarded prefetched chunks.
#include <cstdio>

#include "wm/sim/streaming.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::TrafficProfile profile =
      sim::make_traffic_profile(sim::OperationalConditions{});
  sim::StreamingConfig config;
  util::Rng rng(2019);

  // Fig. 1's example: S1 (default) then S2' (non-default).
  const std::vector<story::Choice> choices{story::Choice::kDefault,
                                           story::Choice::kNonDefault};
  const sim::AppTrace trace =
      sim::simulate_app_trace(graph, choices, profile, config, rng);

  std::printf("Figure 1 — streaming process (viewer picks S1, then S2')\n");
  std::printf("film: %s\n\n", graph.title().c_str());
  std::printf("%-10s %-4s %-6s %-9s %s\n", "time", "flow", "dir", "bytes",
              "event");

  std::size_t chunk_run = 0;
  auto flush_chunks = [&](const char* segment_name) {
    if (chunk_run == 0) return;
    std::printf("%-10s %-4s %-6s %-9s ... %zu more chunk transfers of %s ...\n",
                "", "", "", "", chunk_run, segment_name);
    chunk_run = 0;
  };

  std::string last_segment;
  for (const sim::AppEvent& event : trace.events) {
    const bool is_chunk_traffic =
        event.flow == sim::AppFlow::kCdn &&
        (event.from_client
             ? event.client_kind == sim::ClientMessageKind::kChunkRequest
             : true);
    const bool interesting =
        !is_chunk_traffic || event.is_prefetch || event.prefetch_aborted ||
        event.note.find("chunk 0") != std::string::npos;

    if (!interesting) {
      if (!event.from_client) ++chunk_run;
      if (event.segment != story::kInvalidSegment) {
        last_segment = graph.segment(event.segment).name;
      }
      continue;
    }
    flush_chunks(last_segment.c_str());

    std::string annotation = event.note;
    if (event.prefetch_aborted) annotation += "  [DISCARDED after S2' chosen]";
    std::printf("%-10s %-4s %-6s %-9zu %s\n", event.time.to_string().c_str(),
                sim::to_string(event.flow).c_str(),
                event.from_client ? "C->S" : "S->C", event.plaintext_size,
                annotation.c_str());
    if (event.segment != story::kInvalidSegment) {
      last_segment = graph.segment(event.segment).name;
    }
  }
  flush_chunks(last_segment.c_str());

  std::printf("\nground truth:\n");
  for (const sim::QuestionOutcome& q : trace.truth.questions) {
    std::printf("  Q%zu \"%s\": %s (%s)  question %s, decision %s\n", q.index,
                q.prompt.c_str(),
                story::choice_notation(q.index, q.choice).c_str(),
                story::to_string(q.choice).c_str(),
                q.question_time.to_string().c_str(),
                q.decision_time.to_string().c_str());
  }
  std::printf("\nFig. 1 invariants reproduced:\n");
  std::printf("  * one type-1 JSON per question (2 questions -> 2 uploads)\n");
  std::printf("  * prefetch of the DEFAULT branch during each choice window\n");
  std::printf("  * type-2 JSON only for the non-default pick at Q2\n");
  std::printf("  * prefetched S2 chunks discarded after S2' chosen\n");
  return 0;
}
