// Ingestion-path benchmark (hand-rolled timing, machine-readable JSON).
//
// Generates a multi-viewer pcap trace (a simulated session replayed
// with fresh flow identities per lap), then measures the capture
// ingestion layer end to end:
//  * reader throughput: buffered-istream per-packet next() (the
//    pre-zero-copy baseline path), istream read_batch, mmap read_batch
//    (recycled slots), and a pure mmap next_view() scan (zero-copy);
//  * queue handoff: a mutex+deque+condvar bounded queue (the engine's
//    old shard queue design) vs util::SpscRing;
//  * ingestion pipeline (the headline mmap+ring vs PR 2 comparison):
//    two-thread file -> queue -> consumer pipelines with analysis
//    stripped out — mmap views batched through a lock-free ring with
//    freelist recycling, against the PR 2 reader pushing owned packets
//    through the old mutex+deque queue;
//  * engine end-to-end: file -> analysis through the per-packet istream
//    path vs the batched mmap path.
//
// All reader paths must agree on the packet and byte totals — the
// benchmark aborts if they diverge, so it doubles as a coarse
// differential check on whatever trace size it is given.
//
//   perf_ingest [--mb 1024] [--json BENCH_pr3.json] [--smoke]
//
// --smoke shrinks everything to a couple of MB, validates the emitted
// JSON by re-parsing it, and exits non-zero on any failure: the
// `bench-smoke` ctest entry runs exactly that, so this binary cannot
// bit-rot silently.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/net/packet.hpp"
#include "wm/net/pcap.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/json.hpp"
#include "wm/util/spsc_ring.hpp"

using namespace wm;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The shared throughput-row shape every BENCH document uses (schema
/// version 2, bench_report.hpp).
using RunResult = bench::Throughput;

/// Build the trace: one simulated viewing session replayed `laps` times
/// through ChunkedReplaySource (fresh IPv4 identities per lap), written
/// straight to a pcap file. Returns {packets, payload bytes}.
RunResult generate_trace(const std::filesystem::path& path,
                         const std::vector<net::Packet>& base,
                         std::size_t laps) {
  engine::ChunkedReplaySource::Config config;
  config.laps = laps;
  engine::ChunkedReplaySource replay(base, config);
  RunResult out;
  net::PcapWriter writer(path);
  engine::PacketBatch batch;
  while (replay.read_batch(batch, 1024) != 0) {
    for (const net::Packet& packet : batch) {
      writer.write(packet);
      ++out.packets;
      out.bytes += packet.data.size();
    }
  }
  return out;
}

/// Forces the per-packet pull path: read_batch falls back to the base
/// class's next() adapter loop, the shape of the pre-batching engine.
class PerPacketAdapter final : public engine::PacketSource {
 public:
  explicit PerPacketAdapter(engine::PacketSource& inner) : inner_(inner) {}
  std::optional<net::Packet> next() override { return inner_.next(); }
  [[nodiscard]] const std::optional<Error>& error() const override {
    return inner_.error();
  }

 private:
  engine::PacketSource& inner_;
};

/// A faithful replica of the pre-zero-copy PcapReader read pattern —
/// the measured baseline: an EOF peek plus four separate 4-byte
/// istream reads per record header, then a freshly constructed Packet
/// whose resize() allocates and zero-fills before the payload read
/// overwrites it. This is what every packet used to cost before the
/// mmap fast path, bulk header reads and slot recycling.
class Pr2BaselineReader {
 public:
  explicit Pr2BaselineReader(const std::filesystem::path& path)
      : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("baseline: cannot open " + path.string());
    const std::uint32_t magic = read_u32();
    nanos_ = magic == 0xa1b23c4du;  // trace is always ours: never swapped
    for (int i = 0; i < 3; ++i) (void)read_u32();  // versions, zone, sigfigs
    snaplen_ = read_u32();
    (void)read_u32();  // link type
  }

  std::optional<net::Packet> next() {
    if (in_.peek() == std::char_traits<char>::eof()) return std::nullopt;
    const std::uint32_t seconds = read_u32();
    const std::uint32_t fraction = read_u32();
    const std::uint32_t captured = read_u32();
    const std::uint32_t original = read_u32();
    net::Packet packet;
    const std::uint64_t nanos =
        static_cast<std::uint64_t>(seconds) * 1'000'000'000ull +
        (nanos_ ? fraction : static_cast<std::uint64_t>(fraction) * 1'000ull);
    packet.timestamp = util::SimTime::from_nanos(static_cast<std::int64_t>(nanos));
    packet.data.resize(captured);
    if (util::read_exact(in_, packet.data.data(), captured) != captured) {
      throw std::runtime_error("baseline: truncated record");
    }
    packet.original_length = original;
    return packet;
  }

 private:
  std::uint32_t read_u32() {
    std::uint8_t bytes[4];
    if (util::read_exact(in_, bytes, 4) != 4) {
      throw std::runtime_error("baseline: unexpected end of file");
    }
    return static_cast<std::uint32_t>(bytes[0]) |
           (static_cast<std::uint32_t>(bytes[1]) << 8) |
           (static_cast<std::uint32_t>(bytes[2]) << 16) |
           (static_cast<std::uint32_t>(bytes[3]) << 24);
  }

  std::ifstream in_;
  bool nanos_ = true;
  std::uint32_t snaplen_ = 0;
};

/// PacketSource facade over the baseline reader, per-packet next()
/// only — the whole pre-batching ingest stack for the engine bench.
class Pr2BaselineSource final : public engine::PacketSource {
 public:
  explicit Pr2BaselineSource(const std::filesystem::path& path) : reader_(path) {}
  std::optional<net::Packet> next() override { return reader_.next(); }

 private:
  Pr2BaselineReader reader_;
};

RunResult bench_pr2_baseline(const std::filesystem::path& path) {
  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  Pr2BaselineReader reader(path);
  while (auto packet = reader.next()) {
    ++out.packets;
    out.bytes += packet->data.size();
  }
  out.seconds = seconds_since(start);
  return out;
}

// Every reader bench times the open as well as the sweep, so costs a
// path pays up front (e.g. mmap prefaulting) stay inside the window.
RunResult bench_source_next(const std::filesystem::path& path, bool allow_mmap) {
  engine::CaptureOptions options;
  options.allow_mmap = allow_mmap;
  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  auto source = engine::open_capture(path, options);
  if (!source.ok()) throw std::runtime_error(source.error().to_string());
  while (auto packet = (*source)->next()) {
    ++out.packets;
    out.bytes += packet->data.size();
  }
  out.seconds = seconds_since(start);
  if ((*source)->error()) throw std::runtime_error("source error mid-bench");
  return out;
}

RunResult bench_source_batch(const std::filesystem::path& path, bool allow_mmap,
                             std::size_t batch_size) {
  engine::CaptureOptions options;
  options.allow_mmap = allow_mmap;
  RunResult out;
  engine::PacketBatch batch;
  const auto start = std::chrono::steady_clock::now();
  auto source = engine::open_capture(path, options);
  if (!source.ok()) throw std::runtime_error(source.error().to_string());
  while ((*source)->read_batch(batch, batch_size) != 0) {
    for (const net::Packet& packet : batch) {
      ++out.packets;
      out.bytes += packet.data.size();
    }
  }
  out.seconds = seconds_since(start);
  if ((*source)->error()) throw std::runtime_error("source error mid-bench");
  return out;
}

/// Zero-copy ceiling: iterate reader views without materializing
/// packets at all.
RunResult bench_mmap_scan(const std::filesystem::path& path) {
  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  net::PcapReader reader(path);
  if (!reader.memory_mapped()) {
    throw std::runtime_error("mmap scan: reader fell back to istream");
  }
  while (const auto view = reader.next_view()) {
    ++out.packets;
    out.bytes += view->data.size();
  }
  out.seconds = seconds_since(start);
  return out;
}

/// The engine's pre-ring shard queue design: std::deque guarded by a
/// mutex with a condvar per edge. Kept here as the baseline half of the
/// mutex-vs-ring comparison and of the pipeline bench.
template <typename T>
class MutexDequeQueue {
 public:
  explicit MutexDequeQueue(std::size_t capacity) : capacity_(capacity) {}

  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  bool pop(T& value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// The headline "mmap + ring" measurement: this PR's ingestion pipeline
/// with the analysis stripped out, so only the moving of packets is on
/// the clock. A producer parses records straight out of the mapping
/// with next_view() and hands batches of views across a lock-free SPSC
/// ring to a consumer thread — no packet byte is ever copied, which is
/// sound precisely because mmap-backed views stay valid for the
/// reader's whole lifetime (istream scratch views die on the next
/// read). Batch vectors recycle through a freelist ring, engine-style.
RunResult bench_mmap_ring_pipeline(const std::filesystem::path& path,
                                   std::size_t batch_size) {
  using ViewBatch = std::vector<net::PacketView>;
  util::SpscRing<ViewBatch*> inbound(64);
  util::SpscRing<ViewBatch*> freelist(inbound.capacity() + 2);
  std::vector<std::unique_ptr<ViewBatch>> arena;
  for (std::size_t i = 0; i < inbound.capacity() + 2; ++i) {
    arena.push_back(std::make_unique<ViewBatch>());
    arena.back()->reserve(batch_size);
    ViewBatch* fresh = arena.back().get();
    (void)freelist.try_push(fresh);  // pre-start, single-threaded: always fits
  }

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::thread consumer([&] {
    ViewBatch* batch = nullptr;
    while (inbound.pop(batch)) {
      for (const net::PacketView& view : *batch) {
        ++packets;
        bytes += view.data.size();
      }
      batch->clear();
      freelist.push(batch);
    }
  });

  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  {
    net::PcapReader reader(path);
    if (!reader.memory_mapped()) {
      inbound.close();
      consumer.join();
      throw std::runtime_error("mmap ring pipeline: reader fell back to istream");
    }
    ViewBatch* pending = nullptr;
    freelist.pop(pending);
    while (const auto view = reader.next_view()) {
      pending->push_back(*view);
      if (pending->size() >= batch_size) {
        inbound.push(pending);
        freelist.pop(pending);
      }
    }
    if (!pending->empty()) inbound.push(pending);
    inbound.close();  // drains, then the consumer's pop returns false
    consumer.join();  // views reference the mapping: join before unmap
  }
  out.seconds = seconds_since(start);
  out.packets = packets;
  out.bytes = bytes;
  return out;
}

/// The same trace through the pre-PR ingestion pipeline: the PR 2
/// reader (per-field istream reads, a fresh allocation per packet)
/// feeding owned-packet batches through the old mutex+deque shard
/// queue, with a fresh batch vector per handoff as the deque-of-batches
/// design had (nothing recycled; the consumer frees every batch).
RunResult bench_pr2_pipeline(const std::filesystem::path& path,
                             std::size_t batch_size) {
  using Batch = std::vector<net::Packet>;
  MutexDequeQueue<Batch> queue(64);

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::thread consumer([&] {
    Batch batch;
    while (queue.pop(batch)) {
      for (const net::Packet& packet : batch) {
        ++packets;
        bytes += packet.data.size();
      }
    }
  });

  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  Pr2BaselineReader reader(path);
  Batch pending;
  while (auto packet = reader.next()) {
    pending.push_back(std::move(*packet));
    if (pending.size() >= batch_size) {
      queue.push(std::move(pending));
      pending = Batch{};
    }
  }
  if (!pending.empty()) queue.push(std::move(pending));
  queue.close();
  consumer.join();
  out.seconds = seconds_since(start);
  out.packets = packets;
  out.bytes = bytes;
  return out;
}

/// Two-thread pipelines inherit cross-thread wakeup noise; median of 3.
template <typename BenchFn>
RunResult median_run(BenchFn bench) {
  std::vector<RunResult> runs;
  for (int rep = 0; rep < 3; ++rep) runs.push_back(bench());
  std::sort(runs.begin(), runs.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.seconds < b.seconds;
            });
  return runs[1];
}

template <typename Queue>
double bench_queue_once(Queue& queue, std::uint64_t items) {
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (queue.pop(value)) {
      ++received;
      checksum += value;
    }
  });
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t value = 0; value < items; ++value) {
    if (!queue.push(value)) break;
  }
  queue.close();
  consumer.join();
  const double elapsed = seconds_since(start);
  if (received != items || checksum != items * (items - 1) / 2) {
    throw std::runtime_error("queue bench lost or corrupted items");
  }
  return elapsed;
}

/// Cross-thread wakeup timing makes single runs noisy; take the median
/// of three fresh queues.
template <typename MakeQueue>
double bench_queue(MakeQueue make_queue, std::uint64_t items) {
  std::vector<double> runs;
  for (int rep = 0; rep < 3; ++rep) {
    auto queue = make_queue();
    runs.push_back(bench_queue_once(queue, items));
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

/// The batched-ring handoff: producer moves items through push_n in
/// fixed-size batches, consumer takes one blocking pop (parks when
/// empty) then drains opportunistically with try_pop_n. One index
/// publish and one wake edge per batch instead of per item — the fix
/// for ROADMAP item 2, where the per-item ring's seq_cst wake fence
/// let a mutex+deque with batched locking pull ahead.
double bench_ring_batched_once(util::SpscRing<std::uint64_t>& ring,
                               std::uint64_t items, std::size_t batch) {
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    std::vector<std::uint64_t> chunk(batch);
    std::uint64_t value = 0;
    while (ring.pop(value)) {
      ++received;
      checksum += value;
      for (;;) {
        const std::size_t n = ring.try_pop_n(chunk.data(), batch);
        if (n == 0) break;
        received += n;
        for (std::size_t i = 0; i < n; ++i) checksum += chunk[i];
      }
    }
  });
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> staged(batch);
  std::uint64_t next = 0;
  while (next < items) {
    std::size_t fill = 0;
    while (fill < batch && next < items) staged[fill++] = next++;
    if (ring.push_n(staged.data(), fill) != fill) break;
  }
  ring.close();
  consumer.join();
  const double elapsed = seconds_since(start);
  if (received != items || checksum != items * (items - 1) / 2) {
    throw std::runtime_error("batched queue bench lost or corrupted items");
  }
  return elapsed;
}

double bench_ring_batched(std::uint64_t items, std::size_t batch) {
  std::vector<double> runs;
  for (int rep = 0; rep < 3; ++rep) {
    util::SpscRing<std::uint64_t> ring(64);
    runs.push_back(bench_ring_batched_once(ring, items, batch));
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

/// Models the engine's dispatcher→worker batch-pointer cycle: tokens
/// (stand-ins for PacketBatch*) travel down an inbound ring and come
/// back through a freelist ring. The per-item shape is the retired
/// worker loop — one blocking pop and one freelist push per batch; the
/// batched shape is the current one — pop + try_pop_n drain (up to 8)
/// and a single push_n return per run. The row exists as a regression
/// tripwire: if the per-item shape ever wins again, the dispatcher
/// migration (ROADMAP item 2) has regressed.
double bench_dispatch_once(std::uint64_t handoffs, bool batched) {
  constexpr std::size_t kDrain = 8;  // mirrors Shard::kWorkerDrain
  util::SpscRing<std::uint64_t> inbound(64);
  util::SpscRing<std::uint64_t> freelist(64 + kDrain + 1);
  for (std::uint64_t token = 0; token < 64; ++token) {
    std::uint64_t value = token;
    if (!freelist.try_push(value)) break;
  }
  std::uint64_t received = 0;
  std::thread worker([&] {
    std::uint64_t value = 0;
    if (!batched) {
      while (inbound.pop(value)) {
        ++received;
        (void)freelist.push(value);
      }
    } else {
      std::uint64_t run[kDrain];
      while (inbound.pop(run[0])) {
        const std::size_t n = 1 + inbound.try_pop_n(run + 1, kDrain - 1);
        received += n;
        (void)freelist.push_n(run, n);
      }
    }
  });
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  std::uint64_t token = 0;
  while (sent < handoffs) {
    if (!freelist.pop(token)) break;
    if (!inbound.push(token)) break;
    ++sent;
  }
  inbound.close();
  worker.join();
  const double elapsed = seconds_since(start);
  if (received != handoffs) {
    throw std::runtime_error("dispatch bench lost handoffs");
  }
  return elapsed;
}

double bench_dispatch(std::uint64_t handoffs, bool batched) {
  std::vector<double> runs;
  for (int rep = 0; rep < 3; ++rep) {
    runs.push_back(bench_dispatch_once(handoffs, batched));
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

/// Per-stage decode rows: the raw packet->header step in isolation,
/// scalar parser chain vs column-wise slab, on packets preloaded into
/// memory so nothing but decode is on the clock. `bytes` is the TCP
/// payload bytes each path attributed — the two must agree exactly, so
/// this doubles as a whole-trace differential check on the decoders.
struct DecodeStageResults {
  RunResult scalar;
  RunResult slab;
};

DecodeStageResults bench_decode_stages(const std::filesystem::path& path) {
  std::vector<net::Packet> packets;
  {
    engine::CaptureOptions options;
    options.allow_mmap = true;
    auto source = engine::open_capture(path, options);
    if (!source.ok()) throw std::runtime_error(source.error().to_string());
    engine::PacketBatch batch;
    while ((*source)->read_batch(batch, 1024) != 0) {
      for (const net::Packet& packet : batch) packets.push_back(packet);
    }
  }

  DecodeStageResults out;
  {
    const auto start = std::chrono::steady_clock::now();
    for (const net::Packet& packet : packets) {
      if (const auto decoded = net::decode_packet(packet);
          decoded && decoded->has_tcp()) {
        out.scalar.bytes += decoded->transport_payload.size();
      }
    }
    out.scalar.seconds = seconds_since(start);
    out.scalar.packets = packets.size();
  }
  {
    net::DecodedSlab slab;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t offset = 0; offset < packets.size();
         offset += net::DecodedSlab::kCapacity) {
      const std::size_t count = std::min<std::size_t>(
          net::DecodedSlab::kCapacity, packets.size() - offset);
      net::decode_slab(packets.data() + offset, count, slab);
      for (std::size_t i = 0; i < count; ++i) {
        if (slab.lens[i].status == net::LensStatus::kTcp) {
          out.slab.bytes += slab.lens[i].payload_length;
        }
      }
    }
    out.slab.seconds = seconds_since(start);
    out.slab.packets = packets.size();
  }
  if (out.scalar.bytes != out.slab.bytes) {
    throw std::runtime_error("decode stages diverged: scalar and slab "
                             "attributed different TCP payload bytes");
  }
  return out;
}

enum class EngineMode { kPr2Baseline, kIstreamNext, kMmapBatch };

RunResult bench_engine(const std::filesystem::path& path,
                       const core::RecordClassifier& classifier,
                       util::Duration idle_timeout, EngineMode mode,
                       bool slab_decode = true) {
  engine::EngineConfig config;
  config.shards = 1;  // one worker: the ring handoff is on the path
  config.flow_idle_timeout = idle_timeout;
  config.slab_decode = slab_decode;
  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  std::optional<Pr2BaselineSource> baseline;
  Result<std::unique_ptr<engine::PacketSource>> opened{nullptr};
  if (mode == EngineMode::kPr2Baseline) {
    baseline.emplace(path);
  } else {
    engine::CaptureOptions capture_options;
    capture_options.allow_mmap = mode == EngineMode::kMmapBatch;
    opened = engine::open_capture(path, capture_options);
    if (!opened.ok()) throw std::runtime_error(opened.error().to_string());
  }
  engine::ShardedFlowEngine engine(classifier, config);
  switch (mode) {
    case EngineMode::kPr2Baseline:
      engine.consume(*baseline);
      break;
    case EngineMode::kIstreamNext: {
      PerPacketAdapter adapter(**opened);
      engine.consume(adapter);
      break;
    }
    case EngineMode::kMmapBatch:
      engine.consume(**opened);
      break;
  }
  const engine::EngineResult result = engine.finish();
  out.seconds = seconds_since(start);
  out.packets = result.stats.packets_in;
  // PR 10 bugfix: these rows used to report bytes 0 / bytes_per_sec 0.0
  // because EngineResult carried no byte totals; stats.bytes_in now
  // accounts every capture byte offered to the engine.
  out.bytes = result.stats.bytes_in;
  return out;
}

void require(bool condition, const std::string& what) {
  if (!condition) throw std::runtime_error("self-check failed: " + what);
}

}  // namespace

int main(int argc, char** argv) try {
  util::CliParser cli("perf_ingest",
                      "Capture-ingestion throughput: istream vs mmap readers, "
                      "mutex+deque vs SPSC-ring handoff, engine end-to-end.");
  cli.add_int("mb", "approximate generated trace size in MB", 1024);
  cli.add_int("batch", "packets per read_batch() call", 256);
  cli.add_int("queue-items", "items for the queue microbench", 2'000'000);
  cli.add_string("json", "write results as JSON to this path (empty = stdout only)",
                 std::string{});
  cli.add_bool("smoke", "tiny trace + JSON self-validation (CI mode)");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_bool("smoke");
  const std::uint64_t target_bytes =
      (smoke ? 2ull : static_cast<std::uint64_t>(cli.get_int("mb"))) * 1024 * 1024;
  const std::uint64_t queue_items =
      smoke ? 100'000 : static_cast<std::uint64_t>(cli.get_int("queue-items"));
  const auto batch_size = static_cast<std::size_t>(cli.get_int("batch"));

  // One real simulated session is the replay unit.
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                 : story::Choice::kDefault);
  }
  sim::SessionConfig session_config;
  session_config.seed = 47474;
  const auto session = sim::simulate_session(graph, choices, session_config);

  std::uint64_t lap_bytes = 24;  // pcap file header
  for (const net::Packet& packet : session.capture.packets) {
    lap_bytes += 16 + packet.data.size();
  }
  const std::size_t laps = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, target_bytes / lap_bytes));

  const auto path =
      std::filesystem::temp_directory_path() / "wm_perf_ingest_trace.pcap";
  std::cerr << "generating trace: " << laps << " laps x "
            << session.capture.packets.size() << " packets ("
            << (laps * lap_bytes) / (1024 * 1024) << " MB) -> " << path << "\n";
  const RunResult trace = generate_trace(path, session.capture.packets, laps);
  const std::uint64_t file_bytes = std::filesystem::file_size(path);

  // --- readers ------------------------------------------------------
  std::cerr << "readers...\n";
  const RunResult pr2_next = bench_pr2_baseline(path);
  const RunResult istream_next = bench_source_next(path, /*allow_mmap=*/false);
  const RunResult istream_batch =
      bench_source_batch(path, /*allow_mmap=*/false, batch_size);
  const RunResult mmap_batch =
      bench_source_batch(path, /*allow_mmap=*/true, batch_size);
  const RunResult mmap_scan = bench_mmap_scan(path);

  // Every path must have read the same trace.
  for (const RunResult* run :
       {&pr2_next, &istream_next, &istream_batch, &mmap_batch, &mmap_scan}) {
    require(run->packets == trace.packets, "reader packet totals diverged");
    require(run->bytes == trace.bytes, "reader byte totals diverged");
  }

  // --- queue handoff ------------------------------------------------
  std::cerr << "queues...\n";
  const double mutex_seconds =
      bench_queue([] { return MutexDequeQueue<std::uint64_t>(64); }, queue_items);
  const double ring_seconds =
      bench_queue([] { return util::SpscRing<std::uint64_t>(64); }, queue_items);
  // The same 64-slot ring, but batched: the handoff unit matches the
  // reader's read_batch() granularity rather than one wake per item.
  constexpr std::size_t kQueueBatch = 64;
  const double ring_batched_seconds = bench_ring_batched(queue_items, kQueueBatch);

  // --- dispatcher handoff shapes (regression row) -------------------
  std::cerr << "dispatch shapes...\n";
  const double dispatch_per_item_seconds =
      bench_dispatch(queue_items, /*batched=*/false);
  const double dispatch_batched_seconds =
      bench_dispatch(queue_items, /*batched=*/true);

  // --- ingestion pipeline (the headline mmap+ring comparison) -------
  std::cerr << "ingestion pipelines...\n";
  const RunResult pipeline_pr2 =
      median_run([&] { return bench_pr2_pipeline(path, batch_size); });
  const RunResult pipeline_mmap_ring =
      median_run([&] { return bench_mmap_ring_pipeline(path, batch_size); });
  for (const RunResult* run : {&pipeline_pr2, &pipeline_mmap_ring}) {
    require(run->packets == trace.packets, "pipeline packet totals diverged");
    require(run->bytes == trace.bytes, "pipeline byte totals diverged");
  }

  // --- per-stage decode rows ----------------------------------------
  std::cerr << "decode stages...\n";
  const DecodeStageResults decode_stages = bench_decode_stages(path);
  require(decode_stages.scalar.packets == trace.packets,
          "decode stages missed packets");

  // --- engine end-to-end --------------------------------------------
  std::cerr << "engine end-to-end...\n";
  core::AttackPipeline pipeline("interval");
  pipeline.calibrate(
      {core::CalibrationSession{session.capture.packets, session.truth}});
  const RunResult engine_pr2 =
      bench_engine(path, pipeline.classifier(), session.session_length,
                   EngineMode::kPr2Baseline);
  const RunResult engine_istream =
      bench_engine(path, pipeline.classifier(), session.session_length,
                   EngineMode::kIstreamNext);
  const RunResult engine_mmap =
      bench_engine(path, pipeline.classifier(), session.session_length,
                   EngineMode::kMmapBatch);
  // The scalar-oracle engine: identical output via the per-packet
  // decode_packet() chain — the denominator of the slab speedup row.
  const RunResult engine_mmap_scalar =
      bench_engine(path, pipeline.classifier(), session.session_length,
                   EngineMode::kMmapBatch, /*slab_decode=*/false);
  for (const RunResult* run :
       {&engine_pr2, &engine_istream, &engine_mmap, &engine_mmap_scalar}) {
    require(run->packets == trace.packets, "engine dropped packets");
    require(run->bytes == trace.bytes, "engine byte accounting diverged");
  }

  // --- report -------------------------------------------------------
  util::JsonObject readers;
  readers["pr2_baseline_next"] = pr2_next.to_json();
  readers["istream_next"] = istream_next.to_json();
  readers["istream_batch"] = istream_batch.to_json();
  readers["mmap_batch"] = mmap_batch.to_json();
  readers["mmap_scan"] = mmap_scan.to_json();

  util::JsonObject queue;
  queue["items"] = queue_items;
  queue["mutex_deque_items_per_sec"] =
      static_cast<double>(queue_items) / mutex_seconds;
  queue["spsc_ring_items_per_sec"] =
      static_cast<double>(queue_items) / ring_seconds;
  queue["spsc_ring_batched_items_per_sec"] =
      static_cast<double>(queue_items) / ring_batched_seconds;
  queue["ring_batch"] = static_cast<std::uint64_t>(kQueueBatch);

  util::JsonObject dispatch;
  dispatch["handoffs"] = queue_items;
  dispatch["per_item_handoffs_per_sec"] =
      static_cast<double>(queue_items) / dispatch_per_item_seconds;
  dispatch["batched_handoffs_per_sec"] =
      static_cast<double>(queue_items) / dispatch_batched_seconds;
  dispatch["worker_drain"] = static_cast<std::uint64_t>(8);

  util::JsonObject ingest_pipeline;
  ingest_pipeline["pr2_reader_mutex_deque"] = pipeline_pr2.to_json();
  ingest_pipeline["mmap_ring"] = pipeline_mmap_ring.to_json();

  util::JsonObject stages;
  stages["decode_scalar"] = decode_stages.scalar.to_json();
  stages["decode_slab"] = decode_stages.slab.to_json();

  util::JsonObject engine;
  engine["pr2_baseline_shard1"] = engine_pr2.to_json();
  engine["istream_next_shard1"] = engine_istream.to_json();
  engine["mmap_batch_shard1"] = engine_mmap.to_json();
  engine["mmap_batch_scalar_shard1"] = engine_mmap_scalar.to_json();

  util::JsonObject speedup;
  speedup["decode_slab_vs_scalar"] =
      decode_stages.slab.packets_per_sec() /
      decode_stages.scalar.packets_per_sec();
  speedup["engine_slab_vs_scalar"] =
      engine_mmap.packets_per_sec() / engine_mmap_scalar.packets_per_sec();
  speedup["ingest_mmap_ring_vs_pr2_baseline"] =
      pipeline_mmap_ring.packets_per_sec() / pipeline_pr2.packets_per_sec();
  speedup["reader_mmap_batch_vs_pr2_baseline"] =
      mmap_batch.packets_per_sec() / pr2_next.packets_per_sec();
  speedup["reader_mmap_scan_vs_pr2_baseline"] =
      mmap_scan.packets_per_sec() / pr2_next.packets_per_sec();
  speedup["reader_mmap_batch_vs_istream_next"] =
      mmap_batch.packets_per_sec() / istream_next.packets_per_sec();
  speedup["queue_ring_vs_mutex"] = mutex_seconds / ring_seconds;
  speedup["queue_ring_batched_vs_mutex"] = mutex_seconds / ring_batched_seconds;
  speedup["queue_ring_batched_vs_ring"] = ring_seconds / ring_batched_seconds;
  speedup["dispatch_batched_vs_per_item"] =
      dispatch_per_item_seconds / dispatch_batched_seconds;
  speedup["engine_mmap_batch_vs_pr2_baseline"] =
      engine_mmap.packets_per_sec() / engine_pr2.packets_per_sec();

  util::JsonObject trace_info;
  trace_info["file_bytes"] = file_bytes;
  trace_info["packets"] = trace.packets;
  trace_info["payload_bytes"] = trace.bytes;
  trace_info["laps"] = static_cast<std::uint64_t>(laps);
  trace_info["batch_size"] = static_cast<std::uint64_t>(batch_size);

  bench::Report report("perf_ingest", smoke);
  report.add_section("trace", util::JsonValue(std::move(trace_info)));
  report.add_section("readers", util::JsonValue(std::move(readers)));
  report.add_section("queue", util::JsonValue(std::move(queue)));
  report.add_section("dispatch", util::JsonValue(std::move(dispatch)));
  report.add_section("pipeline", util::JsonValue(std::move(ingest_pipeline)));
  report.add_section("stages", util::JsonValue(std::move(stages)));
  report.add_section("engine", util::JsonValue(std::move(engine)));
  report.add_section("speedup", util::JsonValue(std::move(speedup)));
  const std::string rendered = report.render();
  const std::string json_path = cli.get_string("json");
  report.emit(json_path);

  if (smoke) {
    // CI self-validation: the emitted document must round-trip and
    // carry every section the dashboard expects.
    std::string emitted = rendered;
    if (!json_path.empty()) {
      std::ifstream in(json_path);
      std::stringstream buffer;
      buffer << in.rdbuf();
      emitted = buffer.str();
    }
    const util::JsonValue parsed = util::JsonValue::parse(emitted);
    for (const std::string& problem : bench::validate(parsed)) {
      require(false, "schema: " + problem);
    }
    for (const char* key : {"trace", "readers", "queue", "dispatch", "pipeline",
                            "stages", "engine", "speedup"}) {
      require(parsed.contains(key), std::string("missing JSON section ") + key);
    }
    require(parsed.at("speedup").at("decode_slab_vs_scalar").as_double() > 0.0,
            "decode stage speedup not computed");
    require(parsed.at("speedup").at("engine_slab_vs_scalar").as_double() > 0.0,
            "engine slab speedup not computed");
    require(parsed.at("engine").at("mmap_batch_shard1").at("bytes").as_int() > 0,
            "engine rows still missing byte accounting");
    require(
        parsed.at("speedup").at("dispatch_batched_vs_per_item").as_double() >
            0.0,
        "dispatch speedup not computed");
    require(parsed.at("readers").at("mmap_batch").at("packets").as_int() > 0,
            "no packets measured");
    require(
        parsed.at("speedup").at("reader_mmap_batch_vs_pr2_baseline").as_double() >
            0.0,
        "speedup not computed");
    require(
        parsed.at("speedup").at("ingest_mmap_ring_vs_pr2_baseline").as_double() >
            0.0,
        "pipeline speedup not computed");
    require(parsed.at("speedup").at("queue_ring_batched_vs_mutex").as_double() >
                0.0,
            "batched queue speedup not computed");
    std::cerr << "smoke OK\n";
  }

  std::filesystem::remove(path);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "perf_ingest: " << error.what() << "\n";
  return 1;
}
