// Behavioural-implication study (the paper's §I motivation and §VI
// "High-level Implications"): what an eavesdropper learns ABOUT a
// cohort from the recovered choices alone.
//
// We synthesize a cohort whose choice behaviour depends on their
// behavioural attributes (the coupling the IITM dataset was built to
// expose), recover every viewer's choices from their encrypted trace,
// and then — using only attack output plus the film's public script —
// report exploration tendencies and trait tags per attribute group.
#include <cstdio>

#include "wm/core/behavior.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/dataset/builder.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  // One fixed operational condition so a single calibration suffices;
  // the behavioural study varies the viewers, not their platforms.
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    sim::SessionConfig config;
    config.seed = 4400 + s;
    auto session = sim::simulate_session(graph, choices, config);
    calibration.push_back(core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Cohort of 40 viewers; choices drawn from the behavioural policy.
  util::Rng cohort_rng(2019);
  const auto cohort = dataset::sample_cohort(40, cohort_rng);
  const auto rules = core::default_trait_rules();

  core::CohortBehaviorReport inferred_report;
  core::CohortBehaviorReport truth_report;
  std::size_t recovered = 0;
  std::size_t questions = 0;

  for (const dataset::Viewer& viewer : cohort) {
    util::Rng viewer_rng(7000 + viewer.id);
    const auto choices = dataset::draw_choices(graph, viewer.behavioral, viewer_rng);

    sim::SessionConfig config;
    config.seed = viewer_rng.next_u64();
    const auto session = sim::simulate_session(graph, choices, config);

    wm::engine::VectorSource source(&session.capture.packets);
    const auto inferred = attack.infer(source).combined;
    const auto score = core::score_session(session.truth, inferred);
    recovered += score.choices_correct;
    questions += score.questions_truth;

    const std::vector<std::string> keys{
        "age=" + dataset::to_string(viewer.behavioral.age),
        "mood=" + dataset::to_string(viewer.behavioral.mood),
        "all viewers",
    };
    inferred_report.add(core::profile_viewer(graph, inferred.choices(), rules),
                        keys);
    truth_report.add(
        core::profile_viewer(graph, session.truth.choices(), rules), keys);
  }

  std::printf("behavioural profiling from ATTACK OUTPUT (40 viewers)\n");
  std::printf("choice recovery across the cohort: %zu/%zu (%s)\n\n", recovered,
              questions,
              util::format_percent(static_cast<double>(recovered) /
                                   static_cast<double>(questions))
                  .c_str());

  std::printf("%-18s %-8s %-21s %-21s\n", "group", "viewers",
              "inferred exploration", "true exploration");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const auto& [key, group] : inferred_report.groups) {
    const auto& truth_group = truth_report.groups.at(key);
    std::printf("%-18s %-8zu %-21s %-21s\n", key.c_str(), group.viewers,
                util::format_percent(group.mean_exploration).c_str(),
                util::format_percent(truth_group.mean_exploration).c_str());
  }

  std::printf("\nmost common trait tags inferred across the cohort:\n");
  const auto& all = inferred_report.groups.at("all viewers");
  std::vector<std::pair<std::string, std::size_t>> tags(all.tag_counts.begin(),
                                                        all.tag_counts.end());
  std::sort(tags.begin(), tags.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(tags.size(), 8); ++i) {
    std::printf("  %-24s %zu viewer(s)\n", tags[i].first.c_str(),
                tags[i].second);
  }

  std::printf(
      "\nreading: inferred exploration tracks ground truth per group —\n"
      "younger/stressed viewers measurably explore more — so the traffic\n"
      "tap alone supports exactly the behavioural studies the paper\n"
      "anticipates, which is the privacy harm.\n");
  return 0;
}
