// §V headline result — choice recovery accuracy over 10 viewing
// sessions under different combinations of operational conditions.
//
// The paper: "We conducted our preliminary experiments on the encrypted
// traffic captured during 10 different viewing sessions ... This helped
// us to identify the two types of JSON files with 96% accuracy and
// hence the choices made by the viewers."
//
// Protocol: the attacker calibrates per operational condition on
// held-out sessions (the per-condition Fig. 2 bands), then attacks 10
// fresh sessions of different viewers under 10 different condition
// combinations. Two calibration regimes are reported:
//   * preliminary (2 calibration sessions per condition) — matches the
//     paper's early-stage setup and lands near its 96%;
//   * mature (8 calibration sessions) — the bands are fully covered
//     and recovery saturates.
#include <cstdio>
#include <map>

#include "wm/core/pipeline.hpp"
#include "wm/dataset/attributes.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

sim::SessionResult simulate(const story::StoryGraph& graph,
                            const sim::OperationalConditions& conditions,
                            const std::vector<story::Choice>& choices,
                            std::uint64_t seed) {
  sim::SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return sim::simulate_session(graph, choices, config);
}

std::vector<story::Choice> calibration_choices() {
  // Alternate so calibration sees both JSON types.
  std::vector<story::Choice> out;
  for (int i = 0; i < 13; ++i) {
    out.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                             : story::Choice::kDefault);
  }
  return out;
}

struct RegimeResult {
  core::AggregateScore aggregate;
  util::ConfusionMatrix confusion{{"type-1", "type-2", "others"}};
  std::vector<core::SessionScore> scores;
  std::vector<std::string> condition_names;
  std::vector<std::size_t> questions;
};

RegimeResult run_regime(const story::StoryGraph& graph,
                        std::size_t calibration_sessions) {
  const auto all = sim::all_operational_conditions();
  std::vector<sim::OperationalConditions> session_conditions;
  for (std::size_t i = 0; i < 10; ++i) {
    session_conditions.push_back(all[(i * 7 + 3) % all.size()]);
  }

  std::map<std::string, core::AttackPipeline> pipelines;
  for (const auto& conditions : session_conditions) {
    const std::string key = conditions.to_string();
    if (pipelines.count(key)) continue;
    std::vector<core::CalibrationSession> calibration;
    for (std::uint64_t s = 0; s < calibration_sessions; ++s) {
      auto session =
          simulate(graph, conditions, calibration_choices(),
                   900'000 + s * 17 + std::hash<std::string>{}(key) % 1000);
      calibration.push_back(core::CalibrationSession{
          std::move(session.capture.packets), std::move(session.truth)});
    }
    core::AttackPipeline pipeline("interval");
    pipeline.calibrate(calibration);
    pipelines.emplace(key, std::move(pipeline));
  }

  RegimeResult result;
  util::Rng behaviour_rng(2019);
  for (std::size_t i = 0; i < session_conditions.size(); ++i) {
    const auto& conditions = session_conditions[i];
    dataset::BehavioralAttributes behavioral;
    behavioral.age = static_cast<dataset::AgeGroup>(behaviour_rng.next_below(4));
    behavioral.mood =
        static_cast<dataset::StateOfMind>(behaviour_rng.next_below(4));
    util::Rng choice_rng = behaviour_rng.fork();
    const auto choices = dataset::draw_choices(graph, behavioral, choice_rng);

    const auto session = simulate(graph, conditions, choices, 100'000 + i * 31);
    const core::AttackPipeline& pipeline = pipelines.at(conditions.to_string());

    wm::engine::VectorSource source(&session.capture.packets);
    const core::InferredSession inferred = pipeline.infer(source).combined;
    result.scores.push_back(core::score_session(session.truth, inferred));
    result.condition_names.push_back(conditions.to_string());
    result.questions.push_back(session.truth.questions.size());

    const auto observations =
        core::extract_client_records(session.capture.packets);
    for (const auto& item :
         core::label_observations(observations, session.truth)) {
      result.confusion.add(static_cast<std::size_t>(item.label),
                           static_cast<std::size_t>(pipeline.classifier().classify(
                               item.observation.record_length)));
    }
  }
  result.aggregate = core::aggregate_scores(result.scores);
  return result;
}

}  // namespace

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  std::printf(
      "SectionV — choice recovery over 10 sessions (interval classifier)\n\n");

  // --- preliminary regime (paper's setting) -----------------------------
  const RegimeResult preliminary = run_regime(graph, 2);
  std::printf("regime A: 2 calibration sessions per condition (preliminary, "
              "as in the paper)\n\n");
  std::printf("%-4s %-52s %-5s %-5s %-9s\n", "sess", "conditions", "Qs", "ok",
              "accuracy");
  for (std::size_t i = 0; i < preliminary.scores.size(); ++i) {
    const auto& score = preliminary.scores[i];
    std::printf("%-4zu %-52s %-5zu %-5zu %-9s\n", i + 1,
                preliminary.condition_names[i].c_str(), score.questions_truth,
                score.choices_correct,
                util::format_percent(score.choice_accuracy).c_str());
  }
  std::printf("\nchoice recovery:   mean %s   pooled %s   worst case %s\n",
              util::format_percent(preliminary.aggregate.mean_accuracy).c_str(),
              util::format_percent(preliminary.aggregate.pooled_accuracy).c_str(),
              util::format_percent(preliminary.aggregate.worst_accuracy).c_str());
  std::printf("record classification accuracy: %s "
              "(type-1 recall %s, type-2 recall %s)\n",
              util::format_percent(preliminary.confusion.accuracy()).c_str(),
              util::format_percent(preliminary.confusion.recall(0)).c_str(),
              util::format_percent(preliminary.confusion.recall(1)).c_str());
  std::printf("paper reports: choices revealed 96%% of the time in the worst "
              "case\n\n");

  // --- calibration-coverage curve -----------------------------------------
  // The paper's 96% is a point on this curve: accuracy converges as the
  // calibration set covers the type-2 band's tails.
  std::printf("calibration-coverage curve (same 10 victim sessions):\n");
  std::printf("%-22s %-10s %-10s %-12s %-12s\n", "calibration sessions", "mean",
              "pooled", "worst case", "record acc");
  for (std::size_t sessions : {1u, 2u, 3u, 8u}) {
    const RegimeResult regime = run_regime(graph, sessions);
    std::printf("%-22zu %-10s %-10s %-12s %-12s\n", sessions,
                util::format_percent(regime.aggregate.mean_accuracy).c_str(),
                util::format_percent(regime.aggregate.pooled_accuracy).c_str(),
                util::format_percent(regime.aggregate.worst_accuracy).c_str(),
                util::format_percent(regime.confusion.accuracy()).c_str());
  }
  std::printf("paper's preliminary result (96%%) sits on this curve between\n"
              "the 2- and 3-session regimes.\n\n");

  std::printf("record-level confusion (regime A, pooled):\n%s",
              preliminary.confusion.to_string().c_str());
  return 0;
}
