// Figure 2 — SSL record length distribution for
//   (Desktop, Firefox, Ethernet, Ubuntu)  and
//   (Desktop, Firefox, Ethernet, Windows).
//
// For each condition we simulate several viewing sessions, take every
// client-side application record an eavesdropper would see, and print
// the percentage of packets of each class {type-1 JSON, type-2 JSON,
// others} falling into the paper's five length bins. The paper's bins:
//   Ubuntu:  <=2188 | 2211-2213 | 2219-2823 | 2992-3017 | >=4334
//   Windows: <=2335 | 2341-2343 | 2398-3056 | 3118-3147 | >=3159
// The reproduction criterion is the *shape*: 100% of type-1 packets in
// the second bin, 100% of type-2 packets in the fourth, and all other
// packets outside both JSON bins.
#include <cstdio>
#include <vector>

#include "wm/core/features.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/stats.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

struct Bin {
  std::string label;
  std::int64_t lo;
  std::int64_t hi;
};

void run_condition(const story::StoryGraph& graph, const char* title,
                   sim::OperatingSystem os, const std::vector<Bin>& bins,
                   std::uint64_t seed_base) {
  sim::OperationalConditions conditions;  // Desktop, Firefox, Ethernet, Noon
  conditions.os = os;

  // Several sessions with plenty of non-default picks so type-2 shows.
  std::array<util::IntHistogram, core::kRecordClassCount> by_class;
  for (std::uint64_t s = 0; s < 8; ++s) {
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    sim::SessionConfig config;
    config.conditions = conditions;
    config.seed = seed_base + s;
    const sim::SessionResult session =
        sim::simulate_session(graph, choices, config);
    const auto observations =
        core::extract_client_records(session.capture.packets);
    for (const core::LabeledObservation& item :
         core::label_observations(observations, session.truth)) {
      by_class[static_cast<std::size_t>(item.label)].add(
          item.observation.record_length);
    }
  }

  std::printf("%s\n", title);
  std::printf("%-22s %12s %12s %12s\n", "SSL record length (B)", "type-1 JSON",
              "type-2 JSON", "others");
  for (const Bin& bin : bins) {
    std::printf("%-22s", bin.label.c_str());
    for (std::size_t cls = 0; cls < core::kRecordClassCount; ++cls) {
      const util::IntHistogram& hist = by_class[cls];
      const double pct =
          hist.total() == 0
              ? 0.0
              : 100.0 * static_cast<double>(hist.count_in(bin.lo, bin.hi)) /
                    static_cast<double>(hist.total());
      std::printf(" %11.1f%%", pct);
    }
    std::printf("\n");
  }
  std::printf("  packets: type-1=%llu type-2=%llu others=%llu\n\n",
              static_cast<unsigned long long>(by_class[0].total()),
              static_cast<unsigned long long>(by_class[1].total()),
              static_cast<unsigned long long>(by_class[2].total()));
}

}  // namespace

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();
  const std::int64_t kMax = 1 << 20;

  std::printf("Figure 2 — SSL record length distributions (percent of class)\n\n");

  run_condition(graph, "(Desktop, Firefox, Ethernet, Ubuntu)",
                sim::OperatingSystem::kLinux,
                {
                    {"<=2188", 0, 2188},
                    {"2211-2213", 2211, 2213},
                    {"2219-2823", 2219, 2823},
                    {"2992-3017", 2992, 3017},
                    {">=4334", 4334, kMax},
                },
                11000);

  run_condition(graph, "(Desktop, Firefox, Ethernet, Windows)",
                sim::OperatingSystem::kWindows,
                {
                    {"<=2335", 0, 2335},
                    {"2341-2343", 2341, 2343},
                    {"2398-3056", 2398, 3056},
                    {"3118-3147", 3118, 3147},
                    {">=3159", 3159, kMax},
                },
                12000);

  std::printf(
      "paper shape: type-1 packets land exclusively in their 3-byte bin,\n"
      "type-2 in their ~30-byte bin, and both bins are empty of 'others' —\n"
      "which is what makes the JSON uploads distinguishable from encrypted\n"
      "traffic alone.\n");
  return 0;
}
