#include "bench_report.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

namespace wm::bench {

util::JsonValue Throughput::to_json() const {
  util::JsonObject object;
  object["seconds"] = seconds;
  object["packets"] = packets;
  object["bytes"] = bytes;
  object["packets_per_sec"] = packets_per_sec();
  object["bytes_per_sec"] = bytes_per_sec();
  return util::JsonValue(std::move(object));
}

void Report::add_section(const std::string& name, util::JsonValue value) {
  sections_[name] = std::move(value);
}

std::string Report::render() const {
  util::JsonObject root = sections_;
  root["bench"] = bench_name_;
  root["version"] = kBenchSchemaVersion;
  root["smoke"] = smoke_;
  return util::JsonValue(std::move(root)).dump(2);
}

void Report::emit(const std::string& path) const {
  const std::string rendered = render();
  std::cout << rendered << "\n";
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  out << rendered << "\n";
  if (!out) throw std::runtime_error("bench report: cannot write " + path);
}

namespace {

/// Depth-first sweep for throughput rows (objects that advertise a
/// "packets_per_sec" key), wherever they sit in the section tree.
void check_rows(const util::JsonValue& value, const std::string& where,
                std::vector<std::string>& problems) {
  if (value.is_array()) {
    std::size_t i = 0;
    for (const util::JsonValue& element : value.as_array()) {
      check_rows(element, where + "[" + std::to_string(i++) + "]", problems);
    }
    return;
  }
  if (!value.is_object()) return;
  const util::JsonObject& object = value.as_object();
  if (object.count("packets_per_sec") != 0) {
    std::vector<const char*> required = {"seconds", "packets",
                                         "packets_per_sec"};
    // Rows that advertise byte rates must back them with real byte
    // counts; packet-rate-only rows (e.g. perf_fleet's synthetic
    // workload) simply omit both keys.
    const bool has_bytes =
        object.count("bytes") != 0 || object.count("bytes_per_sec") != 0;
    if (has_bytes) {
      required.push_back("bytes");
      required.push_back("bytes_per_sec");
    }
    for (const char* key : required) {
      if (object.count(key) == 0) {
        problems.push_back(where + ": throughput row missing \"" + key + "\"");
      } else if (!object.at(key).is_number()) {
        problems.push_back(where + ": \"" + key + "\" is not a number");
      }
    }
    // The accounting rule this schema exists for: a row that moved
    // packets must say how many bytes they were.
    if (has_bytes && object.count("packets") != 0 &&
        object.count("bytes") != 0 && object.at("packets").is_number() &&
        object.at("bytes").is_number() &&
        object.at("packets").as_double() > 0.0 &&
        object.at("bytes").as_double() <= 0.0) {
      problems.push_back(where +
                         ": packets > 0 but bytes == 0 (missing byte accounting)");
    }
  }
  for (const auto& [key, child] : object) {
    check_rows(child, where.empty() ? key : where + "." + key, problems);
  }
}

}  // namespace

std::vector<std::string> validate(const util::JsonValue& document) {
  std::vector<std::string> problems;
  if (!document.is_object()) {
    problems.emplace_back("document is not a JSON object");
    return problems;
  }
  if (!document.contains("bench") || !document.at("bench").is_string()) {
    problems.emplace_back("missing string field \"bench\"");
  }
  std::int64_t version = 0;
  if (!document.contains("version") || !document.at("version").is_int()) {
    problems.emplace_back("missing integer field \"version\"");
  } else {
    version = document.at("version").as_int();
    if (version < 1 || version > kBenchSchemaVersion) {
      problems.push_back("unknown schema version " + std::to_string(version));
    }
  }
  if (version >= 2) {
    if (!document.contains("smoke") || !document.at("smoke").is_bool()) {
      problems.emplace_back("missing boolean field \"smoke\"");
    }
    check_rows(document, "", problems);
  }
  return problems;
}

std::vector<std::string> validate_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return {path.string() + ": cannot open"};
  std::stringstream buffer;
  buffer << in.rdbuf();
  util::JsonValue document;
  try {
    document = util::JsonValue::parse(buffer.str());
  } catch (const std::exception& error) {
    return {path.string() + ": parse error: " + error.what()};
  }
  std::vector<std::string> problems = validate(document);
  for (std::string& problem : problems) {
    problem = path.string() + ": " + problem;
  }
  return problems;
}

}  // namespace wm::bench
