// §VI ablation — countermeasures and the residual timing channel.
//
// The paper suggests splitting or compressing the JSON file as an "easy
// fix", and warns that timing side-channels may survive. This bench
// makes that discussion quantitative: for each defence we re-run the
// record-length attack (with the attacker allowed to re-calibrate on
// protected traffic) and the timing attack, and report accuracy plus
// byte overhead.
#include <cstdio>

#include "wm/counter/eval.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  counter::CountermeasureEvalConfig config;
  config.calibration_sessions = 3;
  config.eval_sessions = 16;
  config.seed = 616;

  struct Entry {
    const char* name;
    sim::ClientPayloadTransform transform;
    bool uniform_uploads;
    const char* note;
  };
  const std::vector<Entry> entries = {
      {"none", counter::identity_transform(), false,
       "baseline (attack as in SectionV)"},
      {"compress(0.42)", counter::compress(0.42, 0.08), false,
       "gzip-like; shifts+blurs bands"},
      {"split(1024)", counter::split_records(1024), false,
       "paper's 'split the JSON' fix — tail still leaks"},
      {"pad(4096)", counter::pad_to_bucket(4096), false,
       "all uploads one length"},
      {"split+pad(1024)", counter::split_and_pad(1024), false,
       "uniform records; length channel closed"},
      {"uniform-uploads", counter::identity_transform(), true,
       "ours: decoy upload at every window end"},
      {"split+pad+uniform", counter::split_and_pad(1024), true,
       "both channels closed"},
  };

  std::printf("SectionVI — countermeasure ablation (%zu eval sessions each)\n\n",
              config.eval_sessions);
  std::printf("%-17s %-9s %-13s %-13s %-8s %-9s %s\n", "defence", "bands",
              "length-attack", "timing-attack", "chance", "overhead", "note");
  std::printf("%-17s %-9s %-13s %-13s %-8s %-9s %s\n", "", "overlap",
              "(pooled acc)", "(pooled acc)", "(blind)", "(bytes)", "");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const Entry& entry : entries) {
    counter::CountermeasureEvalConfig entry_config = config;
    entry_config.streaming.uniform_decision_uploads = entry.uniform_uploads;
    const counter::CountermeasureRun run = counter::evaluate_countermeasure(
        graph, entry.name, entry.transform, entry_config);
    std::printf("%-17s %-9s %-13s %-13s %-8s %+8.1f%% %s\n", run.name.c_str(),
                run.classifier_bands_overlap ? "yes" : "no",
                util::format_percent(run.length_attack.pooled_accuracy).c_str(),
                util::format_percent(run.timing_attack.pooled_accuracy).c_str(),
                util::format_percent(run.blind_guess_accuracy).c_str(),
                run.overhead_fraction * 100.0, entry.note);
  }

  std::printf(
      "\nreading: padding/split+pad close the record-length channel (attack\n"
      "falls to ~0 because no JSON bands exist to calibrate), split alone\n"
      "leaks through the final fragment, and the timing channel keeps\n"
      "recovering a meaningful share of choices regardless — the paper's\n"
      "closing caveat. Our uniform-upload defence (a type-2-shaped decoy\n"
      "at EVERY window end, prefetch always to window end) removes the\n"
      "timing distinguisher; combined with split+pad both channels close.\n");
  return 0;
}
