// Table I — "Attributes of the IITM-Bandersnatch Dataset".
//
// Generates the synthetic 100-viewer cohort and prints the attribute
// inventory in the paper's two-block layout (Operational / Behavioral),
// with the per-value counts our cohort realizes. The paper's table
// lists the value sets; the counts demonstrate every value is
// represented.
#include <cstdio>
#include <map>

#include "wm/dataset/attributes.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

void print_row(const char* block, const char* attribute,
               const std::map<std::string, int>& counts) {
  std::string values;
  for (const auto& [value, count] : counts) {
    if (!values.empty()) values += ", ";
    values += util::format("%s (%d)", value.c_str(), count);
  }
  std::printf("%-12s %-20s %s\n", block, attribute, values.c_str());
}

}  // namespace

int main() {
  util::Rng rng(2019);
  const auto cohort = dataset::sample_cohort(100, rng);

  std::map<std::string, int> os, platform, traffic, connection, browser;
  std::map<std::string, int> age, gender, political, mood;
  for (const dataset::Viewer& v : cohort) {
    ++os[sim::to_string(v.operational.os)];
    ++platform[sim::to_string(v.operational.platform)];
    ++traffic[sim::to_string(v.operational.traffic)];
    ++connection[v.operational.connection == sim::ConnectionType::kWired
                     ? "Wired"
                     : "Wireless"];
    ++browser[sim::to_string(v.operational.browser)];
    ++age[dataset::to_string(v.behavioral.age)];
    ++gender[dataset::to_string(v.behavioral.gender)];
    ++political[dataset::to_string(v.behavioral.political)];
    ++mood[dataset::to_string(v.behavioral.mood)];
  }

  std::printf(
      "Table I — Attributes of the IITM-Bandersnatch dataset (synthetic, "
      "%zu viewers)\n\n",
      cohort.size());
  std::printf("%-12s %-20s %s\n", "Conditions", "Attribute", "Value (count)");
  std::printf("%s\n", std::string(96, '-').c_str());
  print_row("Operational", "Operating System", os);
  print_row("", "Platform", platform);
  print_row("", "Traffic Conditions", traffic);
  print_row("", "Connection Type", connection);
  print_row("", "Browser", browser);
  print_row("Behavioral", "Age-group", age);
  print_row("", "Gender", gender);
  print_row("", "Political Alignment", political);
  print_row("", "State of Mind", mood);

  // Paper-fidelity checks: every Table I value occurs at least once.
  const bool complete = os.size() == 3 && platform.size() == 2 &&
                        traffic.size() == 3 && connection.size() == 2 &&
                        browser.size() == 2 && age.size() == 4 &&
                        gender.size() == 3 && political.size() == 4 &&
                        mood.size() == 4;
  std::printf("\nall Table I attribute values represented: %s\n",
              complete ? "yes" : "NO");
  return complete ? 0 : 1;
}
