// perf_fleet — MonitorFleet shard-scaling curve.
//
// Streams one synthetic monitoring workload (wm::monitor::
// SyntheticFleetSource) through a single ContinuousMonitor and through
// MonitorFleet at 1/2/4/8 shards, and reports wall throughput plus the
// quantity the shard design actually controls: per-shard load balance.
//
//   perf_fleet [--sessions 2000] [--json BENCH_pr7.json] [--smoke]
//
// Two speedup figures are emitted per shard count:
//   * wall: end-to-end packets/sec vs the single monitor. Only
//     meaningful on a machine with that many hardware threads —
//     "hardware_threads" is recorded alongside so a 1-core CI box
//     can't masquerade as a scaling proof.
//   * ideal: total packets / max per-shard packets — the critical-path
//     bound the viewer-hash partition admits. This is what the fleet's
//     merge-free design converts into wall speedup once cores exist;
//     it is measured, not assumed, from the real partition skew.
//
// --smoke shrinks the workload and self-validates the JSON (CI mode).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "wm/core/classifier.hpp"
#include "wm/monitor/fleet.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"
#include "wm/util/cli.hpp"
#include "wm/util/json.hpp"

using namespace wm;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void require(bool condition, const std::string& what) {
  if (!condition) throw std::runtime_error(what);
}

monitor::MonitorConfig bench_monitor_config() {
  monitor::MonitorConfig config;
  config.evidence_window = util::Duration::seconds(5);
  config.viewer_idle_timeout = util::Duration::seconds(30);
  config.flow_idle_timeout = util::Duration::seconds(20);
  config.max_total_bytes = 64u << 20;
  return config;
}

struct FleetRun {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  std::vector<std::uint64_t> shard_packets;

  [[nodiscard]] double packets_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(packets) / seconds : 0.0;
  }
  /// Critical-path bound: with per-viewer partitioning the slowest
  /// shard gates the fleet, so total/max is the speedup the partition
  /// admits on sufficient cores.
  [[nodiscard]] double ideal_speedup() const {
    std::uint64_t max_shard = 0;
    for (const std::uint64_t count : shard_packets)
      max_shard = std::max(max_shard, count);
    return max_shard > 0
               ? static_cast<double>(packets) / static_cast<double>(max_shard)
               : 0.0;
  }
  [[nodiscard]] util::JsonValue to_json() const {
    util::JsonObject object;
    object["seconds"] = seconds;
    object["packets"] = packets;
    object["packets_per_sec"] = packets_per_sec();
    if (!shard_packets.empty()) {
      util::JsonArray shards;
      for (const std::uint64_t count : shard_packets) shards.push_back(count);
      object["shard_packets"] = util::JsonValue(std::move(shards));
      object["ideal_speedup"] = ideal_speedup();
    }
    return util::JsonValue(std::move(object));
  }
};

FleetRun bench_single(const core::RecordClassifier& classifier,
                      const monitor::WorkloadConfig& workload) {
  monitor::ContinuousMonitor mon(classifier, bench_monitor_config());
  monitor::SyntheticFleetSource source(workload);
  FleetRun out;
  const auto start = std::chrono::steady_clock::now();
  out.packets = mon.consume(source);
  const monitor::MonitorStats stats = mon.finish();
  out.seconds = seconds_since(start);
  require(stats.packets == out.packets, "single monitor dropped packets");
  return out;
}

FleetRun bench_fleet(const core::RecordClassifier& classifier,
                     const monitor::WorkloadConfig& workload,
                     std::size_t shards) {
  monitor::FleetConfig config;
  config.shards = shards;
  config.monitor = bench_monitor_config();
  monitor::MonitorFleet fleet(classifier, config);
  monitor::SyntheticFleetSource source(workload);
  FleetRun out;
  const auto start = std::chrono::steady_clock::now();
  out.packets = fleet.consume(source);
  const monitor::FleetStats stats = fleet.finish();
  out.seconds = seconds_since(start);
  require(stats.totals.packets == out.packets, "fleet dropped packets");
  out.shard_packets.reserve(stats.shards.size());
  for (const monitor::MonitorStats& shard : stats.shards) {
    out.shard_packets.push_back(shard.packets);
  }
  return out;
}

/// Thread wakeups and allocator warmth make single runs noisy; median
/// of three.
template <typename BenchFn>
FleetRun median_run(BenchFn bench) {
  std::vector<FleetRun> runs;
  for (int rep = 0; rep < 3; ++rep) runs.push_back(bench());
  std::sort(runs.begin(), runs.end(), [](const FleetRun& a, const FleetRun& b) {
    return a.seconds < b.seconds;
  });
  return runs[1];
}

}  // namespace

int main(int argc, char** argv) try {
  util::CliParser cli("perf_fleet",
                      "MonitorFleet shard scaling: single monitor vs "
                      "viewer-sharded fleet at 1/2/4/8 worker threads.");
  cli.add_int("sessions", "synthetic fleet sessions", 2000);
  cli.add_int("concurrency", "sessions in flight at once", 64);
  cli.add_string("json",
                 "write results as JSON to this path (empty = stdout only)",
                 std::string{});
  cli.add_bool("smoke", "tiny workload + JSON self-validation (CI mode)");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_bool("smoke");
  monitor::WorkloadConfig workload;
  workload.sessions =
      smoke ? 64 : static_cast<std::size_t>(cli.get_int("sessions"));
  workload.concurrency = static_cast<std::size_t>(cli.get_int("concurrency"));
  workload.questions_per_session = 4;
  core::IntervalClassifier classifier;
  classifier.fit(monitor::workload_calibration(workload));

  const FleetRun single =
      median_run([&] { return bench_single(classifier, workload); });

  util::JsonObject fleet_section;
  util::JsonObject speedup;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const FleetRun run =
        median_run([&] { return bench_fleet(classifier, workload, shards); });
    require(run.packets == single.packets, "fleet packet totals diverged");
    const std::string key = "shards" + std::to_string(shards);
    fleet_section[key] = run.to_json();
    speedup[key + "_wall_vs_single"] =
        run.packets_per_sec() / single.packets_per_sec();
    speedup[key + "_ideal"] = run.ideal_speedup();
    std::cerr << key << ": " << run.packets_per_sec() << " pkts/s (single "
              << single.packets_per_sec() << "), ideal x" << run.ideal_speedup()
              << "\n";
  }

  util::JsonObject workload_info;
  workload_info["sessions"] = static_cast<std::uint64_t>(workload.sessions);
  workload_info["concurrency"] =
      static_cast<std::uint64_t>(workload.concurrency);
  workload_info["packets"] = single.packets;

  bench::Report report("perf_fleet", smoke);
  report.add_section(
      "hardware_threads",
      util::JsonValue(
          static_cast<std::uint64_t>(std::thread::hardware_concurrency())));
  report.add_section("workload", util::JsonValue(std::move(workload_info)));
  report.add_section("single_monitor", single.to_json());
  report.add_section("fleet", util::JsonValue(std::move(fleet_section)));
  report.add_section("speedup", util::JsonValue(std::move(speedup)));
  const std::string rendered = report.render();
  const std::string json_path = cli.get_string("json");
  report.emit(json_path);

  if (smoke) {
    std::string emitted = rendered;
    if (!json_path.empty()) {
      std::ifstream in(json_path);
      std::stringstream buffer;
      buffer << in.rdbuf();
      emitted = buffer.str();
    }
    const util::JsonValue parsed = util::JsonValue::parse(emitted);
    for (const std::string& problem : bench::validate(parsed)) {
      require(false, "schema: " + problem);
    }
    for (const char* key : {"workload", "single_monitor", "fleet", "speedup"}) {
      require(parsed.contains(key), std::string("missing JSON section ") + key);
    }
    for (const char* key : {"shards1", "shards2", "shards4", "shards8"}) {
      require(parsed.at("fleet").contains(key),
              std::string("missing fleet row ") + key);
    }
    require(parsed.at("single_monitor").at("packets").as_int() > 0,
            "no packets measured");
    // The partition must admit real parallelism at 4 shards: the
    // critical-path bound is what multicore converts to wall speedup.
    require(parsed.at("speedup").at("shards4_ideal").as_double() > 1.5,
            "4-shard partition too skewed to scale");
    std::cerr << "smoke OK\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "perf_fleet: " << e.what() << "\n";
  return 1;
}
