// BENCH_pr*.json schema validator (see bench_report.hpp for the rules).
//
//   bench_validate FILE.json [FILE.json ...]
//
// Prints every problem found and exits non-zero if any file fails —
// the bench-validate ctest entry and the CI bench-smoke leg run this
// over the committed documents and over freshly emitted smoke output,
// so a benchmark binary cannot quietly drift off the shared schema
// (or reintroduce the engine bytes=0 accounting bug).
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: bench_validate FILE.json [FILE.json ...]\n";
    return 2;
  }
  std::size_t failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::vector<std::string> problems =
        wm::bench::validate_file(argv[i]);
    if (problems.empty()) {
      std::cout << argv[i] << ": OK\n";
      continue;
    }
    ++failures;
    for (const std::string& problem : problems) {
      std::cerr << problem << "\n";
    }
  }
  if (failures != 0) {
    std::cerr << failures << " file(s) failed schema validation\n";
    return 1;
  }
  return 0;
}
