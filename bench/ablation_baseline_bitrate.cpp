// §II ablation — inter-video features cannot decode intra-video choices.
//
// Prior work identifies *which* video is streaming from bitrate/burst
// patterns (Reed & Kranch '17, Schuster et al. '17). The paper argues
// such features cannot distinguish two segments of the SAME interactive
// film, because every branch streams at the same bitrate. This bench
// runs both attacks on identical captures:
//   * the bitrate baseline — given even the true question times — must
//     decide default vs non-default from download volume, and lands
//     near chance;
//   * the record-length attack decodes the same sessions nearly
//     perfectly.
#include <cstdio>

#include "wm/core/bitrate_baseline.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

sim::SessionResult simulate(const story::StoryGraph& graph,
                            const std::vector<story::Choice>& choices,
                            std::uint64_t seed) {
  sim::SessionConfig config;
  config.seed = seed;
  return sim::simulate_session(graph, choices, config);
}

std::vector<story::Choice> pattern(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<story::Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.bernoulli(0.5) ? story::Choice::kDefault
                                     : story::Choice::kNonDefault);
  }
  return out;
}

}  // namespace

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  // --- calibration ------------------------------------------------------
  std::vector<core::BitrateBaseline::Calibration> bitrate_calibration;
  std::vector<core::CalibrationSession> length_calibration;
  for (std::uint64_t s = 0; s < 4; ++s) {
    auto a = simulate(graph, pattern(13, 100 + s), 8000 + s);
    auto b = simulate(graph, pattern(13, 200 + s), 8100 + s);
    bitrate_calibration.push_back(core::BitrateBaseline::Calibration{
        a.capture.packets, a.truth});
    length_calibration.push_back(core::CalibrationSession{
        std::move(b.capture.packets), std::move(b.truth)});
  }
  core::BitrateBaseline baseline;
  baseline.fit(bitrate_calibration);
  core::AttackPipeline attack("interval");
  attack.calibrate(length_calibration);

  std::printf("SectionII ablation — inter-video features vs the intra-video "
              "side-channel\n\n");
  std::printf("bitrate baseline learned means: default window %.0f B, "
              "non-default window %.0f B\n",
              baseline.default_mean(), baseline.non_default_mean());
  const double separation =
      std::abs(baseline.default_mean() - baseline.non_default_mean()) /
      std::max(baseline.default_mean(), baseline.non_default_mean());
  std::printf("relative separation: %.1f%% (both branches stream the same "
              "bitrate)\n\n",
              separation * 100.0);

  std::printf("%-5s %-4s %-22s %-22s\n", "sess", "Qs", "bitrate baseline",
              "record-length attack");
  std::size_t bitrate_correct = 0;
  std::size_t length_correct = 0;
  std::size_t total = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto victim = simulate(graph, pattern(13, 300 + s), 9000 + s);
    std::vector<util::SimTime> question_times;
    for (const auto& q : victim.truth.questions) {
      question_times.push_back(q.question_time);
    }

    const auto bitrate_pred =
        baseline.predict(victim.capture.packets, question_times);
    std::size_t bitrate_session = 0;
    for (std::size_t i = 0; i < bitrate_pred.size(); ++i) {
      if (bitrate_pred[i] == victim.truth.questions[i].choice) ++bitrate_session;
    }

    wm::engine::VectorSource source(&victim.capture.packets);
    const auto inferred = attack.infer(source).combined;
    const auto score = core::score_session(victim.truth, inferred);

    total += victim.truth.questions.size();
    bitrate_correct += bitrate_session;
    length_correct += score.choices_correct;

    std::printf("%-5llu %-4zu %-22s %-22s\n",
                static_cast<unsigned long long>(s + 1),
                victim.truth.questions.size(),
                util::format("%zu/%zu correct", bitrate_session,
                             victim.truth.questions.size())
                    .c_str(),
                util::format("%zu/%zu correct", score.choices_correct,
                             victim.truth.questions.size())
                    .c_str());
  }

  const double bitrate_acc =
      static_cast<double>(bitrate_correct) / static_cast<double>(total);
  const double length_acc =
      static_cast<double>(length_correct) / static_cast<double>(total);
  std::printf("\npooled accuracy: bitrate baseline %s (chance=50%%), "
              "record-length attack %s\n",
              util::format_percent(bitrate_acc).c_str(),
              util::format_percent(length_acc).c_str());
  std::printf("\npaper's claim holds: who wins = record lengths, by a wide "
              "margin;\nbitrate features carry ~no intra-video signal.\n");
  return 0;
}
