// Pipeline micro-benchmarks (google-benchmark): throughput of the
// attacker-side stages — packet decode, TCP reassembly + TLS record
// extraction, classification, and the full capture->choices pipeline —
// plus the simulator's session synthesis rate. These are performance
// numbers for OUR implementation (the paper reports none).
#include <benchmark/benchmark.h>

#include "wm/core/pipeline.hpp"
#include "wm/net/pcap.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"

using namespace wm;

namespace {

const sim::SessionResult& shared_session() {
  static const sim::SessionResult session = [] {
    const story::StoryGraph graph = story::make_bandersnatch();
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    sim::SessionConfig config;
    config.seed = 31337;
    return sim::simulate_session(graph, choices, config);
  }();
  return session;
}

core::AttackPipeline& shared_pipeline() {
  static core::AttackPipeline pipeline = [] {
    core::AttackPipeline p("interval");
    const auto& session = shared_session();
    p.calibrate({core::CalibrationSession{session.capture.packets,
                                          session.truth}});
    return p;
  }();
  return pipeline;
}

std::uint64_t capture_bytes(const std::vector<net::Packet>& packets) {
  std::uint64_t total = 0;
  for (const auto& packet : packets) total += packet.data.size();
  return total;
}

void BM_PacketDecode(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  for (auto _ : state) {
    std::size_t payload = 0;
    for (const net::Packet& packet : packets) {
      const auto decoded = net::decode_packet(packet);
      if (decoded) payload += decoded->transport_payload.size();
    }
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets.size() * static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketDecode);

void BM_RecordExtraction(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  for (auto _ : state) {
    const auto streams = tls::extract_record_streams(packets);
    benchmark::DoNotOptimize(streams.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_RecordExtraction);

void BM_Classification(benchmark::State& state) {
  const auto observations =
      core::extract_client_records(shared_session().capture.packets);
  const auto& pipeline = shared_pipeline();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& obs : observations) {
      if (pipeline.classifier().classify(obs.record_length) !=
          core::RecordClass::kOther) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(observations.size() *
                          static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Classification);

void BM_FullAttack(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  const auto& pipeline = shared_pipeline();
  for (auto _ : state) {
    const auto inferred = pipeline.infer(packets);
    benchmark::DoNotOptimize(inferred.questions.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_FullAttack);

void BM_SessionSynthesis(benchmark::State& state) {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices(13, story::Choice::kNonDefault);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SessionConfig config;
    config.seed = seed++;
    const auto session = sim::simulate_session(graph, choices, config);
    benchmark::DoNotOptimize(session.capture.packets.size());
  }
}
BENCHMARK(BM_SessionSynthesis)->Unit(benchmark::kMillisecond);

void BM_PcapWriteRead(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  const auto path = std::filesystem::temp_directory_path() / "wm_bench.pcap";
  for (auto _ : state) {
    net::write_pcap(path, packets);
    const auto loaded = net::read_pcap(path);
    benchmark::DoNotOptimize(loaded.size());
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      2 * capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_PcapWriteRead);

}  // namespace

BENCHMARK_MAIN();
