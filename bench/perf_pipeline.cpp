// Pipeline micro-benchmarks (google-benchmark): throughput of the
// attacker-side stages — packet decode, TCP reassembly + TLS record
// extraction, classification, and the full capture->choices pipeline —
// plus the simulator's session synthesis rate. These are performance
// numbers for OUR implementation (the paper reports none).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/obs/registry.hpp"
#include "wm/net/pcap.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"

using namespace wm;

namespace {

const sim::SessionResult& shared_session() {
  static const sim::SessionResult session = [] {
    const story::StoryGraph graph = story::make_bandersnatch();
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    sim::SessionConfig config;
    config.seed = 31337;
    return sim::simulate_session(graph, choices, config);
  }();
  return session;
}

core::AttackPipeline& shared_pipeline() {
  static core::AttackPipeline pipeline = [] {
    core::AttackPipeline p("interval");
    const auto& session = shared_session();
    p.calibrate({core::CalibrationSession{session.capture.packets,
                                          session.truth}});
    return p;
  }();
  return pipeline;
}

std::uint64_t capture_bytes(const std::vector<net::Packet>& packets) {
  std::uint64_t total = 0;
  for (const auto& packet : packets) total += packet.data.size();
  return total;
}

void BM_PacketDecode(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  for (auto _ : state) {
    std::size_t payload = 0;
    for (const net::Packet& packet : packets) {
      const auto decoded = net::decode_packet(packet);
      if (decoded) payload += decoded->transport_payload.size();
    }
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets.size() * static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketDecode);

void BM_RecordExtraction(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  for (auto _ : state) {
    const auto streams = tls::extract_record_streams(packets);
    benchmark::DoNotOptimize(streams.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_RecordExtraction);

void BM_Classification(benchmark::State& state) {
  const auto observations =
      core::extract_client_records(shared_session().capture.packets);
  const auto& pipeline = shared_pipeline();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& obs : observations) {
      if (pipeline.classifier().classify(obs.record_length) !=
          core::RecordClass::kOther) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(observations.size() *
                          static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Classification);

void BM_FullAttack(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  const auto& pipeline = shared_pipeline();
  for (auto _ : state) {
    wm::engine::VectorSource source(&packets);
    const auto inferred = pipeline.infer(source);
    benchmark::DoNotOptimize(inferred.combined.questions.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_FullAttack);

// --- Streaming engine scaling -----------------------------------------
//
// A merged many-viewer trace (8 concurrent sessions behind one tap) fed
// through the sharded engine at 1/2/4/8 workers, against the batch
// pipeline on the identical trace as the baseline. The interesting
// number is packets/s at 4 shards vs BM_BatchBaselineMultiViewer: the
// per-packet work (decode, reassembly, record extraction) is
// parallelised; only completed-record collection is serialised.
// Speedup tops out at min(shards, hardware cores).

const std::vector<net::Packet>& merged_multiviewer_capture() {
  static const std::vector<net::Packet> merged = [] {
    const story::StoryGraph graph = story::make_bandersnatch();
    std::vector<story::Choice> choices;
    for (int i = 0; i < 13; ++i) {
      choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                   : story::Choice::kDefault);
    }
    std::vector<net::Packet> packets;
    for (std::uint64_t v = 0; v < 8; ++v) {
      sim::SessionConfig config;
      config.seed = 5000 + v;
      config.packetize.client_ip =
          net::Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(50 + v));
      config.packetize.cdn_client_port = static_cast<std::uint16_t>(51000 + 2 * v);
      config.packetize.api_client_port = static_cast<std::uint16_t>(51001 + 2 * v);
      auto session = sim::simulate_session(graph, choices, config);
      for (net::Packet& packet : session.capture.packets) {
        packet.timestamp += util::Duration::millis(900) * static_cast<int>(v);
        packets.push_back(std::move(packet));
      }
    }
    std::stable_sort(packets.begin(), packets.end(),
                     [](const net::Packet& a, const net::Packet& b) {
                       return a.timestamp < b.timestamp;
                     });
    return packets;
  }();
  return merged;
}

void set_trace_counters(benchmark::State& state,
                        const std::vector<net::Packet>& packets,
                        std::uint64_t records) {
  state.SetBytesProcessed(static_cast<std::int64_t>(
      capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets.size() *
                          static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records * static_cast<std::uint64_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}

void BM_BatchBaselineMultiViewer(benchmark::State& state) {
  const auto& packets = merged_multiviewer_capture();
  const auto& pipeline = shared_pipeline();
  std::uint64_t records = 0;
  for (auto _ : state) {
    wm::engine::VectorSource source(&packets);
    core::InferOptions options;
    options.shards = 0;  // inline batch path: the single-thread baseline
    options.per_client = true;
    const auto report = pipeline.infer(source, options);
    records = 0;
    for (const auto& [client, session] : report.per_client) {
      records += session.type1_records + session.type2_records;
    }
    benchmark::DoNotOptimize(report.per_client.size());
  }
  set_trace_counters(state, packets, records);
}
BENCHMARK(BM_BatchBaselineMultiViewer)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EngineStreaming(benchmark::State& state) {
  const auto& packets = merged_multiviewer_capture();
  const auto& pipeline = shared_pipeline();
  core::InferOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  options.per_client = true;
  std::uint64_t records = 0;
  for (auto _ : state) {
    engine::VectorSource source(&packets);
    const auto report = pipeline.infer(source, options);
    records = report.stats.type1_records + report.stats.type2_records;
    benchmark::DoNotOptimize(report.per_client.size());
  }
  set_trace_counters(state, packets, records);
}
BENCHMARK(BM_EngineStreaming)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Instrumented run: identical work with a live wm::obs registry
// attached. Compare against BM_EngineStreaming at the same shard count
// — the delta is the observability overhead, which must stay in the
// noise (the hot path adds one predictable branch plus an uncontended
// atomic fetch_add per event; a null registry adds the branch alone).
void BM_EngineStreamingInstrumented(benchmark::State& state) {
  const auto& packets = merged_multiviewer_capture();
  const auto& pipeline = shared_pipeline();
  std::uint64_t records = 0;
  for (auto _ : state) {
    obs::Registry registry;
    core::InferOptions options;
    options.shards = static_cast<std::size_t>(state.range(0));
    options.per_client = true;
    options.metrics = &registry;
    engine::VectorSource source(&packets);
    const auto report = pipeline.infer(source, options);
    records = report.stats.type1_records + report.stats.type2_records;
    benchmark::DoNotOptimize(report.per_client.size());
    benchmark::DoNotOptimize(registry.snapshot().stable.size());
  }
  set_trace_counters(state, packets, records);
}
BENCHMARK(BM_EngineStreamingInstrumented)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SessionSynthesis(benchmark::State& state) {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices(13, story::Choice::kNonDefault);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::SessionConfig config;
    config.seed = seed++;
    const auto session = sim::simulate_session(graph, choices, config);
    benchmark::DoNotOptimize(session.capture.packets.size());
  }
}
BENCHMARK(BM_SessionSynthesis)->Unit(benchmark::kMillisecond);

void BM_PcapWriteRead(benchmark::State& state) {
  const auto& packets = shared_session().capture.packets;
  const auto path = std::filesystem::temp_directory_path() / "wm_bench.pcap";
  for (auto _ : state) {
    net::write_pcap(path, packets);
    const auto loaded = net::read_pcap(path);
    benchmark::DoNotOptimize(loaded.size());
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      2 * capture_bytes(packets) * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_PcapWriteRead);

/// One demonstration run with a live registry, printed after the
/// benchmark table: what the stage report looks like on real work.
void print_stage_report() {
  const auto& packets = merged_multiviewer_capture();
  const auto& pipeline = shared_pipeline();
  obs::Registry registry;
  core::InferOptions options;
  options.shards = 4;
  options.per_client = true;
  options.metrics = &registry;
  engine::VectorSource source(&packets);
  (void)pipeline.infer(source, options);
  std::cout << "\n" << registry.snapshot().to_text();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  print_stage_report();
  return 0;
}
