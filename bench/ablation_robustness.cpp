// Robustness ablation (ours): how much of the attack survives when the
// eavesdropper's capture itself is imperfect.
//
// The paper varies operating conditions but assumes a lossless tap.
// Here we degrade the capture after the fact — random frame drops at
// the monitoring point and snaplen truncation — and re-run the attack.
// Expected shape: record lengths ride on *reassembled TCP streams*, so
// even small capture loss desynchronizes flows and the attack decays
// quickly; snaplen below the MSS destroys it outright. This quantifies
// the attack's hidden assumption.
#include <cstdio>

#include "wm/core/pipeline.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

std::vector<story::Choice> alternating(std::size_t n) {
  std::vector<story::Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                             : story::Choice::kDefault);
  }
  return out;
}

}  // namespace

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  // Calibrate on clean captures (the attacker trains at leisure).
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 2500 + s;
    auto session = sim::simulate_session(graph, alternating(13), config);
    calibration.push_back(core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Victim sessions to degrade.
  struct Victim {
    std::vector<net::Packet> packets;
    sim::SessionGroundTruth truth;
  };
  std::vector<Victim> victims;
  for (std::uint64_t s = 0; s < 5; ++s) {
    sim::SessionConfig config;
    config.seed = 2600 + s;
    auto session = sim::simulate_session(graph, alternating(13), config);
    victims.push_back(Victim{std::move(session.capture.packets),
                             std::move(session.truth)});
  }

  auto evaluate = [&](const std::function<std::vector<net::Packet>(
                          const std::vector<net::Packet>&, util::Rng&)>& impair) {
    std::vector<core::SessionScore> scores;
    util::Rng rng(99);
    for (const Victim& victim : victims) {
      const auto degraded = impair(victim.packets, rng);
      wm::engine::VectorSource source(&degraded);
      scores.push_back(
          core::score_session(victim.truth, attack.infer(source).combined));
    }
    return core::aggregate_scores(scores);
  };

  std::printf("robustness ablation — attack vs capture impairments "
              "(%zu sessions each)\n\n",
              victims.size());
  std::printf("%-28s %-12s %-12s\n", "impairment", "pooled acc", "worst case");
  std::printf("%s\n", std::string(54, '-').c_str());

  {
    const auto score = evaluate(
        [](const std::vector<net::Packet>& p, util::Rng&) { return p; });
    std::printf("%-28s %-12s %-12s\n", "none (lossless tap)",
                util::format_percent(score.pooled_accuracy).c_str(),
                util::format_percent(score.worst_accuracy).c_str());
  }

  for (double loss : {0.0001, 0.001, 0.01, 0.05}) {
    const auto score =
        evaluate([loss](const std::vector<net::Packet>& p, util::Rng& rng) {
          return sim::drop_packets(p, loss, rng);
        });
    std::printf("%-28s %-12s %-12s\n",
                util::format("capture loss %.2f%%", loss * 100).c_str(),
                util::format_percent(score.pooled_accuracy).c_str(),
                util::format_percent(score.worst_accuracy).c_str());
  }

  for (std::size_t snaplen : {4096u, 1514u, 256u, 96u}) {
    const auto score =
        evaluate([snaplen](const std::vector<net::Packet>& p, util::Rng&) {
          return sim::truncate_snaplen(p, snaplen);
        });
    std::printf("%-28s %-12s %-12s\n",
                util::format("snaplen %zu B", snaplen).c_str(),
                util::format_percent(score.pooled_accuracy).c_str(),
                util::format_percent(score.worst_accuracy).c_str());
  }

  {
    const auto score =
        evaluate([](const std::vector<net::Packet>& p, util::Rng& rng) {
          return sim::jitter_order(p, 0.002, rng);
        });
    std::printf("%-28s %-12s %-12s\n", "2 ms capture jitter",
                util::format_percent(score.pooled_accuracy).c_str(),
                util::format_percent(score.worst_accuracy).c_str());
  }

  std::printf(
      "\nreading: the side-channel needs complete byte streams — frame loss\n"
      "at the tap (not on the path!) or sub-MSS snaplen starves TCP\n"
      "reassembly and the record parser; timestamp jitter is harmless\n"
      "because reassembly orders by sequence number, not capture order.\n");
  return 0;
}
