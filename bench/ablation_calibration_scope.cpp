// Calibration-scope ablation (ours): per-condition vs global bands.
//
// Fig. 2 shows that the JSON bands differ across (OS, browser)
// combinations. An attacker can either calibrate one classifier per
// condition (needing to know the victim's platform) or pool
// calibration traces from many conditions into one global classifier.
// This bench quantifies the trade-off:
//   * per-condition: bands are tight and disjoint -> near-perfect;
//   * global over Firefox conditions: unions stay disjoint -> works;
//   * global over ALL conditions: the Chrome/TLS1.3 bands of one
//     condition fall inside the telemetry range of another, bands
//     bloat, phantom/missed questions appear.
#include <cstdio>

#include "wm/core/fingerprint.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

using namespace wm;

namespace {

std::vector<story::Choice> alternating(std::size_t n) {
  std::vector<story::Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                             : story::Choice::kDefault);
  }
  return out;
}

sim::SessionResult simulate(const story::StoryGraph& graph,
                            const sim::OperationalConditions& conditions,
                            std::uint64_t seed) {
  sim::SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return sim::simulate_session(graph, alternating(13), config);
}

struct Scope {
  const char* name;
  std::vector<sim::OperationalConditions> calibration_conditions;
};

}  // namespace

int main() {
  const story::StoryGraph graph = story::make_bandersnatch();

  sim::OperationalConditions linux_ff;  // Firefox/Linux
  sim::OperationalConditions windows_ff = linux_ff;
  windows_ff.os = sim::OperatingSystem::kWindows;
  sim::OperationalConditions mac_ff = linux_ff;
  mac_ff.os = sim::OperatingSystem::kMac;
  sim::OperationalConditions linux_chrome = linux_ff;
  linux_chrome.browser = sim::Browser::kChrome;
  sim::OperationalConditions windows_chrome = windows_ff;
  windows_chrome.browser = sim::Browser::kChrome;
  sim::OperationalConditions mac_chrome = mac_ff;
  mac_chrome.browser = sim::Browser::kChrome;

  // Victims: two sessions per Firefox condition.
  const std::vector<sim::OperationalConditions> victim_conditions{
      linux_ff, windows_ff, mac_ff};

  const std::vector<Scope> scopes = {
      {"per-condition", {}},  // special-cased below
      {"global: Linux+Windows Firefox", {linux_ff, windows_ff}},
      {"global: all Firefox", {linux_ff, windows_ff, mac_ff}},
      {"global: all six conditions",
       {linux_ff, windows_ff, mac_ff, linux_chrome, windows_chrome, mac_chrome}},
  };

  std::printf("calibration-scope ablation (victims: Firefox on Linux / Windows "
              "/ Mac)\n\n");
  std::printf("%-30s %-9s %-12s %-12s %-10s\n", "calibration scope", "bands",
              "pooled acc", "worst case", "Q count ok");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (const Scope& scope : scopes) {
    std::vector<core::SessionScore> scores;
    bool bands_overlap = false;
    std::size_t count_matches = 0;
    std::size_t sessions = 0;

    if (std::string(scope.name) == "per-condition") {
      for (const auto& conditions : victim_conditions) {
        core::AttackPipeline attack("interval");
        std::vector<core::CalibrationSession> calibration;
        for (std::uint64_t s = 0; s < 3; ++s) {
          auto session = simulate(graph, conditions, 3100 + s);
          calibration.push_back(core::CalibrationSession{
              std::move(session.capture.packets), std::move(session.truth)});
        }
        attack.calibrate(calibration);
        const auto& clf =
            dynamic_cast<const core::IntervalClassifier&>(attack.classifier());
        bands_overlap |= clf.bands_overlap();
        for (std::uint64_t s = 0; s < 2; ++s) {
          const auto victim = simulate(graph, conditions, 3200 + s);
          wm::engine::VectorSource source(&victim.capture.packets);
          const auto score = core::score_session(
              victim.truth, attack.infer(source).combined);
          scores.push_back(score);
          count_matches += score.question_count_match ? 1 : 0;
          ++sessions;
        }
      }
    } else {
      core::AttackPipeline attack("interval");
      std::vector<core::CalibrationSession> calibration;
      std::uint64_t seed = 3300;
      for (const auto& conditions : scope.calibration_conditions) {
        for (std::uint64_t s = 0; s < 2; ++s) {
          auto session = simulate(graph, conditions, seed++);
          calibration.push_back(core::CalibrationSession{
              std::move(session.capture.packets), std::move(session.truth)});
        }
      }
      attack.calibrate(calibration);
      const auto& clf =
          dynamic_cast<const core::IntervalClassifier&>(attack.classifier());
      bands_overlap = clf.bands_overlap();
      // Victims come only from conditions the pool covered: we measure
      // union-collision cost, not the trivial unseen-platform case.
      std::vector<sim::OperationalConditions> scope_victims;
      for (const auto& conditions : victim_conditions) {
        for (const auto& covered : scope.calibration_conditions) {
          if (conditions == covered) scope_victims.push_back(conditions);
        }
      }
      for (const auto& conditions : scope_victims) {
        for (std::uint64_t s = 0; s < 2; ++s) {
          const auto victim = simulate(graph, conditions, 3200 + s);
          wm::engine::VectorSource source(&victim.capture.packets);
          const auto score = core::score_session(
              victim.truth, attack.infer(source).combined);
          scores.push_back(score);
          count_matches += score.question_count_match ? 1 : 0;
          ++sessions;
        }
      }
    }

    const auto agg = core::aggregate_scores(scores);
    std::printf("%-30s %-9s %-12s %-12s %zu/%zu\n", scope.name,
                bands_overlap ? "overlap" : "disjoint",
                util::format_percent(agg.pooled_accuracy).c_str(),
                util::format_percent(agg.worst_accuracy).c_str(), count_matches,
                sessions);
  }

  // --- fingerprint attacker: library of per-condition classifiers,
  // victim's condition identified from the capture itself -------------
  {
    const std::vector<sim::OperationalConditions> library_conditions{
        linux_ff, windows_ff, mac_ff, linux_chrome, windows_chrome, mac_chrome};
    const auto library = core::ConditionFingerprinter::build_library(
        graph, library_conditions, /*sessions_per_condition=*/3, /*seed=*/3400);
    std::vector<core::SessionScore> scores;
    std::size_t count_matches = 0;
    std::size_t identified = 0;
    std::size_t sessions = 0;
    for (const auto& conditions : victim_conditions) {
      for (std::uint64_t s = 0; s < 2; ++s) {
        const auto victim = simulate(graph, conditions, 3200 + s);
        const auto result = library.infer(victim.capture.packets);
        if (result.conditions && result.conditions->os == conditions.os &&
            result.conditions->browser == conditions.browser) {
          ++identified;
        }
        const auto score = core::score_session(victim.truth, result.session);
        scores.push_back(score);
        count_matches += score.question_count_match ? 1 : 0;
        ++sessions;
      }
    }
    const auto agg = core::aggregate_scores(scores);
    std::printf("%-30s %-9s %-12s %-12s %zu/%zu   (platform identified %zu/%zu)\n",
                "fingerprint + per-condition", "disjoint",
                util::format_percent(agg.pooled_accuracy).c_str(),
                util::format_percent(agg.worst_accuracy).c_str(), count_matches,
                sessions, identified, sessions);
  }

  std::printf(
      "\nreading: the attack generalizes across conditions only while the\n"
      "union of JSON bands avoids every condition's 'others' traffic:\n"
      "Linux+Windows Firefox unions stay clear, but adding Mac (whose\n"
      "type-1 band falls inside Linux's telemetry range) or Chrome's\n"
      "TLS 1.3 bands brings phantom/missed questions — the practical cost\n"
      "of not knowing the victim's platform. Note the global classifiers'\n"
      "JSON bands stay mutually disjoint; it is the OTHER traffic of one\n"
      "condition colliding with the JSON bands of another that hurts.\n"
      "The fingerprint attacker sidesteps the whole problem: identify the\n"
      "victim's platform from the trace, then use that platform's bands.\n");
  return 0;
}
