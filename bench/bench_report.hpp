// Shared schema for the committed BENCH_pr*.json documents.
//
// Every hand-rolled benchmark binary (perf_ingest, perf_fleet) emits
// the same envelope — {"bench": <name>, "version": kBenchSchemaVersion,
// "smoke": <bool>, <sections>...} — through Report, and the same row
// shape for throughput measurements through Throughput. validate()
// checks both, and is used three ways: by each binary's --smoke
// self-check, by the bench_validate CLI that CI runs over the emitted
// and the committed documents, and by the bench-validate ctest entry.
//
// Version history: version 1 documents (BENCH_pr3/6/7.json) predate the
// shared emitter; they parse but are exempt from the row-shape rules
// (several of their engine rows carry the bytes=0 accounting bug this
// schema exists to keep fixed). Version 2 adds the mandatory envelope
// and requires every throughput row to carry real byte totals.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "wm/util/json.hpp"

namespace wm::bench {

/// Bump when the envelope or row shape changes incompatibly.
inline constexpr std::int64_t kBenchSchemaVersion = 2;

/// One throughput measurement row. `bytes` must be the real byte count
/// the measured path moved — validate() rejects rows where packets
/// flowed but bytes stayed zero (the PR 3 engine-row bug).
struct Throughput {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] double packets_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(packets) / seconds : 0.0;
  }
  [[nodiscard]] double bytes_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
  [[nodiscard]] util::JsonValue to_json() const;
};

/// Accumulates named sections, then renders the versioned envelope.
class Report {
 public:
  Report(std::string bench_name, bool smoke)
      : bench_name_(std::move(bench_name)), smoke_(smoke) {}

  /// Attach one top-level section (overwrites a same-named section).
  void add_section(const std::string& name, util::JsonValue value);

  /// Render the full document (envelope + sections), 2-space indented.
  [[nodiscard]] std::string render() const;

  /// render() to stdout, and to `path` when non-empty. Throws on I/O
  /// failure.
  void emit(const std::string& path) const;

 private:
  std::string bench_name_;
  bool smoke_ = false;
  util::JsonObject sections_;
};

/// Validate one parsed benchmark document against the schema. Returns
/// human-readable problems; empty means the document conforms.
/// Version 1 documents get envelope checks only (historic files are
/// kept as committed); version >= 2 additionally requires every object
/// carrying "packets_per_sec" to be a well-formed row: seconds and
/// packets always, and — when the row advertises byte rates at all —
/// real, nonzero byte accounting to back them.
[[nodiscard]] std::vector<std::string> validate(const util::JsonValue& document);

/// Parse + validate a file on disk. I/O and parse errors come back as
/// problems rather than exceptions, so the CLI can keep going.
[[nodiscard]] std::vector<std::string> validate_file(
    const std::filesystem::path& path);

}  // namespace wm::bench
