// TLS handshake message construction and parsing — enough of RFC 5246 /
// 8446 to (a) let the simulator emit realistic ClientHello/ServerHello/
// Certificate/Finished flights and (b) let the attacker extract the SNI
// host name from a ClientHello, which is how Netflix flows are picked
// out of a capture in practice.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/util/bytes.hpp"

namespace wm::tls {

enum class HandshakeType : std::uint8_t {
  kHelloRequest = 0,
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kCertificate = 11,
  kServerKeyExchange = 12,
  kCertificateRequest = 13,
  kServerHelloDone = 14,
  kClientKeyExchange = 16,
  kFinished = 20,
};

std::string to_string(HandshakeType type);

/// Extension identifiers used by this project.
enum class ExtensionType : std::uint16_t {
  kServerName = 0,
  kSupportedGroups = 10,
  kAlpn = 16,
  kSupportedVersions = 43,
  kKeyShare = 51,
};

struct Extension {
  std::uint16_t type = 0;
  util::Bytes body;
};

/// ClientHello with the fields this project reads or writes. Unknown
/// extensions round-trip opaquely.
struct ClientHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  util::Bytes session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<std::uint8_t> compression_methods{0};
  std::vector<Extension> extensions;

  /// Convenience: set/get the server_name (SNI) extension.
  void set_sni(std::string_view host_name);
  [[nodiscard]] std::optional<std::string> sni() const;
  /// Convenience: set the ALPN protocol list (e.g. {"h2","http/1.1"}).
  void set_alpn(const std::vector<std::string>& protocols);

  /// Serialize as a handshake message (type + 24-bit length + body).
  [[nodiscard]] util::Bytes serialize() const;
  /// Parse from a handshake message. Returns nullopt on malformed input.
  static std::optional<ClientHello> parse(util::BytesView handshake_message);
};

struct ServerHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  util::Bytes session_id;
  std::uint16_t cipher_suite = 0;
  std::uint8_t compression_method = 0;
  std::vector<Extension> extensions;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<ServerHello> parse(util::BytesView handshake_message);
};

/// Build an opaque handshake message of the given type whose *total*
/// serialized size (header included) is `total_size`; used to model
/// Certificate and other flights whose exact contents don't matter but
/// whose sizes shape the trace. total_size must be >= 4.
util::Bytes opaque_handshake_message(HandshakeType type, std::size_t total_size);

/// Extract the SNI host name from raw handshake-record payload bytes
/// (possibly containing multiple handshake messages). Returns nullopt
/// when no ClientHello with an SNI is present.
std::optional<std::string> extract_sni(util::BytesView handshake_payload);

}  // namespace wm::tls
