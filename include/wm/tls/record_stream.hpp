// Attacker-side record-stream extraction.
//
// Chains the passive pipeline the paper's eavesdropper runs: decode
// packets → group into flows → reassemble each TCP direction → parse
// TLS records → emit, per flow, the time-ordered sequence of
// (direction, content type, record length) events. Record *lengths* of
// client-to-server application records are the side-channel of §III.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/flow.hpp"
#include "wm/net/packet.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/tls/record.hpp"

namespace wm::tls {

/// One observed TLS record, reduced to what an eavesdropper can see.
struct RecordEvent {
  util::SimTime timestamp;
  net::FlowDirection direction = net::FlowDirection::kClientToServer;
  ContentType content_type = ContentType::kApplicationData;
  std::uint16_t record_length = 0;  // the visible SSL record length
  std::uint64_t stream_offset = 0;

  [[nodiscard]] bool is_client_application_data() const {
    return direction == net::FlowDirection::kClientToServer &&
           content_type == ContentType::kApplicationData;
  }
};

/// All records of one TLS connection, plus flow metadata.
struct FlowRecordStream {
  net::FlowKey flow;
  std::optional<std::string> sni;  // from the ClientHello, if seen
  std::vector<RecordEvent> events;
  std::uint64_t client_stream_bytes = 0;
  std::uint64_t server_stream_bytes = 0;
  bool client_desynchronized = false;
  bool server_desynchronized = false;

  [[nodiscard]] std::size_t count(net::FlowDirection direction,
                                  ContentType type) const;
};

/// Streaming extractor: add packets in capture order, then finish().
class RecordStreamExtractor {
 public:
  RecordStreamExtractor() = default;

  /// Feed the next captured packet. Non-TCP and non-decodable packets
  /// are counted and otherwise ignored.
  void add_packet(const net::Packet& packet);

  /// Complete extraction and return one stream per TCP flow, ordered by
  /// first-seen time.
  [[nodiscard]] std::vector<FlowRecordStream> finish() const;

  [[nodiscard]] std::size_t packets_seen() const { return packets_seen_; }
  [[nodiscard]] std::size_t packets_undecodable() const {
    return packets_undecodable_;
  }

 private:
  struct PerFlow {
    net::TcpConnectionReassembler reassembler;
    TlsRecordParser client_parser;
    TlsRecordParser server_parser;
    std::vector<RecordEvent> events;
    std::optional<std::string> sni;
    util::SimTime first_seen;
    bool sni_searched = false;
  };

  net::FlowTable flow_table_;
  std::map<net::FlowKey, PerFlow> flows_;
  std::size_t packets_seen_ = 0;
  std::size_t packets_undecodable_ = 0;
};

/// One-shot convenience: extract record streams from a full capture.
std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets);

}  // namespace wm::tls
