// Attacker-side record-stream extraction.
//
// Chains the passive pipeline the paper's eavesdropper runs: decode
// packets → group into flows → reassemble each TCP direction → parse
// TLS records → emit, per flow, the time-ordered sequence of
// (direction, content type, record length) events. Record *lengths* of
// client-to-server application records are the side-channel of §III.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/flow.hpp"
#include "wm/net/packet.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/obs/registry.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/arena.hpp"

namespace wm::tls {

/// One observed TLS record, reduced to what an eavesdropper can see.
struct RecordEvent {
  util::SimTime timestamp;
  net::FlowDirection direction = net::FlowDirection::kClientToServer;
  ContentType content_type = ContentType::kApplicationData;
  std::uint16_t record_length = 0;  // the visible SSL record length
  std::uint64_t stream_offset = 0;
  /// First record parsed after a stream gap or a TLS resync scan: the
  /// bytes immediately before it were lost, so its classification
  /// deserves less confidence downstream.
  bool after_gap = false;

  [[nodiscard]] bool is_client_application_data() const {
    return direction == net::FlowDirection::kClientToServer &&
           content_type == ContentType::kApplicationData;
  }
};

/// A span of stream bytes that was declared unrecoverable by the
/// reassembler (segment loss, buffer-cap drop, or snaplen truncation).
struct StreamGapEvent {
  util::SimTime timestamp;
  net::FlowDirection direction = net::FlowDirection::kClientToServer;
  std::uint64_t stream_offset = 0;
  std::uint64_t length = 0;
};

/// All records of one TLS connection, plus flow metadata.
struct FlowRecordStream {
  net::FlowKey flow;
  std::optional<std::string> sni;  // from the ClientHello, if seen
  std::vector<RecordEvent> events;
  std::uint64_t client_stream_bytes = 0;
  std::uint64_t server_stream_bytes = 0;
  bool client_desynchronized = false;
  bool server_desynchronized = false;
  /// Loss accounting: reassembly gaps seen on either direction, the
  /// bytes they covered, and what the TLS resync scanner discarded /
  /// recovered while re-locking.
  std::uint64_t gaps = 0;
  std::uint64_t gap_bytes = 0;
  std::uint64_t tls_bytes_skipped = 0;
  std::uint64_t tls_resyncs = 0;

  [[nodiscard]] std::size_t count(net::FlowDirection direction,
                                  ContentType type) const;
};

/// One incremental delivery from RecordStreamExtractor::feed(): either
/// a newly parsed record or a stream gap, with the flow it belongs to.
struct StreamEvent {
  enum class Kind : std::uint8_t { kRecord, kGap };
  net::FlowKey flow;
  Kind kind = Kind::kRecord;
  RecordEvent event;   // valid when kind == kRecord
  StreamGapEvent gap;  // valid when kind == kGap
};

/// Streaming extractor. Two modes of use:
///
///  * Batch (historic): add_packet() every packet, then finish() for
///    one FlowRecordStream per flow.
///  * Resumable (the engine's hot path): feed() returns the records
///    each packet completed, so analysis proceeds as traffic arrives.
///    With Config::retain_events=false and an idle timeout set, memory
///    stays bounded by the number of *live* flows, not capture length.
class RecordStreamExtractor {
 public:
  struct Config {
    /// Keep per-flow event history so finish() can return it. Online
    /// consumers that react to feed()'s return value turn this off.
    bool retain_events = true;
    /// Evict per-flow state (reassembler, parsers) for flows idle
    /// longer than this. Zero = never evict.
    util::Duration idle_timeout{};
    /// Observability (wm::obs). When `registry` is set, the extractor
    /// registers counters for packets, flows, TCP reassembly and TLS
    /// records under `metrics_scope` ("<scope>.records.application",
    /// "<scope>.flows.evicted", ...) with `metrics_stability`. A
    /// non-empty `metrics_rollup` additionally publishes each metric
    /// into "<rollup><suffix>" rollups summed across extractors — how
    /// the engine's per-shard extractors produce shard-count-invariant
    /// totals. Null registry = zero instrumentation cost.
    obs::Registry* registry = nullptr;
    std::string metrics_scope = "tls";
    obs::Stability metrics_stability = obs::Stability::kStable;
    std::string metrics_rollup;
    /// Per-direction reassembly tuning (reorder window, buffer budget)
    /// applied to every flow's TcpConnectionReassembler.
    net::TcpStreamReassembler::Config reassembly;
  };

  RecordStreamExtractor() : RecordStreamExtractor(Config{}) {}
  explicit RecordStreamExtractor(Config config);

  /// Move-only: per-flow map nodes live on the extractor's arena (held
  /// through a stable unique_ptr), so moves are safe but copies would
  /// alias the arena.
  RecordStreamExtractor(RecordStreamExtractor&&) = default;
  RecordStreamExtractor& operator=(RecordStreamExtractor&&) = delete;

  /// Feed the next captured packet and return the TLS records it
  /// completed, in parse order. Non-TCP and non-decodable packets are
  /// counted and otherwise ignored. This is the scalar-oracle path: it
  /// decodes through the full decode_packet() parser chain, while
  /// feed_batch() goes through the slab decoder — downstream of decode
  /// the two share every line of code, so differential tests comparing
  /// them pin the decoders against each other.
  std::vector<StreamEvent> feed(const net::Packet& packet);

  /// Hot-path entry point: decode `count` packets slab-wise (256 per
  /// column pass) and process each, appending completed records and
  /// gaps to `out`. Behaviour and observability are identical to
  /// calling feed() per packet, at a fraction of the per-packet cost.
  void feed_batch(const net::Packet* packets, std::size_t count,
                  std::vector<StreamEvent>& out);

  /// Zero-copy variant over borrowed frames. `stable_payload` is the
  /// lifetime contract: true means every view's backing store (an
  /// mmap'd capture, an in-memory trace) outlives this extractor, so
  /// out-of-order reassembly buffers views instead of copying segment
  /// payloads. With false the frames only need to live through this
  /// call. Event output is byte-identical to the owned overload on the
  /// same frames either way.
  void feed_batch(const net::PacketView* packets, std::size_t count,
                  std::vector<StreamEvent>& out, bool stable_payload);

  /// Historic entry point: feed() with the results dropped (they are
  /// still retained for finish() when Config::retain_events is on).
  void add_packet(const net::Packet& packet) { feed(packet); }

  /// End-of-capture: flush every live flow — outstanding reassembly
  /// holes become gaps, the TLS parsers re-lock with relaxed validation
  /// and emit their final records — and retire the per-flow state.
  /// Returns the events that freed up, in flow-key order.
  std::vector<StreamEvent> flush();

  /// Complete extraction (implies flush()) and return one stream per
  /// TCP flow (including evicted ones, when events are retained),
  /// ordered by first-seen time.
  [[nodiscard]] std::vector<FlowRecordStream> finish();

  [[nodiscard]] std::size_t packets_seen() const { return packets_seen_; }
  [[nodiscard]] std::size_t packets_undecodable() const {
    return packets_undecodable_;
  }
  /// Flows currently holding reassembly/parser state.
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  /// High-water mark of active_flows() over the extractor's lifetime.
  [[nodiscard]] std::size_t peak_active_flows() const {
    return peak_active_flows_;
  }
  /// The arena backing the flow map, for stats/poisoning tests.
  [[nodiscard]] const util::Arena& arena() const { return *arena_; }
  /// Total flows opened / evicted over the extractor's lifetime.
  [[nodiscard]] std::uint64_t flows_opened() const { return flows_opened_; }
  [[nodiscard]] std::uint64_t flows_evicted() const { return flows_evicted_; }
  /// Flows retired cleanly (RST teardown or flush()).
  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  /// Loss-tolerance totals across all flows, live and retired.
  [[nodiscard]] std::uint64_t gaps() const { return gaps_total_; }
  [[nodiscard]] std::uint64_t gap_bytes() const { return gap_bytes_total_; }
  [[nodiscard]] std::uint64_t tls_bytes_skipped() const { return tls_skipped_total_; }
  [[nodiscard]] std::uint64_t tls_resyncs() const { return tls_resyncs_total_; }
  /// Sum of live out-of-order reassembly buffers across active flows.
  [[nodiscard]] std::size_t buffered_reassembly_bytes() const;
  /// The SNI observed on a flow, if its ClientHello has been parsed.
  [[nodiscard]] std::optional<std::string> sni_of(const net::FlowKey& flow) const;

  /// Timer-driven idle eviction: evict every flow idle past
  /// Config::idle_timeout as of `now`, bypassing the packet-cadence
  /// gate feed() uses. The continuous monitor calls this from its time
  /// wheel so flows leave on schedule even when no packet for any flow
  /// arrives. Returns flows evicted. No-op when idle_timeout is zero.
  std::size_t sweep_idle(util::SimTime now);

 private:
  struct PerFlow {
    net::TcpConnectionReassembler reassembler;
    TlsRecordParser client_parser;
    TlsRecordParser server_parser;
    std::vector<RecordEvent> events;
    std::optional<std::string> sni;
    util::SimTime first_seen;
    util::SimTime last_seen;
    bool sni_searched = false;
    std::uint64_t gaps = 0;
    std::uint64_t gap_bytes = 0;
    /// TLS skip/resync totals already mirrored into the extractor-wide
    /// counters, so deltas can be published incrementally.
    std::uint64_t tls_skipped_accounted = 0;
    std::uint64_t tls_resyncs_accounted = 0;
    /// This flow's slot key in the open-addressing index (the remapped
    /// endpoint-pair hash), kept so erasure can tombstone the slot
    /// without recomputing it.
    std::uint64_t index_hash = 0;
  };

  /// Flow-state authority, ordered by key so eviction sweeps and
  /// flush() walk flows in FlowKey order (the shard-invariant order the
  /// differential tests pin). Nodes come from the extractor's arena.
  using FlowMap =
      std::map<net::FlowKey, PerFlow, std::less<net::FlowKey>,
               util::ArenaAllocator<std::pair<const net::FlowKey, PerFlow>>>;

  /// One open-addressing index slot: remapped hash (0 = empty,
  /// 1 = tombstone, >= 2 = live) plus the map entry it points at.
  struct IndexSlot {
    std::uint64_t hash = 0;
    FlowMap::iterator it{};
  };

  /// Shared per-packet TCP processing behind both decode paths.
  /// `stable_payload` forwards the zero-copy lifetime contract down to
  /// the reassembler (see feed_batch's PacketView overload).
  void feed_tcp(util::SimTime timestamp, const net::Endpoint& source,
                const net::Endpoint& destination, std::uint8_t tcp_flags,
                std::uint32_t sequence, util::BytesView payload,
                std::size_t truncated_bytes, bool stable_payload,
                std::vector<StreamEvent>& out);
  /// Per-packet processing of one slab lens (decode already done);
  /// `frame` is the raw frame the lens' offsets index into.
  void feed_lens(util::SimTime timestamp, util::BytesView frame,
                 const net::PacketLens& lens, bool stable_payload,
                 std::vector<StreamEvent>& out);
  /// Buffer-everything fallback of feed_tcp for segments the in-order
  /// fast path rejects (SYN/FIN/RST, truncation, reorder, retransmit).
  void feed_tcp_slow(FlowMap::iterator it, net::FlowDirection direction,
                     util::SimTime timestamp, std::uint32_t sequence,
                     std::uint8_t tcp_flags, util::BytesView payload,
                     std::size_t truncated_bytes, bool has_payload,
                     bool stable_payload, std::vector<StreamEvent>& out);

  /// Probe the index for either orientation of (source, destination).
  /// On a hit, `direction` is set to the matching orientation.
  FlowMap::iterator find_flow(std::uint64_t hash, const net::Endpoint& source,
                              const net::Endpoint& destination,
                              net::FlowDirection& direction);
  FlowMap::iterator insert_flow(std::uint64_t hash, const net::FlowKey& key);
  /// Tombstone the index slot, recycle the PerFlow into the pool, and
  /// erase the map node. Returns the iterator past the erased entry.
  FlowMap::iterator erase_flow(FlowMap::iterator it);
  void index_insert(std::uint64_t hash, FlowMap::iterator it);
  void index_grow();

  void evict_idle(util::SimTime now);
  FlowRecordStream snapshot(const net::FlowKey& key, const PerFlow& state) const;
  /// Route reassembler output (chunks and gaps) through the right TLS
  /// parser and append the resulting StreamEvents to `out`.
  void process_items(const net::FlowKey& key, PerFlow& state,
                     std::vector<net::TcpConnectionReassembler::DirectedItem>& items,
                     std::vector<StreamEvent>& out);
  void emit_record(const net::FlowKey& key, PerFlow& state,
                   net::FlowDirection direction, TlsRecordParser::ParsedRecord& parsed,
                   std::vector<StreamEvent>& out);
  /// Publish any not-yet-accounted TLS skip/resync deltas for a flow.
  void sync_tls_counters(PerFlow& state);
  /// Flush parsers, snapshot, and retire one flow (RST or flush()).
  void complete_flow(FlowMap::iterator it, std::vector<StreamEvent>& out);

  /// Resolved metric handles; all null when Config::registry is null.
  struct Metrics {
    obs::Counter* flows_opened = nullptr;
    obs::Counter* flows_evicted = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* packets_undecodable = nullptr;
    obs::Counter* tcp_segments = nullptr;
    obs::Counter* tcp_segments_buffered = nullptr;
    obs::Counter* tcp_chunks = nullptr;
    obs::Counter* tcp_bytes = nullptr;
    obs::Counter* tcp_dropped_bytes = nullptr;
    obs::Counter* tcp_gaps = nullptr;
    obs::Counter* tcp_gap_bytes = nullptr;
    obs::Counter* tls_resyncs = nullptr;
    obs::Counter* tls_skipped_bytes = nullptr;
    obs::Counter* records_after_gap = nullptr;
    obs::Counter* records = nullptr;
    obs::Counter* records_handshake = nullptr;
    obs::Counter* records_application = nullptr;
    obs::Counter* records_alert = nullptr;
    obs::Counter* records_other = nullptr;
    obs::Counter* client_app_records = nullptr;
    obs::Histogram* client_record_lengths = nullptr;
  };

  Config config_;
  Metrics metrics_;
  /// Backs the flow-map nodes. Held through a unique_ptr so the arena's
  /// address survives extractor moves (map nodes and the allocator both
  /// point at it); declared before flows_ so it outlives the map.
  std::unique_ptr<util::Arena> arena_;
  FlowMap flows_;
  /// Open-addressing hash index over flows_: a lookup is one symmetric
  /// endpoint-pair hash plus a short linear probe, instead of up to two
  /// ordered-map descents with FlowKey comparisons per level.
  std::vector<IndexSlot> index_;
  std::size_t index_live_ = 0;
  std::size_t index_tombstones_ = 0;
  /// Retired PerFlow shells (parsers reset, vectors cleared but with
  /// capacity retained) awaiting reuse, so steady-state flow churn
  /// stops paying buffer reallocation.
  std::vector<PerFlow> pool_;
  /// Scratch reused across packets by the slow reassembly path.
  std::vector<net::TcpConnectionReassembler::DirectedItem> items_scratch_;
  /// Scratch for parser output (ParsedRecord views), reused per chunk.
  std::vector<TlsRecordParser::ParsedRecord> parsed_scratch_;
  /// Reused slab for feed_batch's column-wise decode.
  net::DecodedSlab slab_;
  std::size_t peak_active_flows_ = 0;
  /// Streams of evicted flows, kept only when retain_events is on so
  /// batch callers never lose data to eviction.
  std::vector<FlowRecordStream> completed_;
  util::SimTime last_sweep_;
  bool sweep_armed_ = false;
  std::uint64_t flows_opened_ = 0;
  std::uint64_t flows_evicted_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t gaps_total_ = 0;
  std::uint64_t gap_bytes_total_ = 0;
  std::uint64_t tls_skipped_total_ = 0;
  std::uint64_t tls_resyncs_total_ = 0;
  std::size_t packets_seen_ = 0;
  std::size_t packets_undecodable_ = 0;
};

/// One-shot convenience: extract record streams from a full capture.
std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets);

}  // namespace wm::tls
