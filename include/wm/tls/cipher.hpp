// Cipher-suite length model: how many ciphertext bytes a TLS record
// carries for a given plaintext size.
//
// The attack never decrypts anything — it reasons about lengths — so
// the simulation only needs the *length transform* of each cipher
// construction to be faithful:
//   TLS 1.2 AES-GCM:  ciphertext = 8 (explicit nonce) + plaintext + 16 (tag)
//   TLS 1.2 AES-CBC+HMAC: IV + pad(plaintext + mac) to block size
//   TLS 1.3 AEAD:     ciphertext = plaintext + 1 (inner type) + pad + 16 (tag)
// ChaCha20-Poly1305 (TLS 1.2): plaintext + 16 (no explicit nonce).
#pragma once

#include <cstdint>
#include <string>

namespace wm::tls {

enum class CipherSuite : std::uint16_t {
  // TLS 1.2 suites (values from the IANA registry).
  kTlsEcdheRsaAes128GcmSha256 = 0xc02f,
  kTlsEcdheRsaAes256GcmSha384 = 0xc030,
  kTlsEcdheRsaChacha20Poly1305 = 0xcca8,
  kTlsRsaAes128CbcSha = 0x002f,
  // TLS 1.3 suites.
  kTlsAes128GcmSha256 = 0x1301,
  kTlsAes256GcmSha384 = 0x1302,
  kTlsChacha20Poly1305Sha256 = 0x1303,
};

std::string to_string(CipherSuite suite);

/// True for suites that belong to TLS 1.3 (record format differs).
bool is_tls13_suite(CipherSuite suite);

/// Length transform of one cipher suite.
class CipherModel {
 public:
  /// `tls13_pad_to` — when nonzero and the suite is TLS 1.3, plaintext
  /// (+1 inner type byte) is padded up to a multiple of this many bytes
  /// before sealing, modelling record-padding countermeasures.
  explicit CipherModel(CipherSuite suite, std::size_t tls13_pad_to = 0);

  [[nodiscard]] CipherSuite suite() const { return suite_; }

  /// Ciphertext (record payload) size for a given plaintext size.
  [[nodiscard]] std::size_t seal_size(std::size_t plaintext_size) const;

  /// Inverse: plaintext size for a given ciphertext size. For CBC the
  /// result is the *maximum* plaintext that could produce that
  /// ciphertext (padding is ambiguous); for padded TLS 1.3 likewise.
  [[nodiscard]] std::size_t open_size(std::size_t ciphertext_size) const;

  /// Fixed per-record overhead (lower bound, useful for display).
  [[nodiscard]] std::size_t overhead() const;

 private:
  CipherSuite suite_;
  std::size_t tls13_pad_to_;
};

}  // namespace wm::tls
