// TLS session emitter: turns application-layer payloads into the exact
// record sequences a TLS endpoint would put on the wire.
//
// The simulator drives one TlsSession per connection. Handshake flights
// are generated with realistic message sizes (so the capture looks like
// real TLS and the attacker's SNI extraction has something to parse);
// application payloads are fragmented at the stack's limit and sealed
// through the CipherModel length transform.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/tls/cipher.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/rng.hpp"

namespace wm::tls {

/// Per-connection TLS parameters. Browser/OS profiles in the simulator
/// map onto these.
struct TlsSessionConfig {
  CipherSuite suite = CipherSuite::kTlsEcdheRsaAes256GcmSha384;
  /// Version bytes written in record headers (TLS 1.3 still writes 0x0303).
  std::uint16_t record_version = 0x0303;
  /// Stack's plaintext fragmentation limit (<= 2^14). Some stacks use
  /// smaller write chunks; Netflix CDN connections use the full size.
  std::size_t max_plaintext_fragment = kMaxFragmentLength;
  /// TLS 1.3 record padding quantum (0 = no padding).
  std::size_t tls13_pad_to = 0;
  /// SNI host name the client sends (empty = no SNI extension).
  std::string sni;
  /// ALPN protocols offered by the client.
  std::vector<std::string> alpn = {"h2", "http/1.1"};
  /// Approximate certificate-chain size the server sends; real chains
  /// are 3-6 KiB.
  std::size_t certificate_chain_size = 4096;
};

/// Stateful record emitter for one TLS connection.
class TlsSession {
 public:
  TlsSession(TlsSessionConfig config, util::Rng rng);

  [[nodiscard]] const TlsSessionConfig& config() const { return config_; }
  [[nodiscard]] const CipherModel& cipher() const { return cipher_; }

  /// Client's first flight: one handshake record carrying ClientHello.
  std::vector<TlsRecord> client_hello_flight();

  /// Server's reply flight: ServerHello + Certificate(+...) +
  /// ServerHelloDone (TLS1.2 shape) or ServerHello + encrypted
  /// extensions blob (TLS1.3 shape), followed by CCS where applicable.
  std::vector<TlsRecord> server_hello_flight();

  /// Client's finishing flight (key exchange / finished + CCS).
  std::vector<TlsRecord> client_finished_flight();

  /// Seal one application-layer message; returns >= 1 records. Lengths
  /// follow the cipher model exactly; payload bytes are pseudo-random
  /// filler standing in for ciphertext.
  std::vector<TlsRecord> seal_application_data(std::size_t plaintext_size);

  /// Seal with the actual plaintext (used where tests want to verify
  /// content round-trips; only the size matters on the wire).
  std::vector<TlsRecord> seal_application_data(util::BytesView plaintext);

  /// Closure alert record.
  TlsRecord close_notify();

  /// Total application records sealed so far (both helpers).
  [[nodiscard]] std::size_t records_sealed() const { return records_sealed_; }

 private:
  TlsRecord make_record(ContentType type, std::size_t payload_size);
  util::Bytes random_payload(std::size_t size);

  TlsSessionConfig config_;
  CipherModel cipher_;
  util::Rng rng_;
  std::size_t records_sealed_ = 0;
};

}  // namespace wm::tls
