// TLS record layer: framing, parsing and emission.
//
// The paper's side-channel is the *length field of TLS (SSL) records*,
// which stays in cleartext even when everything else is encrypted. This
// module implements the record framing both ways:
//  * the simulator uses TlsRecordEmitter to wrap application payloads
//    into records exactly as a TLS stack would (16 KiB fragmentation,
//    AEAD expansion, optional padding), and
//  * the attacker uses TlsRecordParser to pull the record sequence —
//    content type, version, length, direction, time — back out of a
//    reassembled TCP stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::tls {

/// TLS record content types (RFC 5246 / 8446).
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
  kHeartbeat = 24,
};

std::string to_string(ContentType type);
bool is_known_content_type(std::uint8_t value);

/// Legacy protocol version carried in the record header.
enum class ProtocolVersion : std::uint16_t {
  kSsl30 = 0x0300,
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  // TLS 1.3 records carry 0x0303 on the wire; the enum value below is
  // used only for cipher-model selection, never serialized.
  kTls13 = 0x0304,
};

std::string to_string(ProtocolVersion version);

/// Maximum plaintext fragment length (RFC: 2^14).
inline constexpr std::size_t kMaxFragmentLength = 1 << 14;
/// Maximum ciphertext length permitted in a record (2^14 + 2048).
inline constexpr std::size_t kMaxCiphertextLength = (1 << 14) + 2048;
/// Record header size: type (1) + version (2) + length (2).
inline constexpr std::size_t kRecordHeaderSize = 5;

/// One TLS record as seen on the wire.
struct TlsRecord {
  ContentType content_type = ContentType::kApplicationData;
  std::uint16_t version_raw = 0x0303;
  util::Bytes payload;  // ciphertext (or plaintext for handshake records)

  /// Total bytes on the wire including the 5-byte header.
  [[nodiscard]] std::size_t wire_size() const {
    return kRecordHeaderSize + payload.size();
  }
  /// The length field value — the paper's "SSL record length".
  [[nodiscard]] std::uint16_t length() const {
    return static_cast<std::uint16_t>(payload.size());
  }
};

/// Serialize a record (header + payload).
void serialize_record(const TlsRecord& record, util::ByteWriter& out);
util::Bytes serialize_records(const std::vector<TlsRecord>& records);

/// Incremental parser over a (reassembled) TLS byte stream. Feed bytes
/// as they are delivered; complete records pop out with the timestamp
/// of the chunk that completed them.
class TlsRecordParser {
 public:
  struct ParsedRecord {
    util::SimTime timestamp;
    std::uint64_t stream_offset = 0;  // offset of the record header
    TlsRecord record;
  };

  /// Feed the next contiguous chunk of stream bytes.
  std::vector<ParsedRecord> feed(util::SimTime timestamp, util::BytesView data);

  /// True when the stream desynchronized (implausible header). Once
  /// desynchronized the parser stops producing records: resynchronizing
  /// inside ciphertext is not possible in general.
  [[nodiscard]] bool desynchronized() const { return desynchronized_; }
  /// Bytes consumed from the stream so far (including partial record).
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }
  /// Number of complete records produced.
  [[nodiscard]] std::size_t records_parsed() const { return records_parsed_; }

 private:
  util::Bytes buffer_;
  std::uint64_t consumed_ = 0;
  std::uint64_t buffer_start_ = 0;  // stream offset of buffer_[0]
  std::size_t records_parsed_ = 0;
  bool desynchronized_ = false;
};

}  // namespace wm::tls
