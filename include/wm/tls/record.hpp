// TLS record layer: framing, parsing and emission.
//
// The paper's side-channel is the *length field of TLS (SSL) records*,
// which stays in cleartext even when everything else is encrypted. This
// module implements the record framing both ways:
//  * the simulator uses TlsRecordEmitter to wrap application payloads
//    into records exactly as a TLS stack would (16 KiB fragmentation,
//    AEAD expansion, optional padding), and
//  * the attacker uses TlsRecordParser to pull the record sequence —
//    content type, version, length, direction, time — back out of a
//    reassembled TCP stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::tls {

/// TLS record content types (RFC 5246 / 8446).
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
  kHeartbeat = 24,
};

std::string to_string(ContentType type);
bool is_known_content_type(std::uint8_t value);

/// Legacy protocol version carried in the record header.
enum class ProtocolVersion : std::uint16_t {
  kSsl30 = 0x0300,
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  // TLS 1.3 records carry 0x0303 on the wire; the enum value below is
  // used only for cipher-model selection, never serialized.
  kTls13 = 0x0304,
};

std::string to_string(ProtocolVersion version);

/// Maximum plaintext fragment length (RFC: 2^14).
inline constexpr std::size_t kMaxFragmentLength = 1 << 14;
/// Maximum ciphertext length permitted in a record (2^14 + 2048).
inline constexpr std::size_t kMaxCiphertextLength = (1 << 14) + 2048;
/// Record header size: type (1) + version (2) + length (2).
inline constexpr std::size_t kRecordHeaderSize = 5;

/// One TLS record as seen on the wire.
struct TlsRecord {
  ContentType content_type = ContentType::kApplicationData;
  std::uint16_t version_raw = 0x0303;
  util::Bytes payload;  // ciphertext (or plaintext for handshake records)

  /// Total bytes on the wire including the 5-byte header.
  [[nodiscard]] std::size_t wire_size() const {
    return kRecordHeaderSize + payload.size();
  }
  /// The length field value — the paper's "SSL record length".
  [[nodiscard]] std::uint16_t length() const {
    return static_cast<std::uint16_t>(payload.size());
  }
};

/// Serialize a record (header + payload).
void serialize_record(const TlsRecord& record, util::ByteWriter& out);
util::Bytes serialize_records(const std::vector<TlsRecord>& records);

/// Incremental parser over a (reassembled) TLS byte stream. Feed bytes
/// as they are delivered; complete records pop out with the timestamp
/// of the chunk that completed them.
///
/// Loss tolerance: an implausible header or an explicit gap
/// notification (on_gap) puts the parser into a scanning state instead
/// of a permanent desync. The scanner looks for the next plausible
/// 5-byte record header and validates it by chaining consecutive
/// length fields (`kResyncChain` plausible headers in a row) before
/// re-locking; skipped bytes are counted and the first record after a
/// re-lock carries `after_gap = true` so downstream consumers can
/// down-weight it.
class TlsRecordParser {
 public:
  /// Headers that must chain (each one's length field landing exactly
  /// on the next plausible header) before the scanner re-locks. Three
  /// chained headers make an accidental match in ciphertext
  /// vanishingly unlikely (~2^-40 per candidate offset).
  static constexpr std::size_t kResyncChain = 3;

  /// One parsed record header plus a *view* of its payload. The parser
  /// never copies payload bytes: `payload` borrows either from the
  /// caller's chunk (fast path) or from the parser's internal buffer,
  /// and stays valid only until the next call into the parser (feed /
  /// on_gap / flush / reset). The length side-channel itself — the
  /// paper's feature — is the `length` field; most consumers never
  /// touch the payload at all. Application-data records whose body
  /// spanned more than one feed are delivered with an *empty* payload
  /// (the body-skip fast path below): their ciphertext is opaque and
  /// was streamed past without ever being buffered.
  struct ParsedRecord {
    util::SimTime timestamp;
    std::uint64_t stream_offset = 0;  // offset of the record header
    ContentType content_type = ContentType::kApplicationData;
    std::uint16_t version_raw = 0x0303;
    /// The record header's length field — the paper's "SSL record
    /// length". Always equals payload.size().
    std::uint16_t length = 0;
    // wm-lint: allow(borrow): valid until the next parser call; see
    // the struct comment.
    util::BytesView payload;
    /// True for the first record parsed after a gap or a resync scan:
    /// bytes were lost immediately before it, so length-based features
    /// derived from it deserve less trust.
    bool after_gap = false;
  };

  /// Feed the next contiguous chunk of stream bytes, appending complete
  /// records to `out`. Any previously returned ParsedRecord views are
  /// invalidated by this call.
  void feed(util::SimTime timestamp, util::BytesView data,
            std::vector<ParsedRecord>& out);
  std::vector<ParsedRecord> feed(util::SimTime timestamp, util::BytesView data);

  /// Return the parser to its freshly-constructed state, retaining the
  /// buffer's capacity. Used when per-flow state is recycled through a
  /// pool; callers tracking counter deltas must re-baseline.
  void reset();

  /// Notify the parser that `length` stream bytes were lost at the
  /// current stream position (a reassembly StreamGap). Any partial
  /// record in the buffer can never complete: its bytes are skipped and
  /// the parser scans for the next plausible record header.
  void on_gap(util::SimTime timestamp, std::uint64_t length);

  /// End-of-stream: re-lock with a relaxed chain requirement (all
  /// plausible headers up to the end of buffered data, even if fewer
  /// than kResyncChain) and return any records that frees up. An
  /// incomplete trailing record stays unparsed.
  void flush(util::SimTime timestamp, std::vector<ParsedRecord>& out);
  std::vector<ParsedRecord> flush(util::SimTime timestamp);

  /// True while the parser is hunting for a plausible record boundary
  /// (after a gap or an implausible header) and not currently
  /// producing records.
  [[nodiscard]] bool desynchronized() const { return scanning_; }
  /// Bytes consumed from the stream so far (including partial record).
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }
  /// Number of complete records produced.
  [[nodiscard]] std::size_t records_parsed() const { return records_parsed_; }
  /// Bytes discarded while scanning (garbage between gap and re-lock).
  [[nodiscard]] std::uint64_t bytes_skipped() const { return skipped_; }
  /// Number of successful re-locks after a gap/desync.
  [[nodiscard]] std::size_t resyncs() const { return resyncs_; }
  /// Current buffered-byte footprint (bounded even on garbage input).
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - buffer_pos_;
  }

 private:
  /// (absolute stream offset one past a chunk's last byte, its capture
  /// time): lets records whose bytes arrived across several feeds be
  /// stamped with the chunk that actually completed them.
  struct ChunkMark {
    std::uint64_t end = 0;
    util::SimTime time;
  };

  void parse(util::SimTime timestamp, bool relaxed,
             std::vector<ParsedRecord>& out);
  /// Hot-path variant of feed for the common case (empty buffer, not
  /// scanning): parses complete records straight out of the caller's
  /// chunk view and copies only the partial tail into the buffer,
  /// instead of appending the whole chunk first. Behaviour is
  /// byte-identical to the buffered path.
  void feed_contiguous(util::SimTime timestamp, util::BytesView data,
                       std::vector<ParsedRecord>& out);
  /// Deferred compaction: parse() leaves consumed bytes in place (so
  /// payload views into buffer_ survive until the next call) and only
  /// records the consumed prefix in buffer_pos_; the next feed erases
  /// it here before appending.
  void compact();
  /// Scan [pos, buffer_.end()) for a validated record header. Advances
  /// `pos` over skipped bytes. Returns true when re-locked at `pos`.
  [[nodiscard]] bool try_resync(std::size_t& pos, bool relaxed);
  [[nodiscard]] bool plausible_header(std::size_t pos) const;
  [[nodiscard]] util::SimTime time_for(std::uint64_t end_offset,
                                       util::SimTime fallback) const;

  util::Bytes buffer_;
  /// Consumed prefix of buffer_ awaiting compaction; buffer_[buffer_pos_]
  /// is the first live byte.
  std::size_t buffer_pos_ = 0;
  /// Body-skip fast path: a locked-on application-data record whose
  /// body extends past the bytes seen so far is *streamed past*, not
  /// buffered — its ciphertext is never inspected, only its length
  /// matters. While skip_remaining_ > 0 the buffer is empty and
  /// skip_record_ holds the header fields; the record is emitted (with
  /// an empty payload) by the feed that delivers its last byte.
  std::size_t skip_remaining_ = 0;
  /// Bytes of the in-flight skipped record already consumed (header +
  /// partial body) — what on_gap() must count as skipped if the body is
  /// torn by a hole.
  std::size_t skip_consumed_ = 0;
  ParsedRecord skip_record_;
  std::vector<ChunkMark> marks_;
  std::uint64_t consumed_ = 0;
  std::uint64_t buffer_start_ = 0;  // stream offset of buffer_[0]
  std::uint64_t skipped_ = 0;
  std::size_t records_parsed_ = 0;
  std::size_t resyncs_ = 0;
  bool scanning_ = false;
  bool pending_after_gap_ = false;
};

}  // namespace wm::tls
