// Prior-work baseline: inter-video features (bitrate / throughput
// windows, as in Reed & Kranch 2017 and Schuster et al. 2017) applied
// to the intra-video problem.
//
// §II argues these features cannot distinguish segments of the same
// film: every branch streams at the same bitrate. This baseline makes
// that argument executable — it extracts per-question download-volume
// windows and tries to decide default vs non-default from them; its
// accuracy hovering at chance is ablation A2.
#pragma once

#include <vector>

#include "wm/net/packet.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/story/graph.hpp"
#include "wm/util/time.hpp"

namespace wm::core {

/// Downstream-throughput feature around one detected question: bytes
/// fetched in the window after the question appeared.
struct BitrateWindow {
  util::SimTime window_start;
  double bytes_in_window = 0.0;
  double mean_throughput_bps = 0.0;
};

/// Extract per-question bitrate windows. Question times must be
/// supplied (the baseline is given MORE than a real attacker would
/// have, and still fails).
std::vector<BitrateWindow> extract_bitrate_windows(
    const std::vector<net::Packet>& packets,
    const std::vector<util::SimTime>& question_times, util::Duration window);

/// Threshold classifier over window volume: learns mean volumes of
/// default vs non-default questions from calibration, predicts by
/// nearest mean.
class BitrateBaseline {
 public:
  struct Calibration {
    std::vector<net::Packet> packets;
    sim::SessionGroundTruth truth;
  };

  explicit BitrateBaseline(util::Duration window = util::Duration::seconds(2))
      : window_(window) {}

  void fit(const std::vector<Calibration>& sessions);
  [[nodiscard]] bool fitted() const { return fitted_; }

  /// Predict the choice at each supplied question time.
  [[nodiscard]] std::vector<story::Choice> predict(
      const std::vector<net::Packet>& packets,
      const std::vector<util::SimTime>& question_times) const;

  [[nodiscard]] double default_mean() const { return default_mean_; }
  [[nodiscard]] double non_default_mean() const { return non_default_mean_; }

 private:
  util::Duration window_;
  double default_mean_ = 0.0;
  double non_default_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace wm::core
