// Feature extraction for the attack: from a capture (or pre-extracted
// record streams) to the sequence of client-side application-data
// record lengths — the side-channel of §III — plus honest labelling of
// calibration traces from ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/tls/record_stream.hpp"

namespace wm::core {

/// Classes the attack distinguishes (§III: "the number and type of
/// JSON files sent indicate the choice made by the viewer").
enum class RecordClass : std::uint8_t { kType1Json = 0, kType2Json = 1, kOther = 2 };

std::string to_string(RecordClass cls);
inline constexpr std::size_t kRecordClassCount = 3;

/// One observation: a client->server application record.
struct ClientRecordObservation {
  util::SimTime timestamp;
  std::uint16_t record_length = 0;
  std::optional<std::string> flow_sni;  // flow's SNI if the hello was seen
  /// The record was the first parsed after a reassembly gap or TLS
  /// resync: its length is trustworthy but bytes before it were lost,
  /// so inferences anchored on it deserve less confidence.
  bool after_gap = false;
};

/// A labelled observation (calibration data).
struct LabeledObservation {
  ClientRecordObservation observation;
  RecordClass label = RecordClass::kOther;
};

/// Pull every client->server application-data record out of a set of
/// record streams, time-ordered. This is the attacker's feature view.
std::vector<ClientRecordObservation> extract_client_records(
    const std::vector<tls::FlowRecordStream>& streams);

/// Convenience: packets -> client record observations.
std::vector<ClientRecordObservation> extract_client_records(
    const std::vector<net::Packet>& packets);

/// Label calibration observations against ground truth the way the
/// paper's researchers did: the state upload emitted when question Qi
/// appeared is the record closest to the noted question time, and the
/// upload at a non-default decision is the record closest to the noted
/// decision time. `tolerance` bounds the match window.
std::vector<LabeledObservation> label_observations(
    const std::vector<ClientRecordObservation>& observations,
    const sim::SessionGroundTruth& truth,
    util::Duration tolerance = util::Duration::millis(250));

}  // namespace wm::core
