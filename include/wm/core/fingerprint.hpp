// Operational-condition fingerprinting: which (OS, browser, ...) was
// the victim running?
//
// The calibration-scope ablation shows a single pooled classifier
// degrades because JSON bands and "other" traffic collide ACROSS
// conditions. A stronger attacker keeps one per-condition classifier
// (a library built once, offline) and first identifies the victim's
// condition from the capture itself: the true condition's bands catch
// a small, structurally consistent set of records (1..N type-1,
// type-2 <= type-1, one type-1 per question), while wrong conditions
// catch either nothing (their bands fall in this condition's guard
// gaps) or only stray telemetry records. This module
// scores every library entry and attacks with the best match —
// removing the paper's implicit "attacker knows the platform"
// assumption.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/core/pipeline.hpp"
#include "wm/sim/profile.hpp"

namespace wm::core {

/// One calibrated entry of the attacker's library.
struct FingerprintEntry {
  sim::OperationalConditions conditions;
  std::shared_ptr<AttackPipeline> pipeline;
};

/// Plausibility of one condition hypothesis against an observation set.
struct FingerprintScore {
  sim::OperationalConditions conditions;
  std::size_t type1_hits = 0;
  std::size_t type2_hits = 0;
  bool plausible = false;  // structural constraints satisfied
  /// Lower is better among plausible hypotheses: the negative of the
  /// structure explained (type-1 hits + 2 x type-2 hits).
  double penalty = 0.0;
};

class ConditionFingerprinter {
 public:
  /// Add a calibrated per-condition pipeline to the library.
  void add(sim::OperationalConditions conditions,
           std::shared_ptr<AttackPipeline> pipeline);

  /// Build a full library by simulating calibration sessions for each
  /// given condition (the attacker can do this offline with their own
  /// devices). `sessions_per_condition` controls band coverage.
  static ConditionFingerprinter build_library(
      const story::StoryGraph& graph,
      const std::vector<sim::OperationalConditions>& conditions,
      std::size_t sessions_per_condition, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return library_.size(); }

  /// Score every hypothesis against the observations (sorted, best
  /// first: plausible before implausible, then ascending penalty).
  [[nodiscard]] std::vector<FingerprintScore> score(
      const std::vector<ClientRecordObservation>& observations) const;

  /// Identify the victim's condition; nullopt when no hypothesis is
  /// plausible (e.g. a countermeasure destroyed the bands).
  [[nodiscard]] std::optional<sim::OperationalConditions> identify(
      const std::vector<ClientRecordObservation>& observations) const;

  /// Full attack without prior platform knowledge: fingerprint, then
  /// decode with the matched per-condition classifier.
  struct [[nodiscard]] Result {
    std::optional<sim::OperationalConditions> conditions;
    InferredSession session;
  };
  [[nodiscard]] Result infer(const std::vector<net::Packet>& packets) const;

 private:
  std::vector<FingerprintEntry> library_;
};

}  // namespace wm::core
