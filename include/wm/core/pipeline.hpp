// End-to-end attack pipeline: pcap (or in-memory packets) in, inferred
// choices out. Bundles calibration (training sessions -> fitted
// classifier) and inference (capture -> record stream -> classify ->
// decode -> optional path reconstruction).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wm/core/decoder.hpp"
#include "wm/core/eval.hpp"
#include "wm/core/features.hpp"
#include "wm/sim/session.hpp"

namespace wm::core {

/// A calibration example: one captured session with noted choices.
struct CalibrationSession {
  std::vector<net::Packet> packets;
  sim::SessionGroundTruth truth;
};

class AttackPipeline {
 public:
  /// `classifier_name`: "interval" (paper's method), "knn" or
  /// "gaussian-nb".
  explicit AttackPipeline(std::string classifier_name = "interval");

  /// Fit the classifier from calibration sessions (traces + ground
  /// truth, as the IITM dataset provides).
  void calibrate(const std::vector<CalibrationSession>& sessions);

  /// Fit directly from pre-labelled observations.
  void calibrate(const std::vector<LabeledObservation>& labelled);

  [[nodiscard]] bool calibrated() const;
  [[nodiscard]] const RecordClassifier& classifier() const { return *classifier_; }

  /// Run inference on a capture.
  [[nodiscard]] InferredSession infer(const std::vector<net::Packet>& packets) const;
  /// Run inference on a capture file (classic pcap or pcapng).
  [[nodiscard]] InferredSession infer_pcap(const std::filesystem::path& path) const;

  /// A monitoring point often carries several viewers at once. Group
  /// flows by client endpoint (the viewer's address) and decode each
  /// viewer separately; the map key is the client address string.
  [[nodiscard]] std::map<std::string, InferredSession> infer_per_client(
      const std::vector<net::Packet>& packets) const;

 private:
  std::unique_ptr<RecordClassifier> classifier_;
};

}  // namespace wm::core
