// End-to-end attack pipeline: packets (from any PacketSource) in,
// inferred choices out. Bundles calibration (training sessions ->
// fitted classifier) and inference (capture -> record stream ->
// classify -> decode -> optional path reconstruction).
//
// The inference surface is a single entry point,
//
//     InferReport infer(engine::PacketSource&, const InferOptions&)
//
// whose options carry every knob that used to multiply overloads:
// per-client splitting, story-graph path reconstruction, shard count
// for the streaming engine, flow eviction, and a live event sink.
// File-based inference goes through infer_capture(), which reports
// typed errors. The historic vector/path convenience overloads are
// gone; wrap a vector in engine::VectorSource and set
// options.per_client instead (migration notes in CHANGES.md).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/core/decoder.hpp"
#include "wm/core/engine/engine.hpp"
#include "wm/core/eval.hpp"
#include "wm/core/features.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/session.hpp"
#include "wm/util/result.hpp"

namespace wm::core {

/// A calibration example: one captured session with noted choices.
struct CalibrationSession {
  std::vector<net::Packet> packets;
  sim::SessionGroundTruth truth;
};

/// Every inference knob in one place, so new capabilities extend this
/// struct instead of adding overloads.
struct InferOptions {
  /// Worker threads for the streaming engine. 0 = run inline on the
  /// calling thread (exact batch semantics, no threads).
  std::size_t shards = 0;
  /// Also decode each viewer (client endpoint) separately; fills
  /// InferReport::per_client with viewers that produced questions.
  bool per_client = false;
  /// When set, reconstruct the watched path through this story graph
  /// from the combined choice sequence; fills InferReport::path.
  const story::StoryGraph* story = nullptr;
  /// Duplicate-suppression window for question detection.
  util::Duration min_question_gap = util::Duration::millis(120);
  /// Evict idle per-flow analysis state (0 = never; see EngineConfig).
  util::Duration flow_idle_timeout{};
  /// Per-flow TCP reassembly tuning: reorder window (bytes/segments)
  /// before a head-of-line hole is declared a StreamGap, and the
  /// out-of-order buffer budget. Defaults suit clean-to-moderately
  /// lossy captures; shrink the windows to trade recovery latency for
  /// memory on heavily impaired taps.
  net::TcpStreamReassembler::Config reassembly;
  /// Live typed per-viewer events (question opened / choice inferred /
  /// gap observed) as records are analyzed. Must outlive the infer call
  /// and honour the EventSink thread-safety contract (engine/events.hpp)
  /// when shards > 0. Null = no live events.
  engine::EventSink* sink = nullptr;
  /// Observability (wm::obs): registry every stage reports into —
  /// pipeline decode totals, engine per-shard/rollup counters, capture
  /// source counters, stage timings. Null (the default) means no
  /// instrumentation and no overhead. Overrides the registry installed
  /// with AttackPipeline::set_metrics() for this run.
  obs::Registry* metrics = nullptr;
};

/// Everything one inference run produced.
struct InferReport {
  /// Whole-capture decode (all viewers as one stream).
  InferredSession combined;
  /// Per-viewer decode, keyed by client address; only viewers whose
  /// traffic contained questions (InferOptions::per_client).
  std::map<std::string, InferredSession> per_client;
  /// Path reconstruction of `combined` (InferOptions::story).
  std::optional<InferredPath> path;
  engine::EngineStats stats;
};

class AttackPipeline {
 public:
  /// `classifier_name`: "interval" (paper's method), "knn" or
  /// "gaussian-nb".
  explicit AttackPipeline(std::string classifier_name = "interval");

  /// Fit the classifier from calibration sessions (traces + ground
  /// truth, as the IITM dataset provides).
  void calibrate(const std::vector<CalibrationSession>& sessions);

  /// Fit directly from pre-labelled observations.
  void calibrate(const std::vector<LabeledObservation>& labelled);

  [[nodiscard]] bool calibrated() const;
  [[nodiscard]] const RecordClassifier& classifier() const { return *classifier_; }

  /// Install a default metrics registry: calibrate() and every infer
  /// call without InferOptions::metrics report here. The registry must
  /// outlive the pipeline (or a subsequent set_metrics(nullptr)).
  void set_metrics(obs::Registry* metrics) { metrics_ = metrics; }
  [[nodiscard]] obs::Registry* metrics() const { return metrics_; }

  /// Run inference on a packet stream. The source is consumed; with
  /// options.shards > 0 analysis is parallelized across worker threads
  /// and produces output byte-identical to the inline run. Never
  /// throws for stream problems: a source that ends in error still
  /// yields whatever decoded before it, with stats.source_errors set.
  [[nodiscard]] InferReport infer(engine::PacketSource& source,
                                  const InferOptions& options = {}) const;

  /// Open a capture file (classic pcap or pcapng) and infer. Failures
  /// — missing file, unknown format, corrupt contents — come back as
  /// typed errors instead of exceptions.
  [[nodiscard]] Result<InferReport> infer_capture(
      const std::filesystem::path& path, const InferOptions& options = {}) const;

 private:
  std::unique_ptr<RecordClassifier> classifier_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace wm::core
