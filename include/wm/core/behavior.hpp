// Behavioural profiling from recovered choices — the harm the paper's
// introduction motivates: "the choices made and the path followed can
// potentially reveal viewer information that ranges from benign (e.g.,
// their food and music preferences) to sensitive (e.g., their affinity
// to violence and political inclination)". §VI invites behavioural
// researchers to build on the recovered choices; this module is that
// analysis layer, applied to ATTACK OUTPUT (not ground truth).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "wm/core/decoder.hpp"
#include "wm/story/graph.hpp"

namespace wm::core {

/// A keyword rule: when the label of the option a viewer picked
/// contains `keyword` (case-insensitive), tag the viewer with `tag`.
struct TraitRule {
  std::string keyword;
  std::string tag;
};

/// Default rule set for the canonical Bandersnatch-like script:
/// violence, risk-taking, self-harm, conformity and meta-awareness.
std::vector<TraitRule> default_trait_rules();

/// What the eavesdropper can say about one viewer after decoding their
/// session against the script graph.
struct ViewerTraitProfile {
  /// Fraction of questions answered with the non-default option —
  /// an "exploration" tendency measure.
  double exploration_rate = 0.0;
  std::size_t questions = 0;
  /// Labels of the options the viewer picked, in order.
  std::vector<std::string> picked_labels;
  /// Trait tags triggered by the picks (deduplicated, sorted).
  std::vector<std::string> tags;
  /// Name of the ending segment reached, if any.
  std::string ending;
};

/// Build a trait profile from decoded choices. The choices are walked
/// through the graph so each pick is matched to the on-screen label the
/// viewer actually selected.
ViewerTraitProfile profile_viewer(const story::StoryGraph& graph,
                                  const std::vector<story::Choice>& choices,
                                  const std::vector<TraitRule>& rules);

/// Aggregate exploration statistics over a cohort, keyed by an
/// attribute value (e.g. "age=<20", "mood=Stressed").
struct CohortBehaviorReport {
  struct Group {
    std::size_t viewers = 0;
    double mean_exploration = 0.0;
    std::map<std::string, std::size_t> tag_counts;
  };
  std::map<std::string, Group> groups;

  /// Add one profiled viewer under the given group keys.
  void add(const ViewerTraitProfile& profile,
           const std::vector<std::string>& group_keys);
};

}  // namespace wm::core
