// Evaluation metrics: score inferred choices against ground truth, per
// session and aggregated — the quantities behind the paper's "96% in
// the worst case" headline.
#pragma once

#include <string>
#include <vector>

#include "wm/core/decoder.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/util/stats.hpp"

namespace wm::core {

/// Score for one session.
struct SessionScore {
  std::size_t questions_truth = 0;     // questions actually encountered
  std::size_t questions_inferred = 0;  // questions the attack detected
  std::size_t choices_correct = 0;     // aligned questions decoded right
  /// Fraction of true questions whose choice was recovered correctly
  /// (missed or misaligned questions count as wrong).
  double choice_accuracy = 0.0;
  /// Question detection: |inferred| == |truth| and times align.
  bool question_count_match = false;
};

/// Align by order of appearance and score.
SessionScore score_session(const sim::SessionGroundTruth& truth,
                           const InferredSession& inferred);

/// Aggregate over many sessions.
struct AggregateScore {
  std::size_t sessions = 0;
  std::size_t questions = 0;
  std::size_t correct = 0;
  double mean_accuracy = 0.0;   // mean of per-session accuracies
  double worst_accuracy = 1.0;  // the paper's headline statistic
  double pooled_accuracy = 0.0; // correct / questions over the pool
};

AggregateScore aggregate_scores(const std::vector<SessionScore>& scores);

}  // namespace wm::core
