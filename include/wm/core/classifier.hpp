// Record-length classifiers.
//
// The paper's method distinguishes the two JSON types from all other
// client packets purely by SSL record length (Fig. 2 shows the bands).
// The primary classifier reproduces exactly that: learn, per class, the
// closed interval covering the calibration lengths, verify the bands
// are disjoint, then classify by membership. kNN and Gaussian naive
// Bayes are included as sanity baselines over the same 1-D feature.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/core/features.hpp"
#include "wm/util/stats.hpp"

namespace wm::core {

/// Common interface over the 1-D record-length feature.
class RecordClassifier {
 public:
  virtual ~RecordClassifier() = default;

  /// Fit from labelled calibration observations. Throws
  /// std::invalid_argument when calibration is unusable (e.g. a JSON
  /// class has no examples).
  virtual void fit(const std::vector<LabeledObservation>& calibration) = 0;

  /// Classify one record length.
  [[nodiscard]] virtual RecordClass classify(std::uint16_t record_length) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual bool fitted() const = 0;
};

/// The paper's method: per-class covering intervals over record length.
class IntervalClassifier final : public RecordClassifier {
 public:
  /// `guard` widens each JSON band by this many bytes on each side, to
  /// tolerate calibration sets that did not exhibit the full band. The
  /// default of 4 stays below the smallest guard gap any traffic
  /// profile leaves between the type-1 band and other client messages.
  explicit IntervalClassifier(std::int64_t guard = 4) : guard_(guard) {}

  void fit(const std::vector<LabeledObservation>& calibration) override;
  [[nodiscard]] RecordClass classify(std::uint16_t record_length) const override;
  [[nodiscard]] std::string name() const override { return "interval"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

  /// The learned bands (valid after fit).
  [[nodiscard]] const util::IntInterval& type1_band() const { return type1_; }
  [[nodiscard]] const util::IntInterval& type2_band() const { return type2_; }
  /// True when the learned JSON bands overlap each other (fit degrades
  /// to "other" for contested lengths and flags this).
  [[nodiscard]] bool bands_overlap() const { return bands_overlap_; }

 private:
  std::int64_t guard_;
  util::IntInterval type1_{};
  util::IntInterval type2_{};
  bool bands_overlap_ = false;
  bool fitted_ = false;
};

/// k-nearest-neighbours on record length (ties broken toward kOther).
class KnnClassifier final : public RecordClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k == 0 ? 1 : k) {}

  void fit(const std::vector<LabeledObservation>& calibration) override;
  [[nodiscard]] RecordClass classify(std::uint16_t record_length) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }
  [[nodiscard]] bool fitted() const override { return !points_.empty(); }

 private:
  std::size_t k_;
  // Sorted by length for O(log n + k) neighbour lookup.
  std::vector<std::pair<std::int64_t, RecordClass>> points_;
};

/// Gaussian naive Bayes with class priors over record length.
class GaussianNbClassifier final : public RecordClassifier {
 public:
  void fit(const std::vector<LabeledObservation>& calibration) override;
  [[nodiscard]] RecordClass classify(std::uint16_t record_length) const override;
  [[nodiscard]] std::string name() const override { return "gaussian-nb"; }
  [[nodiscard]] bool fitted() const override { return fitted_; }

 private:
  struct ClassStats {
    double mean = 0.0;
    double variance = 1.0;
    double log_prior = 0.0;
    bool present = false;
  };
  std::array<ClassStats, kRecordClassCount> stats_{};
  bool fitted_ = false;
};

/// Factory by name ("interval", "knn", "gaussian-nb").
std::unique_ptr<RecordClassifier> make_classifier(const std::string& name);

/// Evaluate a fitted classifier on labelled data.
util::ConfusionMatrix evaluate_classifier(
    const RecordClassifier& classifier,
    const std::vector<LabeledObservation>& labelled);

}  // namespace wm::core
