// Typed event API for live inference consumers.
//
// The engine's original sink was a bare std::function<void(const
// ViewerUpdate&)> that re-announced the entire running decode on every
// classified record, leaving the consumer to diff snapshots to learn
// what actually happened. EventSink replaces it with the four moments a
// monitoring consumer cares about, named:
//
//   QuestionOpened  — a type-1 marker anchored a new question for a
//                     viewer (choice currently the default).
//   ChoiceInferred  — a question's answer is known: an override marker
//                     flipped it to non-default, or (continuous
//                     monitor) its evidence window closed on the
//                     default. `final` distinguishes the two regimes.
//   ViewerEvicted   — the continuous monitor dropped a viewer's state
//                     (idle timeout, memory shed, shutdown flush). The
//                     batch engine never emits this: its viewers live
//                     until finish().
//   GapObserved     — unrecoverable loss on a viewer's upload stream;
//                     subsequent inferences for that viewer may carry
//                     reduced confidence.
//
// THREAD-SAFETY CONTRACT. ShardedFlowEngine invokes the sink from its
// worker threads (or the calling thread in inline mode): callbacks for
// *different* viewers may run concurrently, so implementations must be
// thread-safe; per-viewer question numbering is monotonic but delivery
// order across viewers is unspecified. wm::monitor::ContinuousMonitor
// is single-threaded and delivers every event serially from the thread
// driving it. wm::monitor::MonitorFleet sits between the two: each
// shard worker delivers its events directly (merge-free), so callbacks
// run concurrently from N threads, BUT every viewer is pinned to one
// shard — all events for one viewer arrive from one thread, serially,
// in that viewer's capture-time order. Implementations therefore need
// no per-viewer locking, only whole-sink thread safety; callers who
// additionally need global capture-time order across viewers wrap the
// sink in monitor::OrderingCollector (or FleetConfig::global_order),
// trading emission latency for a total order. In every regime
// callbacks run on the packet path — block in one and you stall ingest
// (the engine's backpressure, the monitor's replay clock, a fleet
// shard's ring). Events and any `session` pointer they carry are valid
// only for the duration of the callback; copy what you keep.
//
// Part of this contract is machine-checked (DESIGN.md §3.8): a sink
// class constructed inside the fleet is wired straight into worker
// threads, so wm_lint's `sink-contract` rule requires its definition
// to carry the author's mark `// wm-lint: sink(threadsafe)` on (or
// directly above) its class head — the signed statement that its on_*
// callbacks tolerate concurrent callers. Sinks constructed elsewhere
// need no mark; their threading regime is whatever the caller built.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "wm/core/classifier.hpp"
#include "wm/core/decoder.hpp"
#include "wm/util/time.hpp"

namespace wm::engine {

/// One live inference update for one viewer (the legacy snapshot-diff
/// shape, kept for CallbackSink compatibility).
struct ViewerUpdate {
  std::string client;             // viewer address (collector key)
  core::RecordClass record_class; // what just fired
  std::uint16_t record_length = 0;
  util::SimTime at;               // record timestamp
  core::InferredSession session;  // running decode snapshot
};

struct QuestionOpenedEvent {
  // wm-lint: allow(borrow): events are callback-scoped by contract (see
  // header comment); consumers copy what they keep.
  std::string_view client;
  /// The question as currently decoded: choice is the default until a
  /// ChoiceInferred follows for the same index.
  core::InferredQuestion question;
  std::uint16_t record_length = 0;  // the anchoring type-1 record
  /// Running decode snapshot for this viewer; may be null (continuous
  /// monitor viewers shed their history). Callback-scoped.
  const core::InferredSession* session = nullptr;
};

struct ChoiceInferredEvent {
  // wm-lint: allow(borrow): callback-scoped, same contract as
  // QuestionOpenedEvent.
  std::string_view client;
  core::InferredQuestion question;
  /// The record that settled it (0 when a timer, not a record, closed
  /// the evidence window).
  std::uint16_t record_length = 0;
  /// Emission time: the settling record's timestamp, or the evidence
  /// window deadline for timer closes.
  util::SimTime at;
  /// True when the evidence window is closed and this answer will not
  /// be revised (continuous monitor). The batch engine emits running
  /// overrides with final=false; its finish() result is authoritative.
  bool final = false;
  const core::InferredSession* session = nullptr;  // see QuestionOpenedEvent
};

struct ViewerEvictedEvent {
  enum class Reason : std::uint8_t {
    kIdle,        // no traffic for the viewer-idle timeout
    kMemoryShed,  // global byte budget exceeded; oldest-idle dropped
    kShutdown,    // monitor finish() flushing live viewers
  };
  // wm-lint: allow(borrow): callback-scoped, same contract as
  // QuestionOpenedEvent.
  std::string_view client;
  Reason reason = Reason::kIdle;
  util::SimTime at;
  /// Questions emitted for this viewer over its lifetime.
  std::size_t questions_emitted = 0;
};

struct GapObservedEvent {
  // wm-lint: allow(borrow): callback-scoped, same contract as
  // QuestionOpenedEvent.
  std::string_view client;
  core::GapSpan gap;
};

/// Implement the moments you care about; defaults ignore everything.
/// See the thread-safety contract at the top of this header.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_question_opened(const QuestionOpenedEvent&) {}
  virtual void on_choice_inferred(const ChoiceInferredEvent&) {}
  virtual void on_viewer_evicted(const ViewerEvictedEvent&) {}
  virtual void on_gap_observed(const GapObservedEvent&) {}
};

/// Legacy callback shape.
using SessionCallback = std::function<void(const ViewerUpdate&)>;

/// Compatibility adapter: wraps a SessionCallback as an EventSink,
/// synthesizing the old per-record ViewerUpdate (QuestionOpened maps to
/// a type-1 update, ChoiceInferred to a type-2). The callback inherits
/// the sink's thread-safety obligations. Updates carry a copy of the
/// running snapshot when the producer supplies one, an empty session
/// otherwise.
class CallbackSink final : public EventSink {
 public:
  explicit CallbackSink(SessionCallback callback)
      : callback_(std::move(callback)) {}

  void on_question_opened(const QuestionOpenedEvent& event) override {
    if (!callback_) return;
    ViewerUpdate update;
    update.client = std::string(event.client);
    update.record_class = core::RecordClass::kType1Json;
    update.record_length = event.record_length;
    update.at = event.question.question_time;
    if (event.session != nullptr) update.session = *event.session;
    callback_(update);
  }

  void on_choice_inferred(const ChoiceInferredEvent& event) override {
    if (!callback_) return;
    ViewerUpdate update;
    update.client = std::string(event.client);
    update.record_class = core::RecordClass::kType2Json;
    update.record_length = event.record_length;
    update.at = event.at;
    if (event.session != nullptr) update.session = *event.session;
    callback_(update);
  }

 private:
  const SessionCallback callback_;
};

}  // namespace wm::engine
