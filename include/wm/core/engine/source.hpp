// Packet sources for the streaming engine.
//
// The engine consumes packets through one interface regardless of
// where they come from: a capture file on disk (classic pcap or
// pcapng, streamed record by record — the file is never loaded whole),
// an in-memory packet vector (simulator output, tests), or a chunked
// replay source that re-plays a base capture lap after lap with fresh
// flow identities — the stand-in for an indefinitely running tap.
//
// The primary pull interface is read_batch(): one virtual call fills a
// reusable PacketBatch, so per-packet virtual dispatch disappears from
// the hot path and sources can hand packets over zero-copy (borrowed
// spans for in-memory vectors, mmap-backed views copied once into
// recycled slots for capture files).
//
// Failure handling: sources do not throw. Open-time failures surface
// as wm::Result from open_capture(); mid-stream corruption ends the
// stream (next()/read_batch() report end-of-stream) and is reported
// through error().
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/obs/registry.hpp"
#include "wm/util/result.hpp"
#include "wm/util/time.hpp"

namespace wm::engine {

/// A reusable batch of packets — the unit the batched source API and
/// the engine's shard rings move around. Three modes:
///  - owned: packets live in recycled slots. clear() keeps every
///    slot's heap buffer, so a steady-state refill writes into
///    already-sized storage and never mallocs;
///  - borrowed: the batch is a view over a contiguous run of packets
///    owned elsewhere (zero-copy hand-off from in-memory sources).
///    The underlying packets must stay alive and unmodified until the
///    batch is cleared or refilled;
///  - views: the batch carries PacketViews (append_view), each
///    borrowing frame bytes from a producer's backing store. This is
///    the read_views() hand-off; the PacketSource contract there makes
///    the backing bytes stable for the source's whole lifetime, so
///    view batches can sit in queues and feed zero-copy reassembly.
class PacketBatch {
 public:
  PacketBatch() = default;
  PacketBatch(PacketBatch&&) noexcept = default;
  PacketBatch& operator=(PacketBatch&&) noexcept = default;
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;

  /// Empty the batch. Owned slots keep their capacity for reuse.
  void clear() noexcept {
    borrowed_ = nullptr;
    borrowed_size_ = 0;
    size_ = 0;
    views_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    if (borrowed_ != nullptr) return borrowed_size_;
    if (!views_.empty()) return views_.size();
    return size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool is_borrowed() const noexcept { return borrowed_ != nullptr; }
  /// True when the batch carries PacketViews (views() is the payload
  /// and begin()/end() must not be used).
  [[nodiscard]] bool has_views() const noexcept { return !views_.empty(); }

  [[nodiscard]] const net::Packet& operator[](std::size_t index) const noexcept {
    return begin()[index];
  }
  [[nodiscard]] const net::Packet* begin() const noexcept {
    return borrowed_ != nullptr ? borrowed_ : slots_.data();
  }
  [[nodiscard]] const net::Packet* end() const noexcept {
    return begin() + size();
  }

  /// The view payload (valid entries: [views(), views() + size()) when
  /// has_views()).
  [[nodiscard]] const net::PacketView* views() const noexcept {
    return views_.data();
  }

  /// Append a borrowed frame, switching the batch to view mode (owned
  /// and borrowed contents are dropped; view storage has no per-entry
  /// heap, so steady-state refills never malloc).
  void append_view(const net::PacketView& view) {
    if (borrowed_ != nullptr || size_ != 0) {
      borrowed_ = nullptr;
      borrowed_size_ = 0;
      size_ = 0;
    }
    views_.push_back(view);
  }

  /// Expose the next recycled slot for in-place filling. Appending to
  /// a borrowed or view batch first drops that payload (the batch
  /// becomes owned).
  net::Packet& append_slot() {
    if (borrowed_ != nullptr || !views_.empty()) clear();
    if (size_ == slots_.size()) slots_.emplace_back();
    return slots_[size_++];
  }

  /// Capacity-recycled copy into the next slot.
  net::Packet& append(const net::Packet& packet) {
    net::Packet& slot = append_slot();
    slot.timestamp = packet.timestamp;
    slot.original_length = packet.original_length;
    slot.data.assign(packet.data.begin(), packet.data.end());
    return slot;
  }

  /// Materialize a reader view into the next slot (one copy).
  net::Packet& append(const net::PacketView& view) {
    net::Packet& slot = append_slot();
    view.assign_to(slot);
    return slot;
  }

  /// Adopt an already-owned packet's buffer (no byte copy).
  net::Packet& append(net::Packet&& packet) {
    net::Packet& slot = append_slot();
    slot.timestamp = packet.timestamp;
    slot.original_length = packet.original_length;
    slot.data.swap(packet.data);
    return slot;
  }

  /// Mutable access to the owned slots (nullptr while borrowed). Lets
  /// a consumer adopt slot buffers via append(Packet&&) swaps, so
  /// capacity recycles in both directions; the batch must be cleared
  /// or refilled afterwards.
  [[nodiscard]] net::Packet* mutable_slots() noexcept {
    return borrowed_ != nullptr ? nullptr : slots_.data();
  }

  /// Switch to borrowed mode over `count` packets starting at
  /// `packets`. Any owned contents are dropped (capacity retained).
  void borrow(const net::Packet* packets, std::size_t count) noexcept {
    size_ = 0;
    views_.clear();
    borrowed_ = packets;
    borrowed_size_ = count;
  }

 private:
  std::vector<net::Packet> slots_;  // owned storage; active prefix is size_
  std::size_t size_ = 0;
  const net::Packet* borrowed_ = nullptr;
  std::size_t borrowed_size_ = 0;
  // View-mode storage; non-empty means view mode is active.
  std::vector<net::PacketView> views_;
};

/// Pull-based packet stream, yielding packets in capture order until
/// the source is exhausted (or fails — see error()).
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// The next packet, or nullopt at end-of-stream. Convenience for
  /// simple consumers; batching consumers use read_batch().
  virtual std::optional<net::Packet> next() = 0;

  /// Set when the stream terminated abnormally (e.g. a corrupt capture
  /// record); nullopt after a clean end.
  [[nodiscard]] virtual const std::optional<Error>& error() const {
    return no_error_;
  }

  /// Primary pull interface: refill `out` (cleared first) with up to
  /// `max` packets. Returns the number delivered; 0 means
  /// end-of-stream. One virtual call per batch; sources override this
  /// with zero-copy or slot-recycling fast paths, and the default
  /// adapts next() for external implementations.
  [[nodiscard]] virtual std::size_t read_batch(PacketBatch& out, std::size_t max);

  /// Fully zero-copy pull: refill `out` (cleared first) with up to
  /// `max` PacketViews. Returns 0 either at end-of-stream or when the
  /// source cannot serve stable views — callers probe once and fall
  /// back to read_batch() on a first-call 0, then stick to one path.
  ///
  /// Lifetime contract (stronger than PacketView's usual "until the
  /// next read"): every view handed out here stays valid and unchanged
  /// for the *remaining lifetime of the source*. Only sources whose
  /// backing store is naturally immortal implement it — an in-memory
  /// vector, an mmap'd capture file — which is exactly what lets the
  /// engine queue view batches and reassemble TCP streams without ever
  /// copying a frame.
  [[nodiscard]] virtual std::size_t read_views(PacketBatch& out, std::size_t max) {
    (void)out;
    (void)max;
    return 0;
  }

 private:
  std::optional<Error> no_error_;
};

/// In-memory source over a packet vector, either borrowed (zero-copy
/// for the caller who keeps the vector alive) or owned.
class VectorSource final : public PacketSource {
 public:
  /// Borrow: `packets` must outlive the source.
  explicit VectorSource(const std::vector<net::Packet>* packets)
      : packets_(packets) {}
  /// Own.
  explicit VectorSource(std::vector<net::Packet> packets)
      : owned_(std::move(packets)), packets_(&owned_) {}

  /// Moves owned packets out; copies borrowed ones (the caller keeps
  /// the vector).
  std::optional<net::Packet> next() override;

  /// Zero-copy: hands out a borrowed span over the vector.
  [[nodiscard]] std::size_t read_batch(PacketBatch& out, std::size_t max) override;

  /// Stable views over the vector's packets (the vector outlives the
  /// source by the borrow constructor's contract, or is owned by it).
  [[nodiscard]] std::size_t read_views(PacketBatch& out, std::size_t max) override;

 private:
  std::vector<net::Packet> owned_;
  const std::vector<net::Packet>* packets_;
  std::size_t index_ = 0;
};

/// Streaming capture-file source (classic pcap or pcapng; the format is
/// sniffed from the file magic). Construct via open_capture().
class CaptureFileSource final : public PacketSource {
 public:
  ~CaptureFileSource() override;
  CaptureFileSource(CaptureFileSource&&) noexcept;
  CaptureFileSource& operator=(CaptureFileSource&&) noexcept;

  std::optional<net::Packet> next() override;
  /// Drains reader views into recycled slots: zero per-packet
  /// allocation in the steady state, metrics amortized per batch.
  [[nodiscard]] std::size_t read_batch(PacketBatch& out, std::size_t max) override;
  /// mmap fast path only: views point straight into the mapped file,
  /// which stays mapped for the source's lifetime. The buffered istream
  /// path recycles its staging buffer per record, so it reports 0 here
  /// and callers fall back to read_batch().
  [[nodiscard]] std::size_t read_views(PacketBatch& out, std::size_t max) override;
  [[nodiscard]] const std::optional<Error>& error() const override {
    return error_;
  }
  /// True when the underlying reader runs on the mmap fast path.
  [[nodiscard]] bool memory_mapped() const;

 private:
  friend Result<std::unique_ptr<PacketSource>> open_capture(
      const std::filesystem::path& path, const struct CaptureOptions& options);
  struct Impl;
  explicit CaptureFileSource(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
  std::optional<Error> error_;
};

/// Knobs for open_capture().
struct CaptureOptions {
  /// When set, the source reports "source.packets", "source.bytes",
  /// "source.format.{pcap,pcapng}" and "source.errors" as it streams,
  /// plus "source.mmap" when the fast path engaged.
  obs::Registry* metrics = nullptr;
  /// Allow the memory-mapped fast path (default). Off forces the
  /// buffered istream path — the differential tests' oracle and the
  /// bench baseline. Both paths yield byte-identical packets.
  bool allow_mmap = true;
};

/// Open a capture file as a streaming source. Errors are typed:
/// kNotFound (unopenable path), kUnsupportedFormat (unknown magic),
/// kMalformedCapture (recognized format, corrupt header).
[[nodiscard]] Result<std::unique_ptr<PacketSource>> open_capture(
    const std::filesystem::path& path, const CaptureOptions& options);
[[nodiscard]] Result<std::unique_ptr<PacketSource>> open_capture(
    const std::filesystem::path& path, obs::Registry* metrics = nullptr);

/// Replays a base capture for `laps` laps, shifting timestamps each lap
/// so the result is one continuous stream, and (by default) rewriting
/// IP addresses per lap so every lap carries fresh flows from a fresh
/// viewer. This turns a single captured session into an arbitrarily
/// long monitoring workload — the tool for soak-testing flow eviction
/// and multi-shard throughput.
class ChunkedReplaySource final : public PacketSource {
 public:
  struct Config {
    std::size_t laps = 1;
    /// Quiet gap appended after each lap before the next begins.
    util::Duration lap_gap = util::Duration::millis(50);
    /// Give each lap distinct IPv4 addresses (both endpoints; IPv4
    /// header checksum is recomputed). Off = replay identical bytes.
    bool rewrite_addresses = true;
  };

  ChunkedReplaySource(std::vector<net::Packet> base, Config config);

  std::optional<net::Packet> next() override;

  /// Lap 0 is handed out as a borrowed span (zero-copy); later laps
  /// shift/rewrite into recycled slots, leaving the base pristine.
  [[nodiscard]] std::size_t read_batch(PacketBatch& out, std::size_t max) override;

  [[nodiscard]] std::size_t laps_completed() const { return lap_; }

 private:
  std::vector<net::Packet> base_;
  Config config_;
  util::Duration lap_span_{};
  std::size_t lap_ = 0;
  std::size_t index_ = 0;
};

}  // namespace wm::engine
