// Packet sources for the streaming engine.
//
// The engine consumes packets through one interface regardless of
// where they come from: a capture file on disk (classic pcap or
// pcapng, streamed record by record — the file is never loaded whole),
// an in-memory packet vector (simulator output, tests), or a chunked
// replay source that re-plays a base capture lap after lap with fresh
// flow identities — the stand-in for an indefinitely running tap.
//
// Failure handling: sources do not throw. Open-time failures surface
// as wm::Result from open_capture(); mid-stream corruption ends the
// stream (next() returns nullopt) and is reported through error().
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/obs/registry.hpp"
#include "wm/util/result.hpp"
#include "wm/util/time.hpp"

namespace wm::engine {

/// Pull-based packet stream. next() yields packets in capture order
/// until the source is exhausted (or fails — see error()).
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// The next packet, or nullopt at end-of-stream.
  virtual std::optional<net::Packet> next() = 0;

  /// Set when the stream terminated abnormally (e.g. a corrupt capture
  /// record); nullopt after a clean end.
  [[nodiscard]] virtual const std::optional<Error>& error() const {
    return no_error_;
  }

  /// Pull up to `max` packets into `out` (appended). Returns the number
  /// pulled; 0 means end-of-stream. Lets batching consumers avoid a
  /// virtual call per packet.
  virtual std::size_t read_batch(std::size_t max, std::vector<net::Packet>& out);

 private:
  std::optional<Error> no_error_;
};

/// In-memory source over a packet vector, either borrowed (zero-copy
/// for the caller who keeps the vector alive) or owned.
class VectorSource final : public PacketSource {
 public:
  /// Borrow: `packets` must outlive the source.
  explicit VectorSource(const std::vector<net::Packet>* packets)
      : packets_(packets) {}
  /// Own.
  explicit VectorSource(std::vector<net::Packet> packets)
      : owned_(std::move(packets)), packets_(&owned_) {}

  std::optional<net::Packet> next() override;

 private:
  std::vector<net::Packet> owned_;
  const std::vector<net::Packet>* packets_;
  std::size_t index_ = 0;
};

/// Streaming capture-file source (classic pcap or pcapng; the format is
/// sniffed from the file magic). Construct via open_capture().
class CaptureFileSource final : public PacketSource {
 public:
  ~CaptureFileSource() override;
  CaptureFileSource(CaptureFileSource&&) noexcept;
  CaptureFileSource& operator=(CaptureFileSource&&) noexcept;

  std::optional<net::Packet> next() override;
  [[nodiscard]] const std::optional<Error>& error() const override {
    return error_;
  }

 private:
  friend Result<std::unique_ptr<PacketSource>> open_capture(
      const std::filesystem::path& path, obs::Registry* metrics);
  struct Impl;
  explicit CaptureFileSource(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
  std::optional<Error> error_;
};

/// Open a capture file as a streaming source. Errors are typed:
/// kNotFound (unopenable path), kUnsupportedFormat (unknown magic),
/// kMalformedCapture (recognized format, corrupt header). With a
/// registry, the source reports "source.packets", "source.bytes",
/// "source.format.{pcap,pcapng}" and "source.errors" as it streams.
Result<std::unique_ptr<PacketSource>> open_capture(
    const std::filesystem::path& path, obs::Registry* metrics = nullptr);

/// Replays a base capture for `laps` laps, shifting timestamps each lap
/// so the result is one continuous stream, and (by default) rewriting
/// IP addresses per lap so every lap carries fresh flows from a fresh
/// viewer. This turns a single captured session into an arbitrarily
/// long monitoring workload — the tool for soak-testing flow eviction
/// and multi-shard throughput.
class ChunkedReplaySource final : public PacketSource {
 public:
  struct Config {
    std::size_t laps = 1;
    /// Quiet gap appended after each lap before the next begins.
    util::Duration lap_gap = util::Duration::millis(50);
    /// Give each lap distinct IPv4 addresses (both endpoints; IPv4
    /// header checksum is recomputed). Off = replay identical bytes.
    bool rewrite_addresses = true;
  };

  ChunkedReplaySource(std::vector<net::Packet> base, Config config);

  std::optional<net::Packet> next() override;

  [[nodiscard]] std::size_t laps_completed() const { return lap_; }

 private:
  std::vector<net::Packet> base_;
  Config config_;
  util::Duration lap_span_{};
  std::size_t lap_ = 0;
  std::size_t index_ = 0;
};

}  // namespace wm::engine
