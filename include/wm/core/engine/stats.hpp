// Aggregate counters reported by the streaming engine.
#pragma once

#include <cstdint>
#include <string>

namespace wm::engine {

/// Totals across all shards for one engine run, merged at finish().
struct EngineStats {
  std::size_t shards = 0;              // worker threads (0 = ran inline)
  std::uint64_t packets_in = 0;        // packets offered to the engine
  std::uint64_t bytes_in = 0;          // capture bytes offered (frame sizes)
  std::uint64_t packets_undecodable = 0;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t records = 0;           // TLS records parsed (all types)
  std::uint64_t client_records = 0;    // client->server application data
  std::uint64_t type1_records = 0;     // classified question markers
  std::uint64_t type2_records = 0;     // classified override markers
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_evicted = 0;
  std::uint64_t flows_completed = 0;  // retired cleanly (RST / flush)
  /// Loss tolerance: reassembly gaps declared, stream bytes they
  /// covered, TLS resync scans that re-locked, and the bytes those
  /// scans discarded while hunting for a record boundary.
  std::uint64_t gaps = 0;
  std::uint64_t gap_bytes = 0;
  std::uint64_t tls_resyncs = 0;
  std::uint64_t tls_skipped_bytes = 0;
  /// Sum over shards of each shard's peak concurrently-tracked flows:
  /// an upper bound on peak engine-wide flow state.
  std::uint64_t peak_active_flows = 0;
  std::uint64_t viewers_seen = 0;      // distinct client addresses
  /// Times the dispatcher blocked because a shard queue was full
  /// (backpressure events, not packets lost — nothing is dropped).
  std::uint64_t backpressure_waits = 0;
  /// The source reported a stream error (truncated/corrupt capture
  /// tail). infer() never throws for these: whatever decoded before
  /// the error stands, and this count says the stream ended abnormally.
  std::uint64_t source_errors = 0;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace wm::engine
