// wm::engine — multi-threaded streaming analysis engine.
//
// The batch AttackPipeline buffers a whole capture, then analyzes it.
// A monitoring middlebox cannot: packets arrive forever, from many
// viewers at once. The engine ingests packets incrementally and shards
// flows across N worker threads by flow-key hash. Each worker owns its
// own flow table, TCP reassemblers, and TLS record-stream extractor,
// so the per-packet hot path touches no shared state and takes no
// locks; workers only converge on a small mutex-protected collector
// when a *record* (orders of magnitude rarer than a packet) completes.
// That collector's locking discipline is not prose: its state carries
// WM_GUARDED_BY capability annotations (wm/util/thread_annotations.hpp,
// DESIGN.md §3.8), checked under -DWM_THREAD_SAFETY=ON.
//
//     PacketSource --read_batch--> dispatcher --(flow-hash)--> shards
//       each shard: a pair of lock-free SPSC rings (inbound batches in,
//         drained batches recycled back) -> reassemble -> TLS records
//         -> classify -> collector (per-viewer log, sink callbacks)
//     finish(): drain, join, per-viewer + combined choice decode
//
// The dispatcher→shard handoff is a bounded SPSC ring of PacketBatch
// pointers into a per-shard arena; drained batches flow back through a
// freelist ring with their slot capacity intact, so the steady-state
// ingest path performs no heap allocation and takes no locks (a
// condvar pair wakes parked threads only at the full/empty edges).
// Both sides use the batched ring ops: the worker drains up to eight
// queued batches per wake (pop + try_pop_n) and returns them with one
// push_n, so index publishes and wake fences amortize across the run.
//
// Determinism: the final EngineResult is byte-identical to the batch
// pipeline's output on the same packets for ANY shard count, because
// choice decoding runs on the collector's time-ordered observation log,
// not on racy arrival order. Live sink updates are best-effort
// snapshots (arrival order); the final result is exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wm/core/classifier.hpp"
#include "wm/core/decoder.hpp"
#include "wm/core/engine/events.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/engine/stats.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/obs/registry.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/time.hpp"

namespace wm::engine {

struct EngineConfig {
  /// Worker threads. 0 = run inline on the calling thread (no threads,
  /// no queues) — the mode the batch-compatibility wrappers use.
  std::size_t shards = 0;
  /// Packets per dispatch batch: amortizes the ring handoff and the
  /// per-batch virtual source read.
  std::size_t dispatch_batch = 256;
  /// Maximum batches buffered per shard before feed() blocks
  /// (backpressure; the engine never drops packets). Rounded up to a
  /// power of two by the underlying ring. Deliberately shallow: the
  /// in-flight window (queue_capacity x dispatch_batch x packet size,
  /// ~6 MB at the defaults) must stay cache-resident or the worker
  /// re-fetches every handed-off byte from DRAM — deepening the queue
  /// past that measurably *lowers* throughput before it absorbs any
  /// extra burst.
  std::size_t queue_capacity = 16;
  /// Evict per-flow analysis state idle longer than this. Zero = never
  /// (batch semantics). Classified observations survive eviction; only
  /// reassembly/parser state is freed.
  util::Duration flow_idle_timeout{};
  /// Duplicate-suppression window for question detection (same meaning
  /// as core::decode_choices).
  util::Duration min_question_gap = util::Duration::millis(120);
  /// Per-flow TCP reassembly tuning (reorder window before a hole is
  /// declared dead, buffer budget) applied by every shard's extractor.
  net::TcpStreamReassembler::Config reassembly;
  /// Decode packets slab-wise (column passes over whole batches) on the
  /// hot path. Off = the per-packet scalar parser chain, kept as the
  /// differential oracle; results are byte-identical either way.
  bool slab_decode = true;
  /// Observability (wm::obs): when set, every stage registers live
  /// counters/timers here — per-shard scopes ("engine.shard[2].flows.
  /// opened"), shard-count-invariant rollups ("engine.flows.opened"),
  /// collector totals and stage timings. Null = zero overhead. The
  /// registry must outlive the engine; snapshots may be taken from any
  /// thread (including an EventSink callback) while the engine runs.
  obs::Registry* metrics = nullptr;
};

/// Final output of an engine run.
struct EngineResult {
  /// All observations decoded as one stream — equals the batch
  /// pipeline's whole-capture infer() on the same packets.
  core::InferredSession combined;
  /// Per-viewer decode, keyed by client address — equals the batch
  /// pipeline's per-client inference (before its "has questions"
  /// filter, which is the caller's policy).
  std::map<std::string, core::InferredSession> per_client;
  EngineStats stats;
};

class ShardedFlowEngine {
 public:
  /// The classifier must already be fitted and must outlive the engine;
  /// classify() is called concurrently from worker threads. `sink` may
  /// be null (no live events); when set it must outlive the engine and
  /// honour the EventSink thread-safety contract (events.hpp) —
  /// callbacks arrive from worker threads.
  explicit ShardedFlowEngine(const core::RecordClassifier& classifier,
                             EngineConfig config = {},
                             EventSink* sink = nullptr);
  ~ShardedFlowEngine();

  ShardedFlowEngine(const ShardedFlowEngine&) = delete;
  ShardedFlowEngine& operator=(const ShardedFlowEngine&) = delete;

  /// Offer one packet. May block on shard-queue backpressure.
  void feed(net::Packet packet);

  /// Offer a batch. Owned/borrowed packets are copied into recycled
  /// shard slots; a view batch (PacketBatch::has_views()) is demuxed as
  /// views — no frame bytes move — and must honour the read_views()
  /// lifetime contract (backing bytes stable until after finish()).
  /// May block on backpressure.
  void ingest(const PacketBatch& batch);

  /// Offer an owned batch for consumption: packet buffers are swapped
  /// into the shard slots instead of copied (borrowed batches fall
  /// back to the copying overload). The batch is left cleared with its
  /// slot capacity intact, ready for the next read_batch() refill.
  void ingest(PacketBatch&& batch);

  /// Pull `source` to exhaustion. Probes the zero-copy read_views()
  /// path once; if the source serves stable views (mmap capture,
  /// in-memory vector) every frame flows through untouched — dispatch
  /// hashes the mapped bytes, workers reassemble borrowed spans — and
  /// the source must stay alive until finish() returns. Otherwise
  /// falls back to the read_batch() slot-recycling path. Returns
  /// packets fed.
  std::size_t consume(PacketSource& source);

  /// Flush queues, join workers, and produce the final result. The
  /// engine cannot be fed afterwards.
  EngineResult finish();

  /// Packets offered so far (safe to read concurrently with feed()).
  [[nodiscard]] std::uint64_t packets_in() const;

 private:
  struct Shard;
  class Collector;

  std::size_t shard_for(const net::Packet& packet) const;
  std::size_t shard_for(util::BytesView frame) const;
  void process(Shard& shard, const net::Packet& packet);
  /// Analyze `count` contiguous packets on `shard`: the slab decoder
  /// when EngineConfig::slab_decode is on, per-packet process() when
  /// it's off.
  void process_batch(Shard& shard, const net::Packet* packets,
                     std::size_t count);
  /// View form: slab-decodes straight out of the source's backing
  /// store and reassembles borrowed payload spans (stable_payload).
  /// The scalar oracle materializes each view into a recycled scratch
  /// packet — byte-identical results either way.
  void process_batch(Shard& shard, const net::PacketView* views,
                     std::size_t count);
  /// Mode dispatch for a queued batch (owned/borrowed vs views).
  void process_batch(Shard& shard, const PacketBatch& batch);
  /// Demux a view batch across shards without touching frame bytes.
  void ingest_views(const PacketBatch& batch);
  /// The shard's fill batch, flushed first if its mode (owned vs
  /// views) differs from what the caller is about to append — a batch
  /// never mixes modes, so neither payload can silently drop the other.
  PacketBatch& pending_for(std::size_t shard_index, bool views);
  /// Route one extractor delivery: records feed the collector's
  /// observation log, client-side gaps feed its gap timeline.
  void handle_event(Shard& shard, const tls::StreamEvent& stream_event);
  void dispatch(std::size_t shard_index);
  void flush_pending();
  void shutdown_workers();

  const core::RecordClassifier& classifier_;
  EngineConfig config_;
  std::unique_ptr<Collector> collector_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Per-shard batch being filled by the feeding thread; points into
  /// the owning shard's arena (acquired from its freelist ring).
  std::vector<PacketBatch*> pending_;
  std::atomic<std::uint64_t> packets_in_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::uint64_t batches_dispatched_ = 0;
  std::uint64_t backpressure_waits_ = 0;
  bool finished_ = false;
  // Observability handles (null when EngineConfig::metrics is null).
  obs::Counter* packets_in_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* backpressure_counter_ = nullptr;
};

/// One-call convenience: run `source` through an engine.
EngineResult analyze(const core::RecordClassifier& classifier,
                     PacketSource& source, EngineConfig config = {},
                     EventSink* sink = nullptr);

}  // namespace wm::engine
