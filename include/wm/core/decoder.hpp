// Choice decoding: from classified record events to the viewer's
// choice sequence (and, with the script graph, their path).
//
// §III: "the number and type of JSON files sent indicate the choice
// made by the viewer" — each type-1 JSON marks a question appearing;
// a type-2 JSON before the next type-1 means the viewer overrode the
// default at that question.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/core/classifier.hpp"
#include "wm/core/features.hpp"
#include "wm/story/graph.hpp"

namespace wm::core {

/// One decoded question event.
struct InferredQuestion {
  std::size_t index = 0;  // 1-based appearance order
  util::SimTime question_time;
  story::Choice choice = story::Choice::kDefault;
  std::optional<util::SimTime> override_time;  // set for non-default
  /// 1.0 = every supporting record parsed from contiguous stream bytes.
  /// Lowered (never raised) when loss touched the evidence — see
  /// DecodeOptions for the taint rules.
  double confidence = 1.0;
  /// Semicolon-joined tags explaining each confidence reduction
  /// ("type1_after_gap", "type2_presumed_lost_type1", "gap_in_window").
  std::string evidence;
};

/// Full inference result for one session.
struct InferredSession {
  std::vector<InferredQuestion> questions;
  /// Classified observations, for diagnostics.
  std::size_t type1_records = 0;
  std::size_t type2_records = 0;
  std::size_t other_records = 0;

  [[nodiscard]] std::vector<story::Choice> choices() const;
};

/// A span of stream bytes the reassembler declared unrecoverable, as
/// seen by the decoder. Feeding the gap timeline in lets the decoder
/// flag inferences that straddle a hole as low-confidence instead of
/// silently reporting them at full strength.
struct GapSpan {
  util::SimTime at;            // when the gap was declared
  std::uint64_t bytes = 0;     // stream bytes it covered
};

/// Knobs for gap-aware decoding. Defaults reproduce the historical
/// behaviour exactly when `gaps` is empty and no observation carries
/// `after_gap`.
struct DecodeOptions {
  /// Duplicate-suppression window for adjacent type-1 classifications
  /// (retransmission artifacts / band misfires).
  util::Duration min_question_gap = util::Duration::millis(120);
  /// Stream gaps affecting this viewer's traffic, in any order (the
  /// decoder sorts a copy).
  std::vector<GapSpan> gaps;
  /// A gap this close before a question — or anywhere before the next
  /// question — may have swallowed one of its markers.
  util::Duration gap_window = util::Duration::seconds(1);
  /// Confidence when the anchoring record itself parsed right after a
  /// gap/resync, and for questions synthesized from an orphaned type-2.
  double after_gap_confidence = 0.5;
  /// Confidence cap when a gap merely falls inside a question's window.
  double gap_window_confidence = 0.6;
};

/// Decode a classified observation sequence with gap awareness:
///  * a type-1 marked after_gap opens its question at reduced
///    confidence;
///  * a type-2 with a gap between it and the last question anchor
///    synthesizes a new low-confidence non-default question (the type-1
///    that should anchor it was presumably lost) instead of crediting
///    the override to the previous question at full confidence;
///  * a gap near a question's decision window caps its confidence.
InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    const DecodeOptions& options);

/// Historical entry point: decode with default options. `min_question_gap`
/// guards against double-counting when a type-1 upload is retransmitted
/// or a band misfire produces two adjacent type-1 classifications.
InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    util::Duration min_question_gap = util::Duration::millis(120));

/// Map a decoded choice sequence onto the script graph, recovering the
/// segments the viewer watched (the paper's behavioural payload).
struct InferredPath {
  std::vector<story::SegmentId> segments;
  std::vector<std::string> segment_names;
  bool reached_ending = false;
  /// Graph traversal consumed fewer choices than inferred (signals
  /// over-detection) or more (under-detection).
  std::int64_t choice_surplus = 0;
};

InferredPath reconstruct_path(const story::StoryGraph& graph,
                              const std::vector<story::Choice>& choices);

}  // namespace wm::core
