// Choice decoding: from classified record events to the viewer's
// choice sequence (and, with the script graph, their path).
//
// §III: "the number and type of JSON files sent indicate the choice
// made by the viewer" — each type-1 JSON marks a question appearing;
// a type-2 JSON before the next type-1 means the viewer overrode the
// default at that question.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "wm/core/classifier.hpp"
#include "wm/core/features.hpp"
#include "wm/story/graph.hpp"

namespace wm::core {

/// One decoded question event.
struct InferredQuestion {
  std::size_t index = 0;  // 1-based appearance order
  util::SimTime question_time;
  story::Choice choice = story::Choice::kDefault;
  std::optional<util::SimTime> override_time;  // set for non-default
};

/// Full inference result for one session.
struct InferredSession {
  std::vector<InferredQuestion> questions;
  /// Classified observations, for diagnostics.
  std::size_t type1_records = 0;
  std::size_t type2_records = 0;
  std::size_t other_records = 0;

  [[nodiscard]] std::vector<story::Choice> choices() const;
};

/// Decode a classified observation sequence. `min_question_gap` guards
/// against double-counting when a type-1 upload is retransmitted or a
/// band misfire produces two adjacent type-1 classifications.
InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    util::Duration min_question_gap = util::Duration::millis(120));

/// Map a decoded choice sequence onto the script graph, recovering the
/// segments the viewer watched (the paper's behavioural payload).
struct InferredPath {
  std::vector<story::SegmentId> segments;
  std::vector<std::string> segment_names;
  bool reached_ending = false;
  /// Graph traversal consumed fewer choices than inferred (signals
  /// over-detection) or more (under-detection).
  std::int64_t choice_surplus = 0;
};

InferredPath reconstruct_path(const story::StoryGraph& graph,
                              const std::vector<story::Choice>& choices);

}  // namespace wm::core
