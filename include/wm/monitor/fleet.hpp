// wm::monitor::MonitorFleet — the continuous monitor, scaled past one
// core the way the engine scaled flow decoding: partition the traffic,
// give every partition a private single-threaded monitor, and keep the
// event path merge-free.
//
// Topology: M packet sources fan into N shards over M×N batched SPSC
// rings (one ring per (source, shard) pair, so every ring keeps exactly
// one producer and one consumer and the engine's lock-free handoff
// applies unchanged). Each source is driven by a pump — a thread
// spawned by attach(), or the caller's thread via consume() — that
// routes every packet by net::viewer_shard_hash, so all traffic from
// one subscriber address lands on one shard. Each shard worker owns a
// full private ContinuousMonitor (its own TimerWheel, flow/viewer
// state, LRU arena): no locks on the inference path, no shared state
// between shards.
//
// ORDERING. A shard's wheel is shared by its viewers, so the worker
// must feed it in (approximately) capture-time order even when packets
// arrive over M independent rings. The worker runs a K-way timestamp
// merge with per-ring low-bound watermarks: a packet is fed once no
// open ring could still deliver an earlier one. Sources are assumed
// time-ordered individually (captures and taps are); a ring that stays
// silent longer than `merge_wait` is set aside (counted in
// FleetStats::merge_deferrals) rather than stalling the shard, and
// re-joins the merge as soon as it produces again. The guarantee that
// survives regardless of deferrals: per-viewer events are emitted
// serially, in that viewer's capture-time order (a viewer's packets
// all traverse one (source, shard) pair of queues... one source at a
// time — see the differential test). Cross-viewer order across shards
// is unspecified unless you opt into OrderingCollector.
//
// MEMORY. FleetConfig::monitor.max_total_bytes is the *fleet-wide*
// budget: it is split evenly across shards and each shard sheds its
// own oldest-idle viewers locally — shedding never synchronizes.
//
// SHUTDOWN CONTRACT. Every attached source must reach end-of-stream
// (e.g. InjectableTap::close()) before finish() or destruction; both
// join the pump threads, and a pump blocked inside a source that never
// ends cannot be interrupted from here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wm/core/classifier.hpp"
#include "wm/core/engine/events.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/util/time.hpp"

namespace wm::monitor {

struct FleetConfig {
  /// Worker threads, each owning one ContinuousMonitor shard.
  std::size_t shards = 1;
  /// Concurrent packet sources the fleet accepts (attach() + consume()
  /// calls combined must not exceed this).
  std::size_t sources = 1;
  /// Per-(source, shard) ring capacity in packets (rounded up to a
  /// power of two). Full rings park the pump — backpressure, not loss.
  std::size_t ring_capacity = 4096;
  /// Batch size for source reads, ring pushes and ring drains.
  std::size_t batch = 256;
  /// How long a shard worker holds a timestamp-merge barrier open for
  /// a silent source before setting it aside (see header comment).
  /// Zero disables the merge entirely: packets are fed in ring-arrival
  /// order, which is fine for single-source fleets and throughput
  /// benches but weakens multi-source timer ordering.
  util::Duration merge_wait = util::Duration::millis(20);
  /// Deliver events to the sink in global capture-time order by
  /// routing them through an internal OrderingCollector. Costs
  /// buffering latency (events wait for every shard's watermark) and
  /// one lock per delivery; off = merge-free per-shard delivery.
  bool global_order = false;
  /// Per-shard monitor tuning. `max_total_bytes` is interpreted as the
  /// FLEET-WIDE budget and split evenly across shards;
  /// `metrics_scope`/`metrics_rollup` are overwritten per shard
  /// ("monitor.shard[i]" rolling up to "monitor.*").
  MonitorConfig monitor;
};

/// Fleet-lifetime totals. `totals` sums the per-shard MonitorStats
/// field-wise — for peak fields (viewers, memory bytes) the sum of
/// per-shard peaks is an upper bound on the true simultaneous peak,
/// not an observed instant.
struct FleetStats {
  MonitorStats totals;
  std::vector<MonitorStats> shards;
  std::uint64_t packets = 0;
  /// Frames viewer_shard_hash could not parse (no TCP/UDP transport);
  /// routed to shard 0 rather than dropped.
  std::uint64_t packets_unroutable = 0;
  /// Times a shard gave up waiting on a silent source (see
  /// FleetConfig::merge_wait).
  std::uint64_t merge_deferrals = 0;
  /// Times a pump found a shard ring full and had to park.
  std::uint64_t backpressure_waits = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Re-sequences events from N fleet shards into global capture-time
/// order before forwarding to one downstream sink. Each shard delivers
/// into its private shard_sink(i) (no cross-shard contention on the
/// hot path beyond one mutex at delivery); events are buffered until
/// every shard's watermark has passed them, then released to
/// `downstream` serially, ordered by (event time, shard, sequence).
/// MonitorFleet drives the watermarks; standalone users must call
/// watermark() themselves and flush() at the end.
///
/// One class of events is exempt from the total order: kShutdown
/// evictions. The monitor's finish() stamps them with the viewer's
/// last activity — a backdated diagnostic, not an emission instant —
/// so they arrive in the end-of-stream flush() after events with later
/// timestamps have already been released. They are delivered last,
/// ordered among themselves; every other event kind (questions,
/// choices, gaps, idle/shed evictions) is globally time-sorted.
class OrderingCollector final {
 public:
  /// `downstream` must outlive the collector and is only ever called
  /// from inside watermark()/flush() — serially, under the collector's
  /// lock. `slack` widens the release barrier to cover timer fires
  /// whose deadlines trail a shard's feed frontier (one wheel tick for
  /// the default monitor geometry).
  OrderingCollector(std::size_t shards, engine::EventSink& downstream,
                    util::Duration slack = util::Duration::millis(10));
  ~OrderingCollector();

  OrderingCollector(const OrderingCollector&) = delete;
  OrderingCollector& operator=(const OrderingCollector&) = delete;

  /// The sink shard `shard` delivers into. Valid for the collector's
  /// lifetime; each returned sink is single-producer (one shard).
  [[nodiscard]] engine::EventSink& shard_sink(std::size_t shard);

  /// Shard `shard` promises every future event it delivers has time
  /// >= `frontier_nanos`. Monotonic per shard; releases every buffered
  /// event older than min-over-shards minus slack.
  void watermark(std::size_t shard, std::int64_t frontier_nanos);

  /// Release everything still buffered (end of stream).
  void flush();

  /// Events currently buffered (diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// N-shard, M-source continuous monitor. See the header comment for
/// topology, ordering and shutdown contracts.
class MonitorFleet {
 public:
  /// `classifier` must be fitted and outlive the fleet. `sink` may be
  /// null; when set it must outlive the fleet and satisfy the
  /// MonitorFleet clause of the EventSink thread-safety contract.
  MonitorFleet(const core::RecordClassifier& classifier,
               FleetConfig config = {}, engine::EventSink* sink = nullptr);
  /// Joins pumps and workers. Prefer finish(); destruction without it
  /// still drains the rings but skips the shutdown flush (no final
  /// window settles, no kShutdown evictions), and still requires every
  /// attached source to end (shutdown contract).
  ~MonitorFleet();

  MonitorFleet(const MonitorFleet&) = delete;
  MonitorFleet& operator=(const MonitorFleet&) = delete;

  /// Spawn a pump thread that drains `source` to exhaustion, routing
  /// into the shard rings. `source` must outlive the fleet. Throws
  /// std::logic_error past FleetConfig::sources slots or after
  /// finish().
  void attach(engine::PacketSource& source);

  /// Pump `source` to exhaustion on the calling thread (same routing,
  /// same source-slot accounting as attach()). Returns packets routed.
  std::size_t consume(engine::PacketSource& source);

  /// True once every attached/consumed source has hit end-of-stream.
  /// Workers may still be draining rings; finish() is the barrier.
  [[nodiscard]] bool drained() const;

  /// End of monitoring: join the pumps (blocks until every source
  /// ends), drain and close the rings, advance every shard to the
  /// fleet-wide last capture instant (so idle evictions fire exactly
  /// as a single monitor's would), finish the shards serially, flush
  /// the ordering collector if any, and aggregate. Idempotent.
  FleetStats finish();

  [[nodiscard]] std::size_t shard_count() const;
  /// Live viewers summed over shards (approximate while running).
  [[nodiscard]] std::size_t active_viewers() const;
  /// Viewer-state bytes summed over shards (approximate while
  /// running) — the quantity the fleet-wide budget bounds.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wm::monitor
