// wm::monitor — always-on continuous inference over live traffic.
//
// The batch pipeline and even the sharded engine are replay-oriented:
// both collect every observation and only decode answers when the
// capture ends. A monitoring vantage point (the paper's §VI passive
// eavesdropper; the clinic-visit and platform-characterization settings
// in related work) never reaches end-of-capture — packets arrive
// forever, from an unbounded set of viewers — so the system must
//
//   * emit each InferredQuestion the moment its evidence window
//     closes, not at a barrier that never comes;
//   * bound memory: per-viewer state is O(1) (the running decode, not
//     the observation log), idle viewers and flows are evicted by
//     timers, and hard byte budgets shed load instead of growing;
//   * run on simulated capture time end to end, so a recorded corpus
//     replayed at any speed reproduces every decision exactly.
//
// ContinuousMonitor is the single-threaded composition of those parts:
// one TLS record-stream extractor, one hierarchical timer wheel
// (flow-idle sweeps, viewer-idle eviction, per-question evidence
// windows), and an incremental per-viewer decoder that mirrors
// core::decode_choices observation for observation. Events leave
// through the typed engine::EventSink the moment they are known, on
// the calling thread, serially.
//
// ONLINE VS BATCH. For the same per-viewer observation sequence the
// emitted choice sequence equals core::decode_choices' output whenever
// (a) every override reaches the monitor within `evidence_window` of
// its question (the window closing is what makes an answer final), and
// (b) the viewer was not shed by a memory ceiling. Confidence values
// match except for gaps that arrive only after a question's window
// already closed — the batch post-pass sees those, an online emitter
// cannot. Shard the engine for throughput; run the monitor for
// latency-bounded answers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "wm/core/classifier.hpp"
#include "wm/core/decoder.hpp"
#include "wm/core/engine/events.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/obs/registry.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/time.hpp"
#include "wm/util/timer_wheel.hpp"

namespace wm::monitor {

struct MonitorConfig {
  /// Duplicate-suppression window for adjacent type-1 classifications
  /// (same meaning as core::DecodeOptions).
  util::Duration min_question_gap = util::Duration::millis(120);
  /// A question's answer becomes final this long after its anchor if
  /// no override (or next question) settles it sooner. Must cover the
  /// viewer's slowest override for online == batch answers.
  util::Duration evidence_window = util::Duration::seconds(10);
  /// Evict a viewer (decode state, timers) after this much quiet.
  /// Zero = never (finish() flushes everyone).
  util::Duration viewer_idle_timeout = util::Duration::seconds(120);
  /// Evict per-flow reassembly/parser state idle longer than this,
  /// swept from the timer wheel. Zero = never.
  util::Duration flow_idle_timeout = util::Duration::seconds(60);
  /// Gap-aware decode taints (same meaning as core::DecodeOptions).
  util::Duration gap_window = util::Duration::seconds(1);
  double after_gap_confidence = 0.5;
  double gap_window_confidence = 0.6;
  /// Per-flow TCP reassembly tuning for the extractor.
  net::TcpStreamReassembler::Config reassembly;
  /// Timer wheel geometry (default: 10ms ticks, 256 slots, 4 levels).
  util::TimerWheel::Config wheel;

  // --- Memory ceilings ------------------------------------------------
  /// Gap-history budget per viewer: oldest gap spans fall off first.
  std::size_t max_viewer_gaps = 16;
  /// Global budget for viewer decode state (approximate bytes; the
  /// extractor's flow state is bounded separately by flow_idle_timeout
  /// and the reassembly buffer budget). Crossing it sheds the
  /// oldest-idle viewers until back under. Zero = unlimited.
  std::size_t max_total_bytes = 0;

  /// Observability: "<metrics_scope>.*" counters and the emit-latency
  /// histogram register here. Null = zero overhead.
  obs::Registry* metrics = nullptr;
  /// Prefix for every metric this monitor registers. A standalone
  /// monitor keeps the flat "monitor" scope; MonitorFleet gives each
  /// shard "monitor.shard[i]".
  std::string metrics_scope = "monitor";
  /// Stability class for the scoped counters (kSharded under a fleet,
  /// where per-shard values depend on the shard count).
  obs::Stability metrics_stability = obs::Stability::kStable;
  /// When non-empty, every scoped counter also feeds a rollup under
  /// this prefix (e.g. "monitor") so fleet totals keep the flat names.
  /// Empty = no rollups (the standalone default).
  std::string metrics_rollup;
};

/// Lifetime totals, readable at any point (stats()) or from finish().
struct MonitorStats {
  std::uint64_t packets = 0;
  std::uint64_t client_records = 0;
  std::uint64_t viewers_opened = 0;
  std::uint64_t viewers_evicted_idle = 0;
  std::uint64_t viewers_shed = 0;      // memory-ceiling evictions
  std::uint64_t questions_opened = 0;
  std::uint64_t choices_inferred = 0;  // final answers emitted
  std::uint64_t overrides = 0;         // non-default among them
  std::uint64_t questions_synthesized = 0;  // orphan type-2 after loss
  std::uint64_t gaps_observed = 0;
  std::uint64_t flows_swept = 0;       // wheel-driven extractor sweeps
  std::uint64_t timer_fires = 0;
  /// Times the global byte budget was found exceeded before shedding
  /// brought it back under. Zero across a soak = bounded memory proven.
  std::uint64_t ceiling_violations = 0;
  std::size_t peak_viewers = 0;
  std::size_t peak_memory_bytes = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Single-threaded continuous monitor. Drive it from one thread (feed /
/// consume / advance_to / finish); events are delivered serially from
/// that thread. See the header comment for online-vs-batch semantics.
class ContinuousMonitor {
 public:
  /// `classifier` must be fitted and outlive the monitor. `sink` may be
  /// null; when set it must outlive the monitor. Events fire on the
  /// driving thread — no synchronization needed in the sink.
  ContinuousMonitor(const core::RecordClassifier& classifier,
                    MonitorConfig config = {},
                    engine::EventSink* sink = nullptr);
  ~ContinuousMonitor();

  ContinuousMonitor(const ContinuousMonitor&) = delete;
  ContinuousMonitor& operator=(const ContinuousMonitor&) = delete;

  /// Offer one packet. Timers with deadlines at or before the packet's
  /// timestamp fire first (evidence windows close, idle state leaves),
  /// then the packet is analyzed — capture-time order is the only
  /// order that exists.
  void feed(const net::Packet& packet);

  /// Pull `source` to exhaustion via read_batch(). Returns packets fed.
  std::size_t consume(engine::PacketSource& source);

  /// Advance simulated time without traffic: fire every timer due at or
  /// before `now`. A live tap calls this on its quiet-period heartbeat
  /// so idle viewers still age out between packets.
  void advance_to(util::SimTime now);

  /// End of monitoring: flush the extractor (residual records still
  /// decode), settle every open question (ChoiceInferred, final), evict
  /// every viewer (kShutdown), and return lifetime totals. The monitor
  /// cannot be fed afterwards.
  MonitorStats finish();

  [[nodiscard]] const MonitorStats& stats() const;
  [[nodiscard]] std::size_t active_viewers() const;
  /// Approximate bytes of viewer decode state + timer wheel storage —
  /// the quantity the global ceiling bounds.
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] util::SimTime now() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wm::monitor
