// Live packet sources for the continuous monitor.
//
// Capture-file replay hands the monitor packets as fast as the disk
// can read them — correct for batch scoring, useless for exercising
// the *time-driven* parts of a long-running service (evidence-window
// timers, idle eviction, load shedding under sustained pressure).
// Two sources close that gap:
//
//  * InjectableTap — an in-process tap. A producer thread injects
//    packets (a capture replayer, a test, eventually a NIC reader);
//    the monitor thread consumes them through the ordinary
//    PacketSource pull interface. Backed by the engine's SPSC ring,
//    so the handoff is lock-free in the steady state and applies
//    backpressure when the monitor falls behind.
//
//  * TimedReplaySource — timing-faithful replay. Wraps any inner
//    source and paces delivery by the original capture timestamps at
//    a configurable speed (1x reproduces the recorded cadence, Nx
//    compresses a day of monitoring into minutes). Soak tests use it
//    to drive the monitor the way a live vantage point would.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "wm/core/engine/source.hpp"
#include "wm/net/packet.hpp"
#include "wm/util/spsc_ring.hpp"
#include "wm/util/time.hpp"

namespace wm::monitor {

/// In-process packet tap: one producer thread injects, one consumer
/// thread (the monitor driver) pulls through PacketSource. Exactly one
/// thread may call the inject side and exactly one the source side —
/// the underlying ring is SPSC by contract.
class InjectableTap final : public engine::PacketSource {
 public:
  /// `capacity` bounds in-flight packets (rounded up to a power of
  /// two); a full ring parks the producer until the consumer drains.
  explicit InjectableTap(std::size_t capacity = 4096) : ring_(capacity) {}

  // --- producer side ---------------------------------------------------
  /// Blocking inject. False only when the tap was closed first (the
  /// packet is dropped then).
  bool inject(net::Packet packet) { return ring_.push(std::move(packet)); }
  /// Non-blocking inject. False when the ring is full.
  [[nodiscard]] bool try_inject(net::Packet& packet) {
    return ring_.try_push(packet);
  }
  /// Blocking batch inject; returns packets accepted (short only when
  /// the tap closes mid-batch). Packets [0, n) are moved-from.
  std::size_t inject_batch(net::Packet* packets, std::size_t count) {
    return ring_.push_n(packets, count);
  }
  /// End the stream: the consumer drains what is queued, then sees
  /// end-of-stream; blocked producers unblock.
  void close() { ring_.close(); }
  [[nodiscard]] bool closed() const { return ring_.closed(); }
  [[nodiscard]] std::size_t queued_approx() const {
    return ring_.size_approx();
  }

  // --- consumer side (PacketSource) ------------------------------------
  /// Blocks until a packet arrives or the tap is closed and drained.
  std::optional<net::Packet> next() override;
  /// Blocks for the first packet, then drains whatever else is already
  /// queued (up to `max`) without blocking again. 0 = closed + drained.
  [[nodiscard]] std::size_t read_batch(engine::PacketBatch& out,
                                       std::size_t max) override;

 private:
  util::SpscRing<net::Packet> ring_;
  /// Batch-pop staging; slot buffers recycle through the ring via move.
  std::vector<net::Packet> scratch_;
};

/// Paces an inner source by its capture timestamps: packet k is
/// delivered no earlier than wall_start + (ts_k - ts_0) / speed. The
/// monitor consuming through this source experiences the recorded
/// traffic cadence — quiet periods included — so its timers fire in
/// the same relative order they would at a live vantage point.
class TimedReplaySource final : public engine::PacketSource {
 public:
  struct Config {
    /// Replay speed multiplier: 1.0 = original cadence, 10.0 = ten
    /// capture-seconds per wall-second. Values <= 0 are treated as
    /// "as fast as possible" (no pacing).
    double speed = 1.0;
    /// Longest single sleep while waiting for a packet to come due;
    /// long capture gaps are slept in slices of this so a driver
    /// thread stays responsive.
    util::Duration max_sleep = util::Duration::millis(50);
  };

  /// `inner` must outlive this source.
  TimedReplaySource(engine::PacketSource& inner, Config config)
      : inner_(inner), config_(config) {}
  explicit TimedReplaySource(engine::PacketSource& inner)
      : TimedReplaySource(inner, Config()) {}

  std::optional<net::Packet> next() override;
  /// Waits until the inner source's next packet is due, then delivers
  /// it plus every further packet already due *now* (up to `max`) —
  /// a burst in the capture replays as a burst, not as `max` sleeps.
  [[nodiscard]] std::size_t read_batch(engine::PacketBatch& out,
                                       std::size_t max) override;
  [[nodiscard]] const std::optional<Error>& error() const override {
    return inner_.error();
  }

  /// Capture time of the most recently delivered packet.
  [[nodiscard]] util::SimTime replay_position() const { return position_; }

 private:
  /// Wall-clock instant `ts` comes due (epoch fixed by first packet).
  [[nodiscard]] std::chrono::steady_clock::time_point due_at(
      util::SimTime ts) const;
  void wait_until_due(util::SimTime ts);
  /// Pull the next inner packet into pending_ (if not already there).
  bool fill_pending();

  engine::PacketSource& inner_;
  Config config_;
  std::optional<net::Packet> pending_;
  bool epoch_set_ = false;
  std::chrono::steady_clock::time_point wall_start_{};
  std::int64_t capture_start_nanos_ = 0;
  util::SimTime position_;
};

}  // namespace wm::monitor
