// Synthetic monitoring fleets: many concurrent interactive-viewing
// sessions, generated on the fly.
//
// Soak-testing a monitor needs traffic volumes (10^5 sessions and up)
// that the full simulator would take minutes to materialize and GBs to
// hold. This generator takes the opposite trade: build ONE complete
// TLS session — real handshake (SNI and all), real TCP framing, state
// uploads at the classifier's band lengths, overrides on a fixed
// stride — then stream the whole fleet by replaying that template with
// per-session address rewrites and timestamp shifts, interleaved so a
// configurable number of sessions is in flight at any instant.
//
// Because every session is the same script, ground truth is known in
// closed form (question_overridden()) and the expected per-viewer
// answer sequence can be asserted exactly, at any fleet size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "wm/core/engine/source.hpp"
#include "wm/core/features.hpp"
#include "wm/net/packet.hpp"
#include "wm/tls/session.hpp"
#include "wm/util/time.hpp"

namespace wm::monitor {

struct WorkloadConfig {
  /// Total sessions in the fleet.
  std::size_t sessions = 1000;
  /// Target sessions in flight at once (lanes). Lane l runs sessions
  /// l, l+K, l+2K, ... back to back, lanes staggered uniformly.
  std::size_t concurrency = 64;
  /// Interactive questions per session.
  std::size_t questions_per_session = 4;
  /// Question q (0-based) is answered with a non-default choice —
  /// i.e. a type-2 upload follows — iff q % override_stride == 0.
  /// 0 disables overrides entirely.
  std::size_t override_stride = 2;
  /// Time between consecutive question anchors within a session.
  util::Duration question_spacing = util::Duration::seconds(2);
  /// Type-2 upload lag behind its question's type-1 anchor. Keep it
  /// under the monitor's evidence_window for online == batch answers.
  util::Duration override_delay = util::Duration::millis(700);
  /// Quiet gap between back-to-back sessions in the same lane.
  util::Duration lane_gap = util::Duration::millis(500);
  /// Capture time of the first session's SYN.
  util::SimTime start = util::SimTime::from_seconds(1.0);

  /// Application-payload sizes. The sealed record lengths (plaintext +
  /// cipher overhead) are what the classifier sees; defaults land the
  /// three kinds in well-separated bands.
  std::size_t type1_plaintext = 470;
  std::size_t type2_plaintext = 1680;
  /// A non-JSON client upload sent alongside each question (heartbeat
  /// noise the classifier must reject). 0 disables.
  std::size_t noise_plaintext = 180;

  /// TLS parameters for the template session (SNI defaults to a
  /// Netflix-looking host when left empty).
  tls::TlsSessionConfig tls;
  std::uint64_t seed = 7;
};

/// True when question `q` of every session carries an override.
[[nodiscard]] bool question_overridden(const WorkloadConfig& config,
                                       std::size_t q);

/// Labelled calibration set matching the workload's sealed record
/// lengths — fit any RecordClassifier on this before monitoring the
/// fleet. Covers the type-1 and type-2 bands plus kOther examples
/// (noise uploads and handshake-sized lengths).
[[nodiscard]] std::vector<core::LabeledObservation> workload_calibration(
    const WorkloadConfig& config);

/// The template session as packets, timestamps starting at SimTime 0.
/// Exposed for tests that want to decode one session in isolation.
[[nodiscard]] std::vector<net::Packet> make_session_template(
    const WorkloadConfig& config);

/// Streams the whole fleet in global capture-time order. Each session
/// replays the template with both IPv4 endpoints XOR-rewritten by the
/// session index (checksums repaired), so every session is a distinct
/// flow from a distinct viewer; supports up to 2^24 sessions.
class SyntheticFleetSource final : public engine::PacketSource {
 public:
  explicit SyntheticFleetSource(WorkloadConfig config);

  std::optional<net::Packet> next() override;
  [[nodiscard]] std::size_t read_batch(engine::PacketBatch& out,
                                       std::size_t max) override;

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<net::Packet>& session_template() const {
    return template_;
  }
  /// One session's duration plus the lane gap (lane advance step).
  [[nodiscard]] util::Duration session_period() const { return period_; }
  [[nodiscard]] std::size_t packets_total() const {
    return template_.size() * config_.sessions;
  }
  [[nodiscard]] std::size_t packets_emitted() const { return emitted_; }

 private:
  struct Lane {
    std::size_t session = 0;  // global session index currently playing
    std::size_t index = 0;    // next packet within the template
  };
  /// Min-heap entry: next packet's absolute timestamp per live lane.
  struct HeapItem {
    std::int64_t nanos = 0;
    std::size_t lane = 0;
    bool operator>(const HeapItem& other) const { return nanos > other.nanos; }
  };

  [[nodiscard]] util::Duration session_shift(std::size_t session) const;
  void push_lane(std::size_t lane);
  /// Produce the current head packet into `slot` and advance the heap.
  bool produce(net::Packet& slot);

  WorkloadConfig config_;
  std::vector<net::Packet> template_;
  util::Duration period_{};
  util::Duration stagger_{};
  std::size_t lane_count_ = 0;
  std::vector<Lane> lanes_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap_;
  std::size_t emitted_ = 0;
};

}  // namespace wm::monitor
