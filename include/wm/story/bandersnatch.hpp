// The canonical script used throughout the project: a Bandersnatch-like
// interactive film with the choice questions the paper quotes
// ("Frosties or Sugar Puffs?", "visit therapist or follow Colin?",
// "throw tea over computer or shout at dad?") arranged in a branching
// graph of the same flavour as the real film: a common opening segment
// (Segment 0), ten-second choice windows, branch-and-merge structure,
// and multiple endings.
//
// Segment names and question texts follow public episode descriptions;
// durations and bitrates are representative, not measured.
#pragma once

#include "wm/story/graph.hpp"

namespace wm::story {

/// Build the canonical Bandersnatch-like story graph (12 choice points,
/// 30+ segments, 5 endings). Deterministic: same graph on every call.
StoryGraph make_bandersnatch();

/// The film's nominal video bitrate in kbit/s (affects chunk sizes in
/// the simulator; Netflix streams the film around 2-5 Mbps).
inline constexpr std::uint32_t kBandersnatchBitrateKbps = 3500;

}  // namespace wm::story
