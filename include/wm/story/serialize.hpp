// Story-graph serialization: interactive-film scripts as JSON, so a
// script recovered once (the film's structure is public knowledge) can
// be stored, shared and loaded by the attack and analysis tools.
#pragma once

#include <string>

#include "wm/story/graph.hpp"
#include "wm/util/json.hpp"

namespace wm::story {

/// Serialize a graph to a JSON document.
util::JsonValue to_json(const StoryGraph& graph);

/// Serialize to pretty-printed JSON text.
std::string to_json_text(const StoryGraph& graph);

/// Load a graph from a JSON document produced by to_json. Throws
/// std::runtime_error on schema violations; the result always passes
/// StoryGraph's constructor checks (validate() is the caller's call).
StoryGraph from_json(const util::JsonValue& document);
StoryGraph from_json_text(const std::string& text);

}  // namespace wm::story
