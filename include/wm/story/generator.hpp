// Random story-graph generation for property tests and stress benches:
// produces valid graphs of configurable depth/branching so the attack
// pipeline can be exercised on scripts other than the canonical one.
#pragma once

#include "wm/story/graph.hpp"
#include "wm/util/rng.hpp"

namespace wm::story {

struct GeneratorConfig {
  /// Number of choice points along the spine of the story.
  std::size_t questions = 8;
  /// Probability that a branch merges back to the spine (vs. detouring
  /// through an extra linear segment first).
  double merge_probability = 0.6;
  /// Probability that a non-default branch leads to an early ending.
  double early_ending_probability = 0.15;
  /// Segment duration bounds, in seconds.
  int min_segment_seconds = 30;
  int max_segment_seconds = 180;
};

/// Generate a random valid story graph. The result always passes
/// StoryGraph::validate() and has at least `questions` choice points
/// reachable along the all-default path.
StoryGraph generate_story(GeneratorConfig config, util::Rng& rng);

}  // namespace wm::story
