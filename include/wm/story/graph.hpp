// Interactive-film script graph.
//
// Models the structure §III of the paper describes: the film is split
// into *segments* (each a run of streamable chunks); a segment may end
// in a *choice point* presenting two options, of which one is the
// DEFAULT branch the player prefetches during the ten-second choice
// window. The viewer's path through the graph is the sensitive
// information the attack recovers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/util/time.hpp"

namespace wm::story {

/// Index of a segment within its StoryGraph.
using SegmentId = std::uint32_t;
inline constexpr SegmentId kInvalidSegment = 0xffffffffu;

/// Which option a viewer picks at a choice point. The paper denotes the
/// default branch of question Qi as Si and the other as Si'.
enum class Choice : std::uint8_t {
  kDefault,     // Si  — prefetched branch, streaming continues seamlessly
  kNonDefault,  // Si' — prefetch aborted, new segment requested
};

std::string to_string(Choice choice);
/// "S3" / "S3'" notation used in the paper's Fig. 1.
std::string choice_notation(std::size_t question_index, Choice choice);

/// A question shown at the end of a segment ("Frosties or Sugar Puffs?").
struct ChoicePoint {
  std::string prompt;
  std::string default_label;      // on-screen text of the default option
  std::string non_default_label;
  SegmentId default_next = kInvalidSegment;      // Si
  SegmentId non_default_next = kInvalidSegment;  // Si'
  /// Seconds the player gives the viewer to decide (10 s in the film).
  util::Duration window = util::Duration::seconds(10);
};

/// One linear run of content between choice points (or an ending).
struct Segment {
  std::string name;                  // e.g. "SUGAR_PUFFS", "NETFLIX_PITCH"
  util::Duration duration;           // play time of the segment
  std::uint32_t bitrate_kbps = 0;    // 0 = inherit the film's bitrate
  std::optional<ChoicePoint> choice; // nullopt = ending or pass-through
  SegmentId next = kInvalidSegment;  // pass-through target when no choice
  bool is_ending = false;

  [[nodiscard]] bool has_choice() const { return choice.has_value(); }
};

/// The full script graph.
class StoryGraph {
 public:
  StoryGraph(std::string title, SegmentId start, std::vector<Segment> segments);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] SegmentId start() const { return start_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const Segment& segment(SegmentId id) const;

  /// Structural validation: every edge targets a real segment, every
  /// non-ending has a way forward, at least one ending is reachable.
  /// Returns a list of human-readable problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Follow a choice sequence from the start. Consumes one Choice per
  /// choice point encountered; pass-through segments are traversed
  /// automatically. Stops at an ending or when choices run out.
  struct Traversal {
    std::vector<SegmentId> path;      // segments visited, in order
    std::vector<SegmentId> questions; // segments whose choice was consumed
    bool reached_ending = false;
    std::size_t choices_consumed = 0;
  };
  [[nodiscard]] Traversal traverse(const std::vector<Choice>& choices) const;

  /// Number of choice points on the longest possible path (upper bound
  /// on questions a viewer can meet). Cycles are counted once.
  [[nodiscard]] std::size_t max_questions() const;

  /// All segments that contain a choice point.
  [[nodiscard]] std::vector<SegmentId> choice_segments() const;

 private:
  std::string title_;
  SegmentId start_;
  std::vector<Segment> segments_;
};

}  // namespace wm::story
