// Countermeasure transforms (§VI): reshape the browser's state-upload
// sizes so the record-length side-channel collapses.
//
// Each factory returns a sim::ClientPayloadTransform that the simulator
// applies to API-flow client messages before TLS sealing:
//  * pad-to-bucket   — round every upload up to a bucket multiple; all
//                      JSON uploads land on the same few lengths;
//  * split           — cut uploads into fixed-size records. NOTE: the
//                      final fragment still carries (size mod piece),
//                      so splitting alone leaks — a nuance the paper's
//                      "easy fix" glosses over and ablation A1 surfaces;
//  * split+pad       — split and pad the tail: the combination that
//                      actually removes the length signal;
//  * compress        — model gzip: sizes shrink by a content-dependent
//                      factor, blurring (but not always closing) the
//                      gap between the bands.
#pragma once

#include <cstdint>

#include "wm/sim/packetize.hpp"

namespace wm::counter {

/// Identity (no countermeasure); useful as an experiment control.
sim::ClientPayloadTransform identity_transform();

/// Round every upload size up to a multiple of `bucket` bytes.
sim::ClientPayloadTransform pad_to_bucket(std::size_t bucket);

/// Cut every upload into records of exactly `piece` bytes; the final
/// fragment keeps its natural (leaky) size.
sim::ClientPayloadTransform split_records(std::size_t piece);

/// Cut into `piece`-byte records and pad the final fragment to the
/// full piece size: every record of every upload is identical.
sim::ClientPayloadTransform split_and_pad(std::size_t piece);

/// Multiply sizes by a deterministic pseudo-compression ratio that
/// varies with the original size (models content-dependent gzip
/// output). `ratio` in (0,1]; `jitter` adds size-dependent wobble.
sim::ClientPayloadTransform compress(double ratio = 0.42, double jitter = 0.08);

}  // namespace wm::counter
