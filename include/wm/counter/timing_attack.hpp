// Residual timing side-channel (§VI: "there could be timing
// side-channels that may still exist even after this fix").
//
// Even when every client record has the same length, the streaming
// *process* of Fig. 1 still shows through in timing alone:
//  * during a choice window the player prefetches the default branch
//    at a faster cadence than steady-state chunk fetching, so choice
//    windows appear as bursts of closely-spaced CDN requests;
//  * a non-default decision forces an extra state upload (the type-2
//    JSON) in the middle of that window, while a default decision
//    sends nothing there.
// The timing attack detects windows from CDN request cadence and
// decides default/non-default from the presence of a mid-window API
// upload. Telemetry uploads create false positives, which is why this
// channel recovers choices only partially — exactly the caveat the
// paper raises.
#pragma once

#include <vector>

#include "wm/core/decoder.hpp"
#include "wm/net/packet.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/tls/record_stream.hpp"

namespace wm::counter {

struct TimingAttackConfig {
  /// Steady-state chunk cadence the attacker assumes (player property,
  /// learnable from any calibration trace). Seconds.
  double chunk_cadence_s = 2.0;
  /// Gaps between CDN requests inside (burst_min, burst_max) x cadence
  /// are treated as prefetch cadence.
  double burst_min_fraction = 0.12;
  double burst_max_fraction = 0.62;
  /// Minimum consecutive prefetch-cadence gaps to accept a window.
  std::size_t min_burst_length = 1;
  /// Slack after the burst start before an upload counts (the type-1
  /// upload itself rides at the window start).
  double window_slack_s = 0.15;
  /// How far past the observed prefetch burst to search for the
  /// decision upload. The decision can land after the burst (the
  /// default branch may run out of chunks to prefetch), but searching
  /// the film's whole 10 s window drowns in telemetry false positives;
  /// a bounded extension balances recall against precision.
  double search_extension_s = 4.0;
};

/// Result of the timing attack on one capture.
struct TimingInference {
  core::InferredSession session;
  std::size_t windows_detected = 0;
};

/// Run the timing attack. Flow roles are inferred from the capture:
/// the highest-server-volume TLS flow is the CDN; the flow with the
/// most client application records among the rest is the API channel.
TimingInference timing_attack(const std::vector<net::Packet>& packets,
                              const TimingAttackConfig& config);

/// Same, over pre-extracted record streams.
TimingInference timing_attack(const std::vector<tls::FlowRecordStream>& streams,
                              const TimingAttackConfig& config);

}  // namespace wm::counter
