// Countermeasure evaluation harness: run the record-length attack and
// the timing attack against sessions protected by a given transform,
// with the attacker allowed to re-calibrate on protected traces
// (worst case for the defender).
#pragma once

#include <string>
#include <vector>

#include "wm/core/eval.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/counter/timing_attack.hpp"
#include "wm/counter/transforms.hpp"
#include "wm/dataset/builder.hpp"
#include "wm/story/graph.hpp"

namespace wm::counter {

struct CountermeasureRun {
  std::string name;
  core::AggregateScore length_attack;   // record-length attack score
  core::AggregateScore timing_attack;   // residual timing channel score
  bool classifier_bands_overlap = false;
  /// Mean client-upload byte overhead the countermeasure costs.
  double overhead_fraction = 0.0;
  /// Accuracy of the choice-blind majority guess on the eval sessions
  /// (the chance level an attack must beat to carry information).
  double blind_guess_accuracy = 0.0;
};

struct CountermeasureEvalConfig {
  std::size_t calibration_sessions = 4;
  std::size_t eval_sessions = 10;
  std::uint64_t seed = 77;
  sim::StreamingConfig streaming;
  /// All sessions run under one operational condition: the attack is
  /// calibrated per condition (as the paper's per-condition Fig. 2
  /// bands are), so the countermeasure comparison holds it fixed.
  sim::OperationalConditions conditions;
};

/// Evaluate one named transform end to end.
CountermeasureRun evaluate_countermeasure(
    const story::StoryGraph& graph, const std::string& name,
    const sim::ClientPayloadTransform& transform,
    const CountermeasureEvalConfig& config);

}  // namespace wm::counter
