// Declarative command-line flag parsing for the examples and benches.
//
// Supports `--name value`, `--name=value` and boolean `--name` flags,
// generates --help text, and validates that every required flag was
// supplied and no unknown flag was passed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wm::util {

class CliParser {
 public:
  CliParser(std::string program_name, std::string description);

  /// Register flags before parse(). `default_value` doubles as the
  /// documentation of the default; required flags pass std::nullopt.
  void add_string(std::string name, std::string help,
                  std::optional<std::string> default_value);
  void add_int(std::string name, std::string help,
               std::optional<std::int64_t> default_value);
  void add_double(std::string name, std::string help,
                  std::optional<double> default_value);
  void add_bool(std::string name, std::string help);  // defaults to false

  /// Parse argv. Returns false (after printing usage) if --help was
  /// requested; throws std::runtime_error on invalid input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Positional arguments left over after flag parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type = Type::kString;
    std::string help;
    std::optional<std::string> value;  // textual; converted on get
    bool required = false;
    bool seen = false;
  };

  const Flag& find(std::string_view name, Type expected) const;

  std::string program_name_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wm::util
