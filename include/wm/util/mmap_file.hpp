// Read-only memory-mapped file access for the zero-copy capture path.
//
// A MappedFile exposes a whole file as one contiguous BytesView, so
// capture parsers can hand out PacketViews that borrow directly from
// the page cache instead of copying every record through an istream.
// Mapping is strictly an optimisation: open() returns an invalid
// (empty) object on any failure — unsupported platform, unmappable
// file, pipe instead of a regular file — and callers fall back to the
// streaming path. An empty regular file maps as a valid, empty view.
#pragma once

#include <cstddef>
#include <filesystem>

#include "wm/util/bytes.hpp"

namespace wm::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only. Invalid (valid() == false) when the platform
  /// has no mmap, the path is not a mappable regular file, or any
  /// syscall fails — never throws.
  static MappedFile open(const std::filesystem::path& path);

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] BytesView view() const noexcept {
    return BytesView(static_cast<const std::uint8_t*>(data_), size_);
  }

 private:
  void reset() noexcept;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace wm::util
