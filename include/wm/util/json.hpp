// A small self-contained JSON document model, serializer and parser.
//
// Used in two distinct roles:
//  * the simulator *builds* the type-1 / type-2 state JSONs the browser
//    uploads at each choice point (their serialized size is the whole
//    side-channel, so we need real serialization, not a size stub), and
//  * the dataset layer stores/loads manifests and ground truth.
// Supports the full JSON grammar except for non-finite numbers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace wm::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted; serialization is therefore canonical,
/// which makes payload sizes deterministic for a given content.
using JsonObject = std::map<std::string, JsonValue>;

/// A JSON document node: null, bool, number (int64 or double), string,
/// array or object.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts int too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonObject& as_object();

  /// Object member access; throws if not an object / key missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Serialize. With indent == 0 the output is compact (no whitespace);
  /// otherwise pretty-printed with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// position-annotated message on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  bool operator==(const JsonValue&) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Escape a string for inclusion in JSON output (without quotes).
std::string json_escape(std::string_view raw);

}  // namespace wm::util
