// Hierarchical timing wheel over simulated time.
//
// The continuous monitor tracks one or two timers per live viewer —
// flow-idle eviction, the evidence window of an open question — at
// hundreds of thousands of concurrent viewers. A heap-based timer queue
// would pay O(log n) per schedule/cancel with pointer-chasing
// comparisons on exactly the per-packet path that must stay flat; the
// classic answer (kernel timer wheel, Varghese & Lauck) is a wheel of
// hash buckets indexed by expiry tick: O(1) schedule, O(1) cancel,
// amortized O(1) advance.
//
// This wheel is hierarchical: level 0 resolves single ticks, each
// higher level spans `slots` times the level below, and entries that
// outrange even the top level park in its furthest slot and re-cascade
// when time reaches them (long-idle wraparound). Timers therefore fire
// in tick order, never early, and at most one tick late relative to
// their deadline — exact enough for idle eviction and decode windows
// whose natural scale is tens of milliseconds.
//
// Time is util::SimTime, not a wall clock: the monitor drives the wheel
// from packet capture timestamps, so replaying a recorded corpus at any
// speed reproduces eviction and emission decisions bit-for-bit.
//
// Single-threaded by design (one wheel per monitor/shard, owned by the
// thread that feeds it); re-entrant scheduling and cancellation from
// inside a fire callback are supported.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "wm/util/time.hpp"

namespace wm::util {

class TimerWheel {
 public:
  /// Opaque timer handle. Ids are generation-tagged: a slot reused by a
  /// later timer invalidates stale ids, so cancel() after fire is a
  /// safe no-op instead of a use-after-free of the slot.
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  struct Config {
    /// Resolution of level 0. Deadlines round up to the next tick.
    Duration tick = Duration::millis(10);
    /// log2(slots per level); 8 = 256 slots.
    std::size_t slot_bits = 8;
    /// Wheel levels. With 10ms ticks and 256 slots, 4 levels cover
    /// 10ms * 256^4 ~ 1.4 years before wraparound parking kicks in.
    std::size_t levels = 4;
  };

  explicit TimerWheel(Config config, SimTime origin = SimTime());
  // Default args referencing a nested aggregate's member initializers
  // are ill-formed inside the enclosing class; delegate instead.
  TimerWheel() : TimerWheel(Config()) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a timer at `deadline` carrying `data`. A deadline at or before
  /// now() fires on the next advance(). Returns a handle for cancel().
  TimerId schedule(SimTime deadline, std::uint64_t data);

  /// Disarm. False when the id already fired, was cancelled, or never
  /// existed (stale generation) — all safe. A timer whose tick is
  /// currently being fired cannot be cancelled out of that batch; match
  /// the fired id against your stored handle to reject stale fires.
  bool cancel(TimerId id);

  /// Cancel-and-rearm in one call; `id` may be kInvalidTimer (pure
  /// schedule). Returns the new handle.
  TimerId reschedule(TimerId id, SimTime deadline, std::uint64_t data);

  /// Advance the wheel to `now`, invoking `fire(id, data, deadline)`
  /// for every timer whose deadline tick has been reached, in tick
  /// order. Callbacks may schedule, reschedule, and cancel freely; a
  /// timer scheduled inside a callback for a tick already passed fires
  /// within the same advance() call. Time never moves backwards: a
  /// `now` before the current cursor is a no-op. Returns fired count.
  template <typename Fire>
  std::size_t advance(SimTime now, Fire&& fire) {
    std::size_t fired = 0;
    const std::uint64_t target = tick_of(now);
    while (cursor_ < target) {
      if (active_ == 0) {
        // Empty wheel: jump, do not crank 100k idle ticks one by one.
        cursor_ = target;
        break;
      }
      ++cursor_;
      advancing_ = true;
      cascade_for(cursor_);
      // Re-drain until empty: a callback scheduling at/behind the
      // current tick lands back in this slot and fires this tick.
      for (;;) {
        std::uint32_t index = take_slot(0, level_slot(0, cursor_));
        if (index == kNil) break;
        while (index != kNil) {
          const std::uint32_t next = entries_[index].next;
          const TimerId id = make_id(index, entries_[index].generation);
          const SimTime deadline = entries_[index].deadline;
          const std::uint64_t data = entries_[index].data;
          release(index);
          ++fired;
          fire(id, data, deadline);
          index = next;
        }
      }
      advancing_ = false;
    }
    return fired;
  }

  /// Timers currently armed.
  [[nodiscard]] std::size_t active() const { return active_; }
  /// The wheel's current position (end of the last advanced tick).
  [[nodiscard]] SimTime now() const;
  /// Bytes of entry/slot storage currently reserved (capacity, not
  /// occupancy) — feeds the monitor's memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    SimTime deadline;
    std::uint64_t data = 0;
    std::uint32_t generation = 0;
    std::uint32_t prev = kNil;  // kNil = head of its slot list
    std::uint32_t next = kNil;
    std::uint32_t slot = kNil;  // kNil = free / detached
  };

  [[nodiscard]] std::uint64_t tick_of(SimTime time) const;
  [[nodiscard]] std::size_t level_slot(std::size_t level,
                                       std::uint64_t tick) const;
  /// Flat index of (level, slot) into slots_.
  [[nodiscard]] std::size_t slot_index(std::size_t level,
                                       std::size_t slot) const {
    return level * slot_count_ + slot;
  }
  static TimerId make_id(std::uint32_t index, std::uint32_t generation) {
    return (static_cast<TimerId>(generation) << 32) | (index + 1);
  }

  std::uint32_t acquire();
  void release(std::uint32_t index);
  void place(std::uint32_t index);
  void unlink(std::uint32_t index);
  /// Detach a slot's whole list, returning its head.
  std::uint32_t take_slot(std::size_t level, std::size_t slot);
  /// When the tick crosses a higher-level boundary, re-place that
  /// level's current slot so its entries drop toward level 0.
  void cascade_for(std::uint64_t tick);

  Config config_;
  std::int64_t tick_nanos_ = 1;
  SimTime origin_;
  std::uint64_t cursor_ = 0;  // ticks fully processed
  std::size_t slot_count_ = 0;
  std::size_t slot_mask_ = 0;
  std::vector<std::uint32_t> slots_;  // head entry per (level, slot)
  std::vector<Entry> entries_;
  std::uint32_t free_head_ = kNil;
  std::size_t active_ = 0;
  /// True while advance() processes the cursor tick: placements may
  /// target the in-flight tick (its slot is re-drained) instead of
  /// being pushed to cursor_ + 1.
  bool advancing_ = false;
};

}  // namespace wm::util
