// Byte-buffer reading and writing with explicit endianness.
//
// Network formats in this project (Ethernet/IP/TCP headers, TLS records,
// pcap files) are defined in terms of octet sequences with a declared byte
// order. ByteReader / ByteWriter make that order explicit at every access
// and bounds-check every read, so parsers built on top of them never walk
// off the end of a packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wm::util {

/// Bytes are pushed/pulled as unsigned octets throughout the project.
using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Blessed byte<->char crossing points. Stream I/O and text APIs traffic
/// in char while the project traffics in std::uint8_t; these helpers are
/// the one audited place that bridges the two, so parser code never
/// needs a raw reinterpret_cast on capture bytes (tools/wm_lint enforces
/// this — rule `cast`).
///
/// Read up to `count` bytes from `in` into `dst`; returns the number
/// actually read (== count on success, fewer only at EOF or stream
/// failure — callers decide which of those is an error).
[[nodiscard]] std::size_t read_exact(std::istream& in, std::uint8_t* dst,
                                     std::size_t count);
/// Write a whole byte span to a stream (stream state tells success).
void write_all(std::ostream& out, BytesView data);
/// View a byte span as chars (e.g. to build a std::string).
[[nodiscard]] std::string_view as_chars(BytesView data);
/// View a string's storage as bytes.
[[nodiscard]] BytesView as_bytes(std::string_view text);

/// Render a byte span as lowercase hex, e.g. "16030300aa". Useful in
/// test failure messages and debug logs.
std::string to_hex(BytesView data);

/// Parse a hex string (optionally with spaces between byte pairs) into
/// bytes. Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Classic 17-bytes-per-line hex dump with offsets and ASCII gutter.
std::string hex_dump(BytesView data, std::size_t bytes_per_line = 16);

/// Thrown by ByteReader when a read would pass the end of the buffer.
class OutOfBoundsError : public std::exception {
 public:
  OutOfBoundsError(std::size_t requested, std::size_t available);
  [[nodiscard]] const char* what() const noexcept override { return message_.c_str(); }
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t available() const noexcept { return available_; }

 private:
  std::size_t requested_;
  std::size_t available_;
  std::string message_;
};

/// Bounds-checked sequential reader over a borrowed byte span.
///
/// All multi-byte reads come in big-endian (`_be`, network order) and
/// little-endian (`_le`) flavours; there is deliberately no "host order"
/// accessor so format code always states the order it means.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Move the cursor to an absolute offset (must be <= size()).
  void seek(std::size_t offset);
  /// Advance the cursor without copying out data.
  void skip(std::size_t count);

  // Reads advance the cursor; discarding the value means the call was
  // really a skip() — [[nodiscard]] keeps that intent explicit.
  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16_be();
  [[nodiscard]] std::uint16_t read_u16_le();
  [[nodiscard]] std::uint32_t read_u24_be();
  [[nodiscard]] std::uint32_t read_u32_be();
  [[nodiscard]] std::uint32_t read_u32_le();
  [[nodiscard]] std::uint64_t read_u64_be();
  [[nodiscard]] std::uint64_t read_u64_le();

  /// Borrow `count` bytes from the buffer (no copy) and advance.
  [[nodiscard]] BytesView read_view(std::size_t count);
  /// Copy `count` bytes out of the buffer and advance.
  [[nodiscard]] Bytes read_bytes(std::size_t count);

  /// Peek helpers: read without advancing the cursor.
  [[nodiscard]] std::uint8_t peek_u8() const;
  [[nodiscard]] std::uint16_t peek_u16_be() const;

 private:
  void require(std::size_t count) const;

  // wm-lint: allow(borrow): a reader IS a cursor over the caller's
  // buffer; documented above as borrowing, never escapes the parse call.
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Append-only builder for wire-format byte strings.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buffer_.reserve(reserve_bytes); }

  void write_u8(std::uint8_t value);
  void write_u16_be(std::uint16_t value);
  void write_u16_le(std::uint16_t value);
  void write_u24_be(std::uint32_t value);
  void write_u32_be(std::uint32_t value);
  void write_u32_le(std::uint32_t value);
  void write_u64_be(std::uint64_t value);
  void write_u64_le(std::uint64_t value);
  void write_bytes(BytesView data);
  /// Append `count` copies of `fill` (used for padding fields).
  void write_repeated(std::uint8_t fill, std::size_t count);

  /// Overwrite 2 bytes at `offset` in big-endian order; used to patch
  /// length fields after the body has been serialized.
  void patch_u16_be(std::size_t offset, std::uint16_t value);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] BytesView view() const noexcept { return buffer_; }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buffer_; }
  /// Move the accumulated buffer out; the writer is empty afterwards.
  Bytes take();

 private:
  Bytes buffer_;
};

}  // namespace wm::util
