// Bounded single-producer / single-consumer ring buffer.
//
// The engine's dispatcher→shard handoff is structurally SPSC: exactly
// one thread feeds each shard queue and exactly one worker drains it.
// This ring makes that handoff lock-free in the steady state — one
// release store and one acquire load per operation, with cached
// counterpart indices so an uncontended push/pop touches a single
// shared cache line — and keeps a mutex/condvar pair strictly for the
// park/unpark edge when the ring runs full (producer backpressure) or
// empty (idle consumer).
//
// Wakeup protocol: a parking side publishes its parked flag with
// sequential consistency, then rechecks the ring before sleeping; the
// other side publishes its index update, fences, then checks the flag.
// Either the parker sees the update and never sleeps, or the peer sees
// the flag and notifies. A short timed wait backstops the handshake so
// no missed edge can ever become a deadlock.
//
// Thread roles are a contract: try_push/push from the one producer
// thread, try_pop/pop from the one consumer thread. close() may be
// called from the producer (or an owner) and wakes both sides.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "wm/util/thread_annotations.hpp"

namespace wm::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer: push without blocking. False when the ring is full (the
  /// value is left untouched in that case).
  [[nodiscard]] bool try_push(T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    wake(consumer_parked_, consumer_cv_);
    return true;
  }

  /// Producer: push, parking when full. False only when the ring was
  /// closed before space appeared (the value is dropped then — a
  /// closed ring accepts nothing).
  bool push(T value) {
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (try_push(value)) return true;
      park(producer_parked_, producer_cv_,
           [this] { return !full() || closed_.load(std::memory_order_relaxed); });
    }
  }

  /// Producer: push up to `count` values without blocking, returning
  /// how many were accepted (values [0, n) are moved-from). One index
  /// acquire, one release store, and one wake edge amortized over the
  /// whole batch — the per-item seq_cst wake fence is what lets a
  /// mutex+deque with batched locking catch a per-item ring (ROADMAP
  /// item 2); batching restores the expected gap.
  [[nodiscard]] std::size_t try_push_n(T* values, std::size_t count) {
    if (count == 0) return 0;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = slots_.size() - static_cast<std::size_t>(tail - head_cache_);
    if (free < count) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t n = free < count ? free : count;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(values[i]);
    }
    tail_.store(tail + n, std::memory_order_release);
    wake(consumer_parked_, consumer_cv_);
    return n;
  }

  /// Producer: push all `count` values, parking when full. Returns how
  /// many were accepted — short only when the ring closes mid-batch.
  std::size_t push_n(T* values, std::size_t count) {
    std::size_t done = 0;
    while (done < count) {
      if (closed_.load(std::memory_order_acquire)) break;
      done += try_push_n(values + done, count - done);
      if (done == count) break;
      park(producer_parked_, producer_cv_,
           [this] { return !full() || closed_.load(std::memory_order_relaxed); });
    }
    return done;
  }

  /// Consumer: pop without blocking. False when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    wake(producer_parked_, producer_cv_);
    return true;
  }

  /// Consumer: pop up to `max` values into `out` without blocking,
  /// returning how many were taken. Amortizes the index publish and
  /// wake edge exactly like try_push_n.
  [[nodiscard]] std::size_t try_pop_n(T* out, std::size_t max) {
    if (max == 0) return 0;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    wake(producer_parked_, producer_cv_);
    return n;
  }

  /// Consumer: pop, parking when empty. False means closed AND fully
  /// drained — the stream is over.
  bool pop(T& out) {
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // close() happens after the final push; one refreshed retry
        // cannot miss it.
        return try_pop(out);
      }
      park(consumer_parked_, consumer_cv_,
           [this] { return !empty() || closed_.load(std::memory_order_relaxed); });
    }
  }

  /// End the stream: consumers drain what is queued then see false;
  /// blocked producers unblock with false.
  void close() WM_EXCLUDES(park_mutex_) {
    {
      const LockGuard lock(park_mutex_);
      closed_.store(true, std::memory_order_release);
    }
    producer_cv_.notify_all();
    consumer_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (exact only from a quiesced ring).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  [[nodiscard]] bool full() const noexcept {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_relaxed) ==
           slots_.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return tail_.load(std::memory_order_relaxed) ==
           head_.load(std::memory_order_relaxed);
  }

  template <typename Ready>
  void park(std::atomic<bool>& parked_flag, std::condition_variable_any& cv,
            Ready ready) WM_EXCLUDES(park_mutex_) {
    UniqueLock lock(park_mutex_);
    parked_flag.store(true, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!ready()) {
      // Timed backstop: a missed edge costs a blip, never a deadlock.
      cv.wait_for(lock, std::chrono::milliseconds(10), ready);
    }
    parked_flag.store(false, std::memory_order_relaxed);
  }

  void wake(std::atomic<bool>& parked_flag, std::condition_variable_any& cv)
      WM_EXCLUDES(park_mutex_) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_flag.load(std::memory_order_seq_cst)) {
      // Empty critical section orders the notify against the parker's
      // flag-set/recheck window.
      { const LockGuard lock(park_mutex_); }
      cv.notify_all();
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  std::uint64_t tail_cache_ = 0;                    // consumer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  std::uint64_t head_cache_ = 0;                    // producer-owned
  alignas(64) std::atomic<bool> closed_{false};

  // Park/unpark edge only; never touched on the lock-free fast path.
  // wm-lint: allow(mutex): required by condition_variable for blocking
  // waits; try_push/try_pop never take it.
  // wm-lint: allow(guarded): guards no member — it serializes the
  // parked-flag/condvar wakeup protocol; ring state crosses threads via
  // the acquire/release index atomics above.
  Mutex park_mutex_;
  std::condition_variable_any producer_cv_;
  std::condition_variable_any consumer_cv_;
  std::atomic<bool> producer_parked_{false};
  std::atomic<bool> consumer_parked_{false};
};

}  // namespace wm::util
