// Simulated-time types.
//
// All timestamps in the project — packet capture times, TLS record
// times, streaming events — are expressed as SimTime: nanoseconds since
// the start of the simulated capture. Using a dedicated strong type (not
// std::chrono::time_point of a real clock) keeps simulated and wall time
// from mixing, and keeps pcap serialization exact.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace wm::util {

/// A span of simulated time, in nanoseconds. Signed so differences are
/// representable.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1'000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000'000);
  }
  /// Construct from fractional seconds (rounded to the nearest ns).
  static Duration from_seconds(double s);

  [[nodiscard]] constexpr std::int64_t total_nanos() const { return nanos_; }
  [[nodiscard]] constexpr std::int64_t total_micros() const { return nanos_ / 1'000; }
  [[nodiscard]] constexpr std::int64_t total_millis() const {
    return nanos_ / 1'000'000;
  }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const {
    return Duration(nanos_ + other.nanos_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(nanos_ - other.nanos_);
  }
  constexpr Duration operator-() const { return Duration(-nanos_); }
  constexpr Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    nanos_ -= other.nanos_;
    return *this;
  }
  constexpr Duration operator*(std::int64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator*(int k) const {
    return Duration(nanos_ * static_cast<std::int64_t>(k));
  }
  Duration operator*(double k) const;

  /// Render as a human-friendly string, e.g. "1.250s", "340ms", "12us".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t n) : nanos_(n) {}
  std::int64_t nanos_ = 0;
};

/// An instant of simulated time: nanoseconds since capture start.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime from_nanos(std::int64_t n) { return SimTime(n); }
  static SimTime from_seconds(double s);

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime(nanos_ + d.total_nanos());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(nanos_ - d.total_nanos());
  }
  constexpr Duration operator-(SimTime other) const {
    return Duration::nanos(nanos_ - other.nanos_);
  }
  constexpr SimTime& operator+=(Duration d) {
    nanos_ += d.total_nanos();
    return *this;
  }

  /// Render as seconds with millisecond precision, e.g. "t=12.345s".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t n) : nanos_(n) {}
  std::int64_t nanos_ = 0;
};

}  // namespace wm::util
