// Bump-pointer arena with size-class recycling — the allocator behind
// per-shard flow state.
//
// The engine's per-packet hot path used to pay general-purpose malloc
// for every flow-table node, reassembly buffer and parser scratch
// vector. An Arena replaces that with two O(1) primitives:
//
//  * allocate(): bump a cursor inside a large block (a new block is
//    chained when the current one is full — the only time the arena
//    touches the system allocator);
//  * deallocate(): push the memory onto a per-size-class freelist, so
//    the next allocation of the same class (e.g. the next flow-map
//    node) is a pointer pop, not a malloc.
//
// Nothing is ever returned to the system until reset() (drop every
// freelist, rewind every block) or destruction. That is the arena
// lifetime rule (DESIGN.md §3.9): an arena is owned by exactly one
// shard, all containers allocating from it must be destroyed or
// cleared before reset(), and the arena must outlive them. The class
// is intentionally NOT thread-safe — per-shard ownership is the
// point.
//
// Under AddressSanitizer, freed and not-yet-allocated arena memory is
// poisoned, so use-after-free through a recycled node and reads past
// the bump cursor fault exactly like heap bugs would. The sanitizer CI
// legs exercise this via the arena unit tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WM_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define WM_ARENA_ASAN 1
#endif

#ifdef WM_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define WM_ARENA_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define WM_ARENA_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define WM_ARENA_POISON(ptr, size) ((void)0)
#define WM_ARENA_UNPOISON(ptr, size) ((void)0)
#endif

namespace wm::util {

class Arena {
 public:
  /// Every allocation is rounded up to a multiple of this, which is
  /// also the strongest alignment allocate() honours without a block
  /// split and the size of a freelist link.
  static constexpr std::size_t kGranularity = alignof(std::max_align_t);
  /// Size classes up to this many bytes are recycled through
  /// freelists; larger allocations bump-allocate and are reclaimed
  /// only by reset(). Sized to cover flow-map nodes (the largest
  /// recycled object) with headroom.
  static constexpr std::size_t kMaxRecycledBytes = 4096;

  struct Stats {
    std::size_t blocks = 0;          // chained blocks
    std::size_t reserved_bytes = 0;  // sum of block capacities
    std::size_t live_bytes = 0;      // allocated minus deallocated
    std::size_t high_water_bytes = 0;
    std::uint64_t allocations = 0;
    std::uint64_t freelist_hits = 0;
  };

  explicit Arena(std::size_t block_bytes = 256 * 1024)
      : block_bytes_(round_up(block_bytes < kMaxRecycledBytes
                                  ? kMaxRecycledBytes
                                  : block_bytes)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align = kGranularity) {
    const std::size_t rounded = round_up(size == 0 ? 1 : size);
    ++stats_.allocations;
    stats_.live_bytes += rounded;
    if (stats_.live_bytes > stats_.high_water_bytes) {
      stats_.high_water_bytes = stats_.live_bytes;
    }
    if (rounded <= kMaxRecycledBytes && align <= kGranularity) {
      void*& head = freelists_[class_of(rounded)];
      if (head != nullptr) {
        void* out = head;
        WM_ARENA_UNPOISON(out, rounded);
        head = *static_cast<void**>(out);
        ++stats_.freelist_hits;
        return out;
      }
    }
    return bump(rounded, align);
  }

  void deallocate(void* ptr, std::size_t size) {
    if (ptr == nullptr) return;
    const std::size_t rounded = round_up(size == 0 ? 1 : size);
    stats_.live_bytes -= rounded;
    if (rounded > kMaxRecycledBytes) {
      // Large allocations are reclaimed wholesale at reset(); poison
      // now so any dangling use faults immediately.
      WM_ARENA_POISON(ptr, rounded);
      return;
    }
    *static_cast<void**>(ptr) = freelists_[class_of(rounded)];
    freelists_[class_of(rounded)] = ptr;
    // Keep the link word readable for the pop above; poison the rest.
    WM_ARENA_POISON(static_cast<std::byte*>(ptr) + sizeof(void*),
                    rounded - sizeof(void*));
  }

  /// Drop every freelist and rewind every block. All memory handed out
  /// by this arena becomes invalid (and poisoned under ASan). Callers
  /// must have destroyed every arena-backed container first.
  void reset() {
    for (void*& head : freelists_) head = nullptr;
    for (Block& block : blocks_) {
      block.used = 0;
      WM_ARENA_POISON(block.data.get(), block.capacity);
    }
    current_ = 0;
    stats_.live_bytes = 0;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  ~Arena() {
    // Unpoison before the unique_ptrs return pages to the system so
    // the allocator's own bookkeeping writes don't trip ASan.
    for (Block& block : blocks_) {
      WM_ARENA_UNPOISON(block.data.get(), block.capacity);
      (void)block;
    }
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t round_up(std::size_t size) {
    return (size + kGranularity - 1) / kGranularity * kGranularity;
  }
  static constexpr std::size_t class_of(std::size_t rounded) {
    return rounded / kGranularity;  // rounded <= kMaxRecycledBytes
  }

  void* bump(std::size_t rounded, std::size_t align) {
    // Advance through existing blocks before chaining a new one —
    // reset() rewinds `current_` to 0 so rewound blocks are refilled
    // instead of leaking behind a back()-only cursor.
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const std::size_t aligned = (block.used + align - 1) / align * align;
      if (aligned + rounded <= block.capacity) {
        std::byte* out = block.data.get() + aligned;
        block.used = aligned + rounded;
        WM_ARENA_UNPOISON(out, rounded);
        return out;
      }
      ++current_;
    }
    Block fresh;
    fresh.capacity = rounded > block_bytes_ ? round_up(rounded) : block_bytes_;
    fresh.data = std::make_unique<std::byte[]>(fresh.capacity);
    WM_ARENA_POISON(fresh.data.get(), fresh.capacity);
    blocks_.push_back(std::move(fresh));
    current_ = blocks_.size() - 1;
    Block& block = blocks_.back();
    stats_.blocks = blocks_.size();
    stats_.reserved_bytes += block.capacity;
    std::byte* out = block.data.get();
    block.used = rounded;
    WM_ARENA_UNPOISON(out, rounded);
    return out;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  /// Index of the block bump() is currently filling.
  std::size_t current_ = 0;
  // Freelist heads indexed by size class (rounded size / granularity).
  void* freelists_[kMaxRecycledBytes / kGranularity + 1] = {};
  Stats stats_;
};

/// Standard-allocator adapter so node containers (std::map flow
/// tables, reassembly maps) draw their nodes from a shard's Arena.
/// The arena must outlive every container using the adapter.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* ptr, std::size_t n) noexcept {
    arena_->deallocate(ptr, n * sizeof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace wm::util
