// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator (payload sizes, network
// jitter, viewer choices, cohort sampling) draws from an Rng so that a
// dataset or experiment is exactly reproducible from its seed. The
// engine is xoshiro256**, seeded through splitmix64 per the reference
// recommendation; both are implemented here so the project has no
// dependence on unspecified standard-library distribution behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace wm::util {

/// splitmix64 step; used to expand a single 64-bit seed into engine state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic random engine (xoshiro256**) with the distribution
/// helpers this project needs. Cheap to copy; copies evolve independently.
class Rng {
 public:
  /// Seed the engine. The same seed always yields the same sequence on
  /// every platform.
  explicit Rng(std::uint64_t seed = 0x57484954454d4952ull);  // "WHITEMIR"

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Sample an index in [0, weights.size()) proportional to weights.
  /// Zero-weight entries are never chosen; at least one weight must be
  /// positive.
  std::size_t categorical(std::span<const double> weights);

  /// Normal sample rounded and clamped into [lo, hi]; models "a size
  /// that is nominally N bytes, give or take".
  std::int64_t clamped_normal_int(double mean, double stddev, std::int64_t lo,
                                  std::int64_t hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Derive an independent child generator; used to give each subsystem
  /// (sizes, timing, choices) its own stream so adding draws in one does
  /// not perturb the others.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wm::util
