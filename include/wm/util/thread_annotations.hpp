// Clang Thread Safety Analysis vocabulary + annotated lock primitives.
//
// The repo's locking contracts — which mutex guards which member, which
// functions must (or must not) be called with a lock held — were prose
// in header comments (events.hpp, fleet.hpp, DESIGN.md §3.1/§3.7).
// This header turns them into compiler-checked attributes: annotate a
// member with WM_GUARDED_BY(mutex_) and every unlocked access becomes a
// -Wthread-safety-analysis diagnostic, on every TU, on every PR —
// including interleavings the TSan test matrix never executes.
//
// The macros expand to Clang `capability` attributes under Clang and to
// nothing elsewhere, so GCC builds are unaffected. Enforcement is the
// WM_THREAD_SAFETY CMake option (clang-only, warn-and-skip on GCC),
// which turns the analysis on with -Werror=thread-safety-analysis; the
// CI `thread-safety` job keeps it load-bearing.
//
// std::mutex is opaque to the analysis — it has no capability
// attributes, so locks taken through it are invisible. wm::util::Mutex
// wraps it with annotated lock()/unlock()/try_lock(), and
// LockGuard/UniqueLock are the annotated RAII shapes (UniqueLock is
// BasicLockable, so std::condition_variable_any can drop and reacquire
// it across a wait). The `guarded` wm_lint rule bans raw std::mutex in
// src/ and include/ so new locks cannot dodge the analysis.
//
// Vocabulary (all no-ops outside Clang):
//   WM_CAPABILITY(name)      type declares a capability ("mutex")
//   WM_SCOPED_CAPABILITY     RAII type that acquires in ctor, releases
//                            in dtor (LockGuard)
//   WM_GUARDED_BY(m)         data member readable/writable only with m
//                            held
//   WM_PT_GUARDED_BY(m)      pointee (not the pointer) guarded by m
//   WM_REQUIRES(m...)        function must be called with m held
//   WM_ACQUIRE(m...)         function acquires m and does not release
//   WM_RELEASE(m...)         function releases m
//   WM_TRY_ACQUIRE(ok, m...) function acquires m iff it returns `ok`
//   WM_EXCLUDES(m...)        function must NOT be called with m held
//                            (non-reentrancy, lock-ordering)
//   WM_ASSERT_CAPABILITY(m)  runtime assertion that m is held
//   WM_RETURN_CAPABILITY(m)  function returns a reference to m
//   WM_NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort)
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define WM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WM_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define WM_CAPABILITY(x) WM_THREAD_ANNOTATION_(capability(x))
#define WM_SCOPED_CAPABILITY WM_THREAD_ANNOTATION_(scoped_lockable)
#define WM_GUARDED_BY(x) WM_THREAD_ANNOTATION_(guarded_by(x))
#define WM_PT_GUARDED_BY(x) WM_THREAD_ANNOTATION_(pt_guarded_by(x))
#define WM_ACQUIRED_BEFORE(...) \
  WM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define WM_ACQUIRED_AFTER(...) \
  WM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define WM_REQUIRES(...) \
  WM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define WM_REQUIRES_SHARED(...) \
  WM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define WM_ACQUIRE(...) \
  WM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define WM_ACQUIRE_SHARED(...) \
  WM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define WM_RELEASE(...) \
  WM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define WM_RELEASE_SHARED(...) \
  WM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define WM_TRY_ACQUIRE(...) \
  WM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define WM_EXCLUDES(...) WM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define WM_ASSERT_CAPABILITY(x) WM_THREAD_ANNOTATION_(assert_capability(x))
#define WM_RETURN_CAPABILITY(x) WM_THREAD_ANNOTATION_(lock_returned(x))
#define WM_NO_THREAD_SAFETY_ANALYSIS \
  WM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace wm::util {

/// std::mutex with the capability attributes -Wthread-safety needs to
/// see acquire/release. Same cost, same semantics; not recursive.
class WM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WM_ACQUIRE() { native_.lock(); }
  void unlock() WM_RELEASE() { native_.unlock(); }
  [[nodiscard]] bool try_lock() WM_TRY_ACQUIRE(true) {
    return native_.try_lock();
  }

 private:
  // wm-lint: allow(guarded): the wrapper itself — the one blessed raw
  // std::mutex in the tree; everything else goes through this class.
  std::mutex native_;
};

/// Annotated std::lock_guard shape: acquires for exactly one scope.
class WM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) WM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() WM_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Annotated lock handle that is itself BasicLockable, so
/// std::condition_variable_any can release and reacquire it across a
/// wait. From the analysis' point of view the capability stays held
/// for the whole scope — exactly the invariant a condvar wait
/// preserves at its boundaries.
class WM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) WM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~UniqueLock() WM_RELEASE() { mutex_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// BasicLockable surface for condition_variable_any only; callers
  /// never re-lock by hand. Reacquiring a capability the analysis
  /// already considers held would be an error, so these members are
  /// opted out — the condvar's internal use is invisible to the
  /// analysis anyway (system header).
  void lock() WM_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() WM_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace wm::util
