// Leveled logging to stderr with a process-wide threshold. Kept simple
// on purpose: the library's hot paths never log, so there is no need
// for asynchronous sinks.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace wm::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set / get the process-wide minimum level (default: kWarn, so library
/// use is quiet unless the application opts in).
void set_log_level(LogLevel level);
LogLevel log_level();

std::string_view to_string(LogLevel level);

namespace detail {
void emit_log(LogLevel level, std::string_view message);
}

/// Stream-style log statement builder:
///   WM_LOG(Info) << "dataset written: " << path;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { detail::emit_log(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace wm::util

#define WM_LOG(severity)                                                    \
  if (::wm::util::log_level() <= ::wm::util::LogLevel::k##severity)         \
  ::wm::util::LogStatement(::wm::util::LogLevel::k##severity)
