// Allocation-recycling pools for the ingestion hot path.
//
// ObjectPool<T> retains drained objects (byte slabs, observation
// vectors, packet batches) and hands them back on the next acquire, so
// a steady-state pipeline performs zero heap allocation per packet:
// the first lap of a workload pays the mallocs, every later lap reuses
// the same capacity. Leases are RAII — dropping one returns the object
// (its capacity intact) to the pool. The pool is mutex-protected:
// acquisition happens per batch / per record, orders of magnitude
// rarer than per packet, so a lock here never sits on the hot path.
//
// Observability: attach obs counters to see hits (recycled), misses
// (fresh construction) and high_water (peak simultaneously-leased
// objects — the counter monotonically tracks the running maximum).
//
// BufferPool is the byte-slab specialisation: fixed-size util::Bytes
// slabs for paths that must own bytes (capture-record staging, replay
// rewrites); acquired slabs arrive cleared with slab_size capacity.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "wm/obs/metrics.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/thread_annotations.hpp"

namespace wm::util {

/// Null-safe counter handles a pool reports through. All three are
/// optional; semantics: hits + misses == acquires, and high_water's
/// value equals the peak number of simultaneously leased objects.
struct PoolMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* high_water = nullptr;
};

template <typename T>
class ObjectPool {
 public:
  /// Retain at most `max_retained` idle objects; beyond that, released
  /// objects are destroyed (bounds pool memory after a burst).
  explicit ObjectPool(std::size_t max_retained = 64)
      : max_retained_(max_retained) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(ObjectPool* pool, T object)
        : pool_(pool), object_(std::move(object)), live_(true) {}
    ~Lease() { release(); }

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)),
          live_(other.live_) {
      other.live_ = false;
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        object_ = std::move(other.object_);
        live_ = other.live_;
        other.live_ = false;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] T& operator*() noexcept { return object_; }
    [[nodiscard]] T* operator->() noexcept { return &object_; }
    [[nodiscard]] T& get() noexcept { return object_; }
    explicit operator bool() const noexcept { return live_; }

    /// Hand the object back early (no-op on an empty lease).
    void release() {
      if (live_ && pool_ != nullptr) pool_->release(std::move(object_));
      live_ = false;
      pool_ = nullptr;
    }

   private:
    ObjectPool* pool_ = nullptr;
    T object_{};
    bool live_ = false;
  };

  /// A recycled object when one is retained, otherwise a fresh T.
  /// The pool must outlive every lease it issued.
  [[nodiscard]] Lease acquire() WM_EXCLUDES(mutex_) {
    T object{};
    obs::Counter* acquire_counter = nullptr;
    {
      const LockGuard lock(mutex_);
      bool recycled = false;
      if (!idle_.empty()) {
        object = std::move(idle_.back());
        idle_.pop_back();
        recycled = true;
      }
      const std::size_t outstanding = ++outstanding_;
      if (outstanding > high_water_) {
        obs::inc(metrics_.high_water, outstanding - high_water_);
        high_water_ = outstanding;
      }
      // metrics_ is guarded: read the counter pointer while still under
      // the lock (a racing set_metrics() may swap the struct), bump it
      // after unlocking — the Counter itself is atomic.
      acquire_counter = recycled ? metrics_.hits : metrics_.misses;
    }
    obs::inc(acquire_counter);
    return Lease(this, std::move(object));
  }

  void set_metrics(const PoolMetrics& metrics) WM_EXCLUDES(mutex_) {
    const LockGuard lock(mutex_);
    metrics_ = metrics;
  }

  [[nodiscard]] std::size_t idle_count() const WM_EXCLUDES(mutex_) {
    const LockGuard lock(mutex_);
    return idle_.size();
  }
  [[nodiscard]] std::size_t outstanding() const WM_EXCLUDES(mutex_) {
    const LockGuard lock(mutex_);
    return outstanding_;
  }
  [[nodiscard]] std::size_t high_water() const WM_EXCLUDES(mutex_) {
    const LockGuard lock(mutex_);
    return high_water_;
  }

 private:
  friend class Lease;

  void release(T object) WM_EXCLUDES(mutex_) {
    const LockGuard lock(mutex_);
    if (outstanding_ > 0) --outstanding_;
    if (idle_.size() < max_retained_) idle_.push_back(std::move(object));
  }

  // wm-lint: allow(mutex): acquire/release are per-batch, not per-packet;
  // measured uncontended in bench/perf_ingest (shards own their pools).
  mutable Mutex mutex_;
  std::vector<T> idle_ WM_GUARDED_BY(mutex_);
  std::size_t max_retained_;
  std::size_t outstanding_ WM_GUARDED_BY(mutex_) = 0;
  std::size_t high_water_ WM_GUARDED_BY(mutex_) = 0;
  PoolMetrics metrics_ WM_GUARDED_BY(mutex_){};
};

/// Fixed-size byte-slab pool: every acquired slab comes back cleared
/// with at least slab_size bytes of capacity already reserved.
class BufferPool {
 public:
  explicit BufferPool(std::size_t slab_size = 64 * 1024,
                      std::size_t max_retained = 64);

  /// RAII slab handle; the buffer returns to the pool on destruction.
  using Slab = ObjectPool<Bytes>::Lease;

  [[nodiscard]] Slab acquire();

  void set_metrics(const PoolMetrics& metrics) { pool_.set_metrics(metrics); }
  [[nodiscard]] std::size_t slab_size() const noexcept { return slab_size_; }
  [[nodiscard]] std::size_t idle_count() const { return pool_.idle_count(); }
  [[nodiscard]] std::size_t outstanding() const { return pool_.outstanding(); }
  [[nodiscard]] std::size_t high_water() const { return pool_.high_water(); }

 private:
  ObjectPool<Bytes> pool_;
  std::size_t slab_size_;
};

}  // namespace wm::util
