// Descriptive statistics used by the feature pipeline, the classifiers
// and the benchmark harnesses: streaming mean/variance, quantiles,
// integer-valued histograms with arbitrary bin edges, and a labelled
// confusion matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wm::util {

/// Welford streaming mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolation quantile of a sample (sorts a copy).
/// q in [0,1]; empty input returns nullopt.
std::optional<double> quantile(std::vector<double> values, double q);

/// Frequency count over exact integer values (e.g. record lengths).
/// Suited to the paper's Fig. 2, whose bins are ranges of exact SSL
/// record lengths.
class IntHistogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count_of(std::int64_t value) const;
  /// Total weight of values in the closed range [lo, hi].
  [[nodiscard]] std::uint64_t count_in(std::int64_t lo, std::int64_t hi) const;
  [[nodiscard]] std::optional<std::int64_t> min() const;
  [[nodiscard]] std::optional<std::int64_t> max() const;
  /// Most frequent value (smallest value wins ties); nullopt when empty.
  [[nodiscard]] std::optional<std::int64_t> mode() const;
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& cells() const {
    return cells_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// A half-open integer interval [lo, hi] (both inclusive, as the paper
/// reports its Fig. 2 bins: "2211-2213", "<=2188", ">=4334").
struct IntInterval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
  [[nodiscard]] bool overlaps(const IntInterval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }
  /// Render in the paper's style: "2211-2213", "2992" for singletons.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const IntInterval&) const = default;
};

/// Smallest closed interval covering all values in a histogram;
/// nullopt when the histogram is empty.
std::optional<IntInterval> covering_interval(const IntHistogram& hist);

/// Labelled confusion matrix for multi-class evaluation.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<std::string> labels);

  void add(std::size_t truth, std::size_t predicted, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t num_classes() const noexcept { return labels_.size(); }
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] std::uint64_t at(std::size_t truth, std::size_t predicted) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Overall accuracy = trace / total. Returns 1.0 for an empty matrix.
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision(std::size_t cls) const;
  [[nodiscard]] double recall(std::size_t cls) const;
  [[nodiscard]] double f1(std::size_t cls) const;

  /// Fixed-width text rendering for reports.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::uint64_t> cells_;  // row-major: truth * n + predicted
  std::uint64_t total_ = 0;
};

}  // namespace wm::util
