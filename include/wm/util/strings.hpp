// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wm::util {

/// Split on a single delimiter character. Adjacent delimiters produce
/// empty fields; an empty input produces one empty field (CSV-style).
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// Join string pieces with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point percentage rendering: format_percent(0.9634) == "96.3%".
std::string format_percent(double fraction, int decimals = 1);

/// Pad or truncate to an exact column width (left-aligned).
std::string pad_right(std::string_view text, std::size_t width);
std::string pad_left(std::string_view text, std::size_t width);

}  // namespace wm::util
