// Minimal RFC-4180-style CSV reading and writing, used for dataset
// manifests, ground-truth files and benchmark output tables.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wm::util {

/// Quote a field if it contains a comma, quote or newline.
std::string csv_escape(std::string_view field);

/// Incremental CSV writer. Rows are flushed to the stream as they are
/// completed; the header (if any) must be written first.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience for mixed field types.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& add(std::string_view field);
    RowBuilder& add(std::int64_t value);
    RowBuilder& add(std::uint64_t value);
    RowBuilder& add(double value);
    void end();

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder row() { return RowBuilder(*this); }

 private:
  std::ostream& out_;
};

/// Parse CSV text into rows of fields, honouring quotes and embedded
/// newlines. The final newline is optional.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace wm::util
