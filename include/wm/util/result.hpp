// Error-code result type for fallible operations.
//
// The attack tooling historically reported capture-file failures by
// throwing std::runtime_error from deep inside the pcap readers, which
// left callers (CLI tools, the streaming engine) no way to distinguish
// "file missing" from "file corrupt" without string matching. Result<T>
// carries either the value or a typed Error, and the engine's
// PacketSource implementations propagate it instead of throwing.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace wm {

/// What went wrong, coarsely. Kept small on purpose: callers branch on
/// these, humans read Error::message.
enum class ErrorCode {
  kNone = 0,
  kNotFound,           // path does not exist / cannot be opened
  kUnsupportedFormat,  // file magic matches no supported capture format
  kMalformedCapture,   // recognized format, but a header/record is corrupt
  kIo,                 // read/write failure mid-operation
  kInvalidArgument,
};

inline std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "ok";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kUnsupportedFormat: return "unsupported-format";
    case ErrorCode::kMalformedCapture: return "malformed-capture";
    case ErrorCode::kIo: return "io-error";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
  }
  return "?";
}

/// A typed failure: machine-readable code plus human-readable context.
struct Error {
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return wm::to_string(code) + ": " + message;
  }
};

/// Either a T or an Error. Implicitly constructible from both so
/// `return value;` and `return Error{...};` both work in a function
/// returning Result<T>. The class-level [[nodiscard]] makes every
/// discarded Result-returning call a compiler warning, and tools/
/// wm_lint additionally checks the attribute and known call sites.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT

  [[nodiscard]] static Result failure(ErrorCode code, std::string message) {
    return Result(Error{code, std::move(message)});
  }

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Value access: only valid when ok().
  [[nodiscard]] T& value() & { return std::get<0>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<0>(data_); }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(data_)); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Error access: only valid when !ok().
  [[nodiscard]] const Error& error() const { return std::get<1>(data_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Success-or-Error for fallible operations with no value to hand back.
/// Same consumption contract as Result<T>: a returned Status must be
/// inspected, never silently dropped.
class [[nodiscard]] Status {
 public:
  /// Default construction is success, so `return {};` reads naturally.
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] static Status success() { return {}; }
  [[nodiscard]] static Status failure(ErrorCode code, std::string message) {
    return Status(Error{code, std::move(message)});
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Error access: only valid when !ok().
  [[nodiscard]] const Error& error() const { return *error_; }

 private:
  std::optional<Error> error_;
};

}  // namespace wm
