// The attribute space of the IITM-Bandersnatch dataset (Table I):
// operational conditions (OS, platform, traffic, connection, browser —
// defined in wm/sim/profile.hpp) plus the behavioural attributes of the
// volunteer viewers (age group, gender, political alignment, state of
// mind).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wm/sim/profile.hpp"
#include "wm/util/rng.hpp"

namespace wm::dataset {

enum class AgeGroup : std::uint8_t { kUnder20, k20To25, k25To30, kOver30 };
enum class Gender : std::uint8_t { kMale, kFemale, kUndisclosed };
enum class PoliticalAlignment : std::uint8_t {
  kLiberal,
  kCentrist,
  kCommunist,
  kUndisclosed,
};
enum class StateOfMind : std::uint8_t { kHappy, kStressed, kSad, kUndisclosed };

std::string to_string(AgeGroup value);
std::string to_string(Gender value);
std::string to_string(PoliticalAlignment value);
std::string to_string(StateOfMind value);

std::optional<AgeGroup> parse_age_group(std::string_view text);
std::optional<Gender> parse_gender(std::string_view text);
std::optional<PoliticalAlignment> parse_political(std::string_view text);
std::optional<StateOfMind> parse_state_of_mind(std::string_view text);

std::optional<sim::OperatingSystem> parse_os(std::string_view text);
std::optional<sim::Platform> parse_platform(std::string_view text);
std::optional<sim::TrafficCondition> parse_traffic(std::string_view text);
std::optional<sim::ConnectionType> parse_connection(std::string_view text);
std::optional<sim::Browser> parse_browser(std::string_view text);

/// The behavioural half of a Table I row.
struct BehavioralAttributes {
  AgeGroup age = AgeGroup::k20To25;
  Gender gender = Gender::kUndisclosed;
  PoliticalAlignment political = PoliticalAlignment::kUndisclosed;
  StateOfMind mood = StateOfMind::kUndisclosed;

  auto operator<=>(const BehavioralAttributes&) const = default;
};

/// One dataset volunteer: id + both attribute groups.
struct Viewer {
  std::uint32_t id = 0;
  sim::OperationalConditions operational;
  BehavioralAttributes behavioral;
};

/// Sample a viewer population resembling a university volunteer pool
/// (skews young, mixed OS/browser, all Table I values represented).
std::vector<Viewer> sample_cohort(std::size_t count, util::Rng& rng);

}  // namespace wm::dataset
