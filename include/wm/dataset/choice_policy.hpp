// Behavioural choice model: maps a viewer's behavioural attributes to
// the choices they make at each question.
//
// The paper collects behavioural attributes precisely because choices
// correlate with them ("their affinity to violence and political
// inclination"). This model encodes plausible couplings — e.g. stressed
// viewers favour aggressive options, older viewers favour defaults —
// so that the synthetic dataset exhibits the attribute/choice structure
// behavioural researchers would probe. The attack itself never uses
// this model; it only supplies ground truth variability.
#pragma once

#include <vector>

#include "wm/dataset/attributes.hpp"
#include "wm/story/graph.hpp"
#include "wm/util/rng.hpp"

namespace wm::dataset {

/// Probability that a given viewer picks the DEFAULT option at a given
/// question (identified by its 1-based appearance order). Clamped to
/// [0.05, 0.95] so every path stays reachable.
double default_probability(const BehavioralAttributes& behavioral,
                           std::size_t question_index);

/// Draw a full choice sequence for a viewer: one choice per potential
/// question (sized to the graph's maximum question count, so traversal
/// never runs out).
std::vector<story::Choice> draw_choices(const story::StoryGraph& graph,
                                        const BehavioralAttributes& behavioral,
                                        util::Rng& rng);

}  // namespace wm::dataset
