// IITM-Bandersnatch dataset construction and persistence.
//
// A data point is {encrypted trace, ground-truth choices} for one
// viewer (§IV). The builder samples a cohort, draws each viewer's
// choices from the behavioural policy, simulates their session under
// their operational conditions, and either hands the data point to a
// sink (in-memory pipelines) or persists it:
//
//   <dir>/manifest.json        dataset metadata + per-viewer index
//   <dir>/viewers.csv          Table I attribute matrix
//   <dir>/traces/viewer_NNN.pcap
//   <dir>/truth/viewer_NNN.json
#pragma once

#include <filesystem>
#include <functional>
#include <vector>

#include "wm/dataset/attributes.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/graph.hpp"

namespace wm::dataset {

/// On-disk trace format for persisted datasets.
enum class CaptureFormat { kPcap, kPcapng };

struct DatasetConfig {
  std::size_t viewer_count = 100;
  std::uint64_t seed = 2019;
  sim::StreamingConfig streaming;
  sim::PacketizeConfig packetize;
  CaptureFormat capture_format = CaptureFormat::kPcap;
};

/// One {trace, ground truth} pair plus who produced it.
struct DataPoint {
  Viewer viewer;
  sim::SessionResult session;
};

/// Generate the dataset, invoking `sink` once per viewer in id order.
/// Memory stays bounded by one session regardless of cohort size.
void generate_dataset(const story::StoryGraph& graph, const DatasetConfig& config,
                      const std::function<void(DataPoint&&)>& sink);

/// Convenience: materialize every data point (only for small cohorts).
std::vector<DataPoint> generate_dataset(const story::StoryGraph& graph,
                                        const DatasetConfig& config);

/// Serialize ground truth to/from JSON.
std::string ground_truth_to_json(const Viewer& viewer,
                                 const sim::SessionGroundTruth& truth,
                                 const story::StoryGraph& graph);
sim::SessionGroundTruth ground_truth_from_json(const std::string& text);

/// Persist a full dataset to `dir` (created if needed).
/// Returns the number of data points written.
std::size_t write_dataset(const std::filesystem::path& dir,
                          const story::StoryGraph& graph,
                          const DatasetConfig& config);

/// Index entry from a persisted dataset.
struct DatasetIndexEntry {
  Viewer viewer;
  std::filesystem::path trace_file;
  std::filesystem::path truth_file;
};

/// Read the manifest of a persisted dataset.
[[nodiscard]] std::vector<DatasetIndexEntry> read_manifest(const std::filesystem::path& dir);

/// Load the ground truth of one persisted data point.
[[nodiscard]] sim::SessionGroundTruth read_ground_truth(const std::filesystem::path& truth_file);

}  // namespace wm::dataset
