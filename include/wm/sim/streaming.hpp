// Interactive-streaming session engine.
//
// Reproduces the streaming process of §III / Fig. 1 of the paper as an
// application-level event trace:
//  * chunks of the current segment stream until the viewer reaches a
//    choice question;
//  * when question Qi appears on screen the browser uploads a type-1
//    JSON state file;
//  * during the ten-second choice window the player PREFETCHES chunks
//    of the default branch Si;
//  * choosing the default keeps streaming uninterrupted; choosing the
//    non-default Si' uploads a type-2 JSON, abandons the prefetched
//    chunks and requests Si' instead;
//  * telemetry / log messages ride alongside as background client
//    traffic ("others" in Fig. 2).
//
// The engine produces timestamped application events; the packetizer
// (packetize.hpp) lowers them onto TLS/TCP/IP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wm/sim/profile.hpp"
#include "wm/story/graph.hpp"
#include "wm/util/rng.hpp"
#include "wm/util/time.hpp"

namespace wm::sim {

/// Which logical connection an event belongs to.
enum class AppFlow : std::uint8_t {
  kCdn,  // nflxvideo.net — chunk requests + media chunks
  kApi,  // netflix.com API — state JSONs, telemetry, logs
};

std::string to_string(AppFlow flow);

/// One application-level event.
struct AppEvent {
  util::SimTime time;
  AppFlow flow = AppFlow::kCdn;
  bool from_client = true;
  /// Client messages carry a kind; server chunks use kChunkRequest as a
  /// placeholder and are distinguished by from_client == false.
  ClientMessageKind client_kind = ClientMessageKind::kChunkRequest;
  std::size_t plaintext_size = 0;

  /// The actual application bytes for client messages rendered as real
  /// protocol content: HTTP range GETs for chunk requests, HTTP POSTs
  /// carrying the state JSON for type-1/type-2 uploads. When non-empty,
  /// plaintext_size equals its length.
  std::string state_json;

  // --- Annotations (ground truth / Fig. 1 rendering; the attacker
  // never sees these) -------------------------------------------------
  std::string note;
  std::size_t question_index = 0;  // 1-based; 0 = not a question event
  story::SegmentId segment = story::kInvalidSegment;
  bool is_prefetch = false;        // chunk fetched during a choice window
  bool prefetch_aborted = false;   // prefetched for Si but viewer chose Si'
};

/// Ground truth for one question encountered during a session.
struct QuestionOutcome {
  std::size_t index = 0;  // 1-based order of appearance
  story::SegmentId segment = story::kInvalidSegment;
  std::string prompt;
  story::Choice choice = story::Choice::kDefault;
  util::SimTime question_time;  // when the type-1 JSON was sent
  util::SimTime decision_time;  // when the viewer committed
};

/// Ground truth for a whole session.
struct SessionGroundTruth {
  std::vector<QuestionOutcome> questions;
  std::vector<story::SegmentId> path;
  bool reached_ending = false;

  [[nodiscard]] std::vector<story::Choice> choices() const;
};

/// Streaming parameters. The defaults give a faithful but *compressed*
/// session (short chunks, modest bitrate) so that benches over many
/// sessions stay tractable; time_scale < 1 shrinks script durations
/// while preserving event structure and ordering.
struct StreamingConfig {
  double chunk_seconds = 2.0;       // media chunk playback duration
  std::uint32_t bitrate_kbps = 800; // media bitrate (chunk size driver)
  double time_scale = 0.08;         // script duration compression
  std::size_t startup_buffer_chunks = 3;
  /// Choice window length (the film uses 10 s; scaled by time_scale).
  double choice_window_seconds = 10.0;
  /// Decision delay within the window: uniform in
  /// [min_fraction, max_fraction] of the window.
  double decision_min_fraction = 0.15;
  double decision_max_fraction = 0.95;
  /// Telemetry cadence multiplier (1.0 = profile's period, scaled).
  double telemetry_rate_multiplier = 1.0;
  /// Adaptive bitrate: when enabled the player switches between the
  /// ladder's rungs as simulated network load varies, as a real ABR
  /// player would. Chunk sizes then vary several-fold within one
  /// session — yet the client-side side-channel is untouched, which is
  /// the paper's §II point sharpened.
  bool adaptive_bitrate = false;
  std::vector<std::uint32_t> bitrate_ladder_kbps = {400, 800, 1600, 3000};

  /// Timing defence (our extension to §VI): the player holds EVERY
  /// decision upload until the window closes and sends a type-2-shaped
  /// upload there for default picks too (a decoy), so neither the
  /// upload's presence nor its timing distinguishes the choice. Costs
  /// latency (non-default switches wait for the window) and decoy
  /// bytes.
  bool uniform_decision_uploads = false;
};

/// Result of simulating one viewing session at the application level.
struct AppTrace {
  std::vector<AppEvent> events;  // sorted by time
  SessionGroundTruth truth;
  util::Duration session_length;
};

/// Simulate the application-level trace of one session: the viewer
/// walks `graph` making `choices` (one per encountered question; if
/// exhausted, the session ends as if the viewer stopped).
AppTrace simulate_app_trace(const story::StoryGraph& graph,
                            const std::vector<story::Choice>& choices,
                            const TrafficProfile& profile,
                            const StreamingConfig& config, util::Rng& rng);

}  // namespace wm::sim
