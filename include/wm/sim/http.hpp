// HTTP/1.1 message modeling.
//
// The player's client messages are HTTP requests: media chunks are
// range GETs against the CDN, state uploads are POSTs carrying the
// JSON documents. This module renders those messages as real bytes —
// request line, realistic header block, body — sized exactly to the
// traffic profile's target, so the plaintext TLS hands to the cipher
// is an actual protocol message rather than a length-only abstraction.
// (On the wire only the sealed length is observable either way; this
// keeps the simulation honest and gives tests real content to check.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "wm/util/rng.hpp"

namespace wm::sim {

/// A parsed/printable HTTP/1.1 request.
struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  /// Headers in emission order (the map is ordered; real stacks emit a
  /// stable order too, which is part of why upload sizes are stable).
  std::map<std::string, std::string> headers;
  std::string body;

  /// Serialize to wire bytes (request line + headers + CRLF + body).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::size_t serialized_size() const;
};

/// Build a CDN media-chunk range GET. `target_size` pads the request
/// (via an opaque cookie-like header) up to the profile-sampled size
/// when attainable.
HttpRequest make_chunk_request(std::string_view host, std::string_view segment_name,
                               std::size_t chunk_index, std::uint64_t byte_offset,
                               std::size_t chunk_bytes, std::size_t target_size,
                               util::Rng& rng);

/// Wrap a state JSON document in its POST envelope such that the TOTAL
/// serialized request is exactly `target_size` bytes when attainable;
/// the JSON body is whatever fits after the headers.
HttpRequest make_state_post(std::string_view host, std::string_view json_body,
                            std::size_t target_size);

/// Parse the first line + headers of a serialized request (used by
/// tests; tolerant of any body). Returns nullopt on malformed input.
std::optional<HttpRequest> parse_http_request(std::string_view text);

}  // namespace wm::sim
