// Capture-side impairments: degrade a finished capture the way a real
// monitoring point degrades one — dropped frames (tap overload),
// snaplen truncation, heavier reordering. The paper's eavesdropper is
// assumed lossless; these utilities quantify how much of the attack
// survives when that assumption breaks (robustness ablation).
#pragma once

#include <vector>

#include "wm/net/packet.hpp"
#include "wm/util/rng.hpp"

namespace wm::sim {

/// Drop each packet independently with probability `loss_rate`.
/// NOTE: this models loss at the CAPTURE point (the endpoints still
/// exchanged the data), so no retransmission fills the gap — gaps are
/// permanent for the observer.
std::vector<net::Packet> drop_packets(const std::vector<net::Packet>& packets,
                                      double loss_rate, util::Rng& rng);

/// Drop each payload-carrying TCP segment independently with
/// probability `loss_rate` — and every later packet re-sending any of
/// the condemned sequence bytes, so retransmissions share the fate of
/// the original. This is the strict un-retransmitted-loss model the
/// reassembler's gap handling is specified against: the condemned
/// stream bytes never reach the observer by any path. Non-TCP packets
/// and bare ACK/control segments always survive.
std::vector<net::Packet> drop_segments(const std::vector<net::Packet>& packets,
                                       double loss_rate, util::Rng& rng);

/// Truncate every frame to `snaplen` bytes (preserving
/// original_length), as `tcpdump -s <snaplen>` would.
std::vector<net::Packet> truncate_snaplen(const std::vector<net::Packet>& packets,
                                          std::size_t snaplen);

/// Perturb timestamps with N(0, jitter_seconds) and re-sort: the
/// capture order scrambles locally while global order survives.
std::vector<net::Packet> jitter_order(const std::vector<net::Packet>& packets,
                                      double jitter_seconds, util::Rng& rng);

}  // namespace wm::sim
