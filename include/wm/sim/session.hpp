// Session orchestrator: one call simulates a complete viewing session
// — story traversal, application events, TLS/TCP lowering — and returns
// the capture plus the ground truth the attack will be scored against.
#pragma once

#include "wm/sim/packetize.hpp"
#include "wm/sim/profile.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/story/graph.hpp"

namespace wm::sim {

struct SessionConfig {
  OperationalConditions conditions;
  StreamingConfig streaming;
  PacketizeConfig packetize;
  std::uint64_t seed = 1;
};

struct SessionResult {
  SessionCapture capture;
  SessionGroundTruth truth;
  TrafficProfile profile;
  util::Duration session_length;
};

/// Simulate one session of `graph` in which the viewer makes `choices`.
SessionResult simulate_session(const story::StoryGraph& graph,
                               const std::vector<story::Choice>& choices,
                               const SessionConfig& config);

}  // namespace wm::sim
