// Operational conditions and the traffic profiles they induce.
//
// Table I of the paper lists the operational attributes of the
// IITM-Bandersnatch dataset: operating system, platform, traffic
// condition (time of day), connection type, and browser. The paper's
// Fig. 2 shows that the SSL record lengths of the two state-JSON types
// depend on the (OS, browser) combination — the JSON content embeds
// platform/user-agent details — while remaining in narrow, disjoint
// bands within any one combination.
//
// TrafficProfile encodes that coupling: from the operational attributes
// it derives the plaintext-size distributions of type-1 / type-2 state
// uploads, the distributions of all other client messages, and the TLS
// stack parameters. Calibration: for (Desktop, Firefox, Ethernet,
// Ubuntu) and (..., Windows) the sealed record lengths reproduce the
// bands of Fig. 2 (2211-2213 / 2992-3017 and 2341-2343 / 3118-3147).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wm/tls/session.hpp"
#include "wm/util/rng.hpp"

namespace wm::sim {

enum class OperatingSystem : std::uint8_t { kWindows, kLinux, kMac };
enum class Platform : std::uint8_t { kDesktop, kLaptop };
enum class TrafficCondition : std::uint8_t { kMorning, kNoon, kNight };
enum class ConnectionType : std::uint8_t { kWired, kWireless };
enum class Browser : std::uint8_t { kChrome, kFirefox };

std::string to_string(OperatingSystem value);
std::string to_string(Platform value);
std::string to_string(TrafficCondition value);
std::string to_string(ConnectionType value);
std::string to_string(Browser value);

/// The operational half of a Table I row.
struct OperationalConditions {
  OperatingSystem os = OperatingSystem::kLinux;
  Platform platform = Platform::kDesktop;
  TrafficCondition traffic = TrafficCondition::kNoon;
  ConnectionType connection = ConnectionType::kWired;
  Browser browser = Browser::kFirefox;

  [[nodiscard]] std::string to_string() const;
  auto operator<=>(const OperationalConditions&) const = default;
};

/// All distinct operational combinations (3 OS x 2 platform x 3 traffic
/// x 2 connection x 2 browser = 72).
std::vector<OperationalConditions> all_operational_conditions();

/// Kinds of client-to-server application messages the player emits.
enum class ClientMessageKind : std::uint8_t {
  kType1Json,     // state upload when a question appears
  kType2Json,     // state upload when the non-default branch is chosen
  kChunkRequest,  // media chunk HTTP request
  kTelemetry,     // periodic playback telemetry ("others")
  kLogBatch,      // large batched event log ("others", big records)
  kDecoyUpload,   // timing-defence dummy: shaped like a type-2 JSON
};

std::string to_string(ClientMessageKind kind);

/// A discrete size distribution: base + uniform jitter in [0, spread].
struct SizeBand {
  std::size_t base = 0;
  std::size_t spread = 0;

  [[nodiscard]] std::size_t sample(util::Rng& rng) const {
    return base + static_cast<std::size_t>(rng.next_below(spread + 1));
  }
  [[nodiscard]] std::size_t max() const { return base + spread; }
};

/// Traffic shape of one operational combination.
struct TrafficProfile {
  OperationalConditions conditions;

  /// Plaintext sizes of the two state-JSON uploads. Narrow bands: the
  /// JSON schema is fixed; only ids/counters vary.
  SizeBand type1_plaintext;
  SizeBand type2_plaintext;

  /// Other client messages.
  SizeBand chunk_request_plaintext;  // a few hundred bytes
  SizeBand telemetry_plaintext;      // mid-size periodic reports
  SizeBand log_batch_plaintext;      // large, infrequent

  /// Mean seconds between telemetry reports during playback.
  double telemetry_period_seconds = 15.0;
  /// Probability that a telemetry slot escalates to a log batch.
  double log_batch_probability = 0.12;

  /// TLS parameters of the player's connection.
  tls::TlsSessionConfig tls;

  /// TCP maximum segment size on this platform/connection.
  std::uint16_t mss = 1448;

  /// Sample the plaintext size of a client message kind.
  [[nodiscard]] std::size_t sample_plaintext(ClientMessageKind kind,
                                             util::Rng& rng) const;

  /// Sealed (on-wire) record length band for a message kind — what the
  /// eavesdropper will observe. Useful for tests and reports.
  [[nodiscard]] std::pair<std::size_t, std::size_t> sealed_band(
      ClientMessageKind kind) const;
};

/// Derive the traffic profile for a set of operational conditions.
/// Deterministic: the same conditions always map to the same profile.
TrafficProfile make_traffic_profile(const OperationalConditions& conditions);

}  // namespace wm::sim
