// Lowers an application event trace onto the wire: TLS records via
// TlsSession, TCP segments via TcpConnectionBuilder, network timing via
// NetworkModel, optional background cross-traffic — producing the
// packet capture an on-path eavesdropper would record.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/net/packet_builder.hpp"
#include "wm/sim/netmodel.hpp"
#include "wm/sim/profile.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/util/rng.hpp"

namespace wm::sim {

/// Countermeasure hook: map a client message (kind, plaintext size) to
/// the plaintext sizes actually handed to TLS. Identity = one element,
/// unchanged. Splitting returns several; padding returns one larger;
/// compression returns one smaller.
using ClientPayloadTransform =
    std::function<std::vector<std::size_t>(ClientMessageKind, std::size_t)>;

struct PacketizeConfig {
  net::Ipv4Address client_ip = net::Ipv4Address(10, 0, 0, 23);
  net::Ipv4Address cdn_ip = net::Ipv4Address(198, 45, 48, 10);
  net::Ipv4Address api_ip = net::Ipv4Address(52, 89, 124, 203);
  std::uint16_t cdn_client_port = 51342;
  std::uint16_t api_client_port = 51343;
  bool include_cross_traffic = true;
  /// Std-dev of per-packet timestamp perturbation on server data
  /// packets; produces mild capture reordering. 0 disables.
  double reorder_jitter_ms = 0.2;
  /// Optional countermeasure transform applied to API-flow client
  /// messages (state JSONs, telemetry, logs).
  ClientPayloadTransform client_transform;
  /// TLS 1.3 record-padding quantum for the API connection (0 = off).
  /// Only effective when the profile negotiates a TLS 1.3 suite: the
  /// stack pads TLSInnerPlaintext to a multiple of this many bytes —
  /// RFC 8446's built-in length countermeasure, applied end to end.
  std::size_t api_tls13_pad_to = 0;
};

/// A finished capture plus the metadata tests/benches need.
struct SessionCapture {
  std::vector<net::Packet> packets;  // sorted by timestamp
  net::Ipv4Address client_ip;
  net::Ipv4Address cdn_ip;
  net::Ipv4Address api_ip;
  std::string cdn_sni;
  std::string api_sni;
  std::size_t cross_traffic_flows = 0;
  std::size_t retransmitted_segments = 0;
};

/// Render an application trace into a packet capture.
SessionCapture packetize(const AppTrace& trace, const TrafficProfile& profile,
                         const PacketizeConfig& config, util::Rng& rng);

}  // namespace wm::sim
