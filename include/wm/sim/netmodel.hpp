// Network-condition model: latency, jitter, loss and bandwidth as a
// function of connection type and time-of-day load (Table I's
// "Traffic Conditions" attribute), plus background cross-traffic
// generation so captures contain more than the Netflix flow.
#pragma once

#include <cstdint>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/sim/profile.hpp"
#include "wm/util/rng.hpp"
#include "wm/util/time.hpp"

namespace wm::sim {

/// Stochastic path model between the viewer and the CDN edge.
class NetworkModel {
 public:
  struct Params {
    util::Duration base_rtt = util::Duration::millis(18);
    util::Duration jitter_stddev = util::Duration::millis(2);
    double loss_rate = 0.0005;          // per-segment retransmit probability
    double bandwidth_mbps = 100.0;      // access-link bandwidth
    double load_factor = 1.0;           // >1 under congestion
  };

  /// Derive parameters from the operational conditions: wireless adds
  /// latency/jitter/loss; morning/night shift the load factor.
  static Params params_for(const OperationalConditions& conditions);

  NetworkModel(Params params, util::Rng rng);

  [[nodiscard]] const Params& params() const { return params_; }

  /// One-way delay sample for a packet (half-RTT + jitter, scaled by
  /// load). Never negative.
  util::Duration sample_one_way_delay();

  /// Whether a segment is "lost" (and will appear as a retransmission
  /// later in the capture).
  bool lose_segment();

  /// Serialization + queueing time for `bytes` at the access link.
  [[nodiscard]] util::Duration transmission_time(std::size_t bytes) const;

 private:
  Params params_;
  util::Rng rng_;
};

/// Description of one background (non-Netflix) TLS flow to blend into
/// the capture.
struct CrossTrafficFlowSpec {
  std::string sni;                 // e.g. "www.wikipedia.org"
  std::uint16_t server_port = 443;
  std::size_t request_count = 6;   // request/response pairs
  std::size_t request_size = 500;  // plaintext bytes per request
  std::size_t response_size = 40'000;
  util::Duration spacing = util::Duration::millis(700);
};

/// Generate a plausible set of background flows for the session. The
/// number of flows scales with the time-of-day load.
std::vector<CrossTrafficFlowSpec> make_cross_traffic_plan(
    TrafficCondition condition, util::Rng& rng);

}  // namespace wm::sim
