// Netflix-player state documents.
//
// The side-channel exists because the browser serializes a real JSON
// document at every checkpoint. This module builds those documents —
// type-1 (question reached) and type-2 (branch override) — with the
// player-like schema, then pads the variable "impressionData" field so
// the serialized size hits the byte target the traffic profile sampled.
// The simulator uploads these actual bytes; tests verify the documents
// parse back and carry the session state they claim to.
#pragma once

#include <cstdint>
#include <string>

#include "wm/story/graph.hpp"
#include "wm/util/json.hpp"
#include "wm/util/rng.hpp"
#include "wm/util/time.hpp"

namespace wm::sim {

/// Common identifiers of one playback session, embedded in every state
/// upload (fixed per session; their stable serialization is why the
/// bands are narrow).
struct PlaybackIdentity {
  std::uint64_t session_id = 0;
  std::uint64_t movie_id = 80988062;  // Bandersnatch's public title id
  std::string esn;                    // device identifier string
  std::string profile_guid;

  static PlaybackIdentity sample(util::Rng& rng);
};

/// Build the type-1 state JSON: "viewer has reached choice point
/// `segment_name` at `position`". Serialized (compact) size is exactly
/// `target_size` bytes when target_size is attainable (>= the base
/// document size); otherwise the unpadded document is returned.
util::JsonValue make_type1_state(const PlaybackIdentity& identity,
                                 std::size_t question_index,
                                 const std::string& segment_name,
                                 util::SimTime position,
                                 std::size_t target_size);

/// Build the type-2 state JSON: "viewer overrode the default with
/// `chosen_label`, switch to `next_segment`".
util::JsonValue make_type2_state(const PlaybackIdentity& identity,
                                 std::size_t question_index,
                                 const std::string& chosen_label,
                                 const std::string& next_segment,
                                 util::SimTime position,
                                 std::size_t target_size);

/// Compact-serialize a state document; the byte count of this string is
/// what TLS seals (and the eavesdropper measures).
std::string serialize_state(const util::JsonValue& state);

/// Exact serialized size the document would have on the wire.
std::size_t serialized_size(const util::JsonValue& state);

}  // namespace wm::sim
