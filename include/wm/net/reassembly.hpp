// TCP stream reassembly.
//
// Reconstructs the ordered byte stream of each direction of a TCP
// connection from possibly out-of-order, duplicated or overlapping
// segments. The TLS layer parses records out of these streams, so
// correctness here determines whether record lengths (the paper's
// side-channel) survive network impairments — the paper's robustness
// claim across "traffic conditions" depends on exactly this step.
//
// Loss tolerance: a hole at the head of the stream (a segment that was
// captured-dropped or never retransmitted) does not wedge delivery
// forever. Once the out-of-order buffer ahead of the hole exceeds a
// configurable reorder window (bytes or segment count), the hole is
// declared dead: `expected_` skips past it and an explicit StreamGap is
// emitted in sequence with the surrounding StreamChunks. Buffer-budget
// drops and snaplen-truncated payloads take the same path — a recorded
// dead range that surfaces as a StreamGap when delivery reaches it —
// instead of silently vanishing into a drop counter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "wm/net/flow.hpp"
#include "wm/net/packet.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::net {

/// A contiguous run of reassembled bytes. `timestamp` is the capture
/// time of the segment that first carried these bytes — buffering
/// behind a reordered segment does not shift it.
///
/// Payload storage has two modes. Owned mode (`data` non-empty) is the
/// default: the chunk carries its own copy. Borrowed mode (`data`
/// empty, `borrowed` set) is produced only when the caller promised
/// stable input spans (see on_segment's `stable_payload`): the bytes
/// live in the producer's backing store (an mmap'd capture) and the
/// chunk is valid only as long as that store. Consumers that work for
/// both modes read through bytes().
struct StreamChunk {
  util::SimTime timestamp;
  std::uint64_t stream_offset = 0;  // bytes since ISN+1
  util::Bytes data;
  // wm-lint: allow(borrow): set only under the stable_payload contract —
  // the producer's backing store outlives every chunk it yields.
  util::BytesView borrowed;

  /// The chunk's payload, regardless of storage mode. Chunks are never
  /// empty, so an empty `data` means borrowed mode.
  [[nodiscard]] util::BytesView bytes() const {
    return data.empty() ? borrowed : util::BytesView(data);
  }
};

/// A run of stream bytes that will never be delivered. Emitted in
/// sequence with StreamChunks so downstream parsers know exactly where
/// the byte stream is interrupted and can resynchronize.
struct StreamGap {
  /// Why the bytes are unrecoverable.
  enum class Cause : std::uint8_t {
    kReorderWindow,  // hole aged out of the reorder window (segment loss)
    kBufferCap,      // out-of-order buffer budget exceeded
    kTruncated,      // snaplen-truncated capture: tail bytes never seen
  };
  util::SimTime timestamp;          // when the gap was declared dead
  std::uint64_t stream_offset = 0;  // first missing byte, relative to base
  std::uint64_t length = 0;         // number of missing bytes
  Cause cause = Cause::kReorderWindow;
};

/// One element of the delivered stream: either bytes or a gap, in
/// stream-offset order.
struct StreamItem {
  enum class Kind : std::uint8_t { kChunk, kGap };
  Kind kind = Kind::kChunk;
  StreamChunk chunk;  // valid when kind == kChunk
  StreamGap gap;      // valid when kind == kGap

  static StreamItem make_chunk(StreamChunk c) {
    StreamItem item;
    item.kind = Kind::kChunk;
    item.chunk = std::move(c);
    return item;
  }
  static StreamItem make_gap(StreamGap g) {
    StreamItem item;
    item.kind = Kind::kGap;
    item.gap = g;
    return item;
  }
};

/// Reassembles one direction of one TCP connection.
///
/// Handles: out-of-order arrival, duplicated segments (retransmits),
/// overlapping segments (first-arrival wins, matching common OS
/// behaviour), SYN/FIN sequence-space consumption, 32-bit sequence
/// wraparound, and permanent loss (explicit StreamGap events once a
/// hole outlives the reorder window).
class TcpStreamReassembler {
 public:
  struct Config {
    /// Maximum bytes buffered ahead of the next expected sequence
    /// number before the oldest hole is declared dead.
    std::size_t max_buffered_bytes = 8 * 1024 * 1024;
    /// Reorder window in bytes: once more than this many contiguous-
    /// ready bytes wait behind a hole, the hole is condemned. Sized
    /// well above any plausible in-flight reordering (a few bandwidth-
    /// delay products) so retransmitted segments still fill holes.
    std::size_t reorder_window_bytes = 1 * 1024 * 1024;
    /// Reorder window in segments: same condemnation trigger, counted
    /// in buffered out-of-order segments.
    std::size_t reorder_window_segments = 128;
  };

  TcpStreamReassembler() = default;
  explicit TcpStreamReassembler(Config config) : config_(config) {}

  /// Offer one segment of this direction. `sequence` is the raw TCP
  /// sequence number; `syn` marks the segment carrying the initial
  /// sequence number. `truncated_bytes` is how many payload bytes the
  /// segment carried on the wire beyond what the capture retained
  /// (snaplen truncation) — they become a dead range immediately.
  /// Chunks and gaps that became deliverable are appended to `out` in
  /// stream order.
  ///
  /// `stable_payload` is the zero-copy contract: when true, the caller
  /// promises `payload` stays valid and unchanged for the reassembler's
  /// whole lifetime (mmap'd captures, in-memory traces), so buffered
  /// out-of-order pieces hold views instead of copies and delivered
  /// chunks borrow (StreamChunk::borrowed). The delivered byte
  /// sequence, offsets, timestamps and gap events are identical either
  /// way — only payload storage differs.
  void on_segment(util::SimTime timestamp, std::uint32_t sequence, bool syn,
                  bool fin, util::BytesView payload, std::size_t truncated_bytes,
                  bool stable_payload, std::vector<StreamItem>& out);

  /// Convenience wrapper: owned-copy mode, freshly returned vector.
  std::vector<StreamItem> on_segment(util::SimTime timestamp, std::uint32_t sequence,
                                     bool syn, bool fin, util::BytesView payload,
                                     std::size_t truncated_bytes = 0);

  /// Hot-path shortcut for the overwhelmingly common case: a plain
  /// data (or pure-ACK) segment arriving exactly in order on a stream
  /// with nothing buffered and no dead ranges. The caller must have
  /// ruled out SYN/FIN/RST and truncation. On success the stream state
  /// advances exactly as on_segment + drain would (the segment is
  /// deliverable immediately, stamped with its own arrival time) and
  /// the payload's stream offset is returned — the caller hands its
  /// bytes straight to the downstream parser without the Pending-map
  /// copy or StreamItem vector. Returns nullopt when any fast-path
  /// precondition fails; the caller falls back to on_segment, which
  /// observes a state indistinguishable from the shortcut never having
  /// been tried.
  std::optional<std::uint64_t> accept_in_order(std::uint32_t sequence,
                                               std::size_t payload_size);

  /// Declare every outstanding hole dead and deliver all buffered data
  /// (end of capture, idle eviction, or RST). Leaves the stream
  /// finished. Appends to `out`.
  void flush(util::SimTime timestamp, std::vector<StreamItem>& out);
  std::vector<StreamItem> flush(util::SimTime timestamp);

  /// Total contiguous bytes delivered so far.
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_; }
  /// True once a SYN (or first segment) established the base sequence.
  [[nodiscard]] bool synchronized() const { return synchronized_; }
  /// Count of bytes discarded due to buffer-budget overflow.
  [[nodiscard]] std::uint64_t dropped_bytes() const { return dropped_; }
  /// Number of StreamGap events emitted so far.
  [[nodiscard]] std::uint64_t gaps_emitted() const { return gaps_emitted_; }
  /// Total bytes covered by emitted StreamGap events.
  [[nodiscard]] std::uint64_t gap_bytes() const { return gap_bytes_; }
  /// Bytes currently held in the out-of-order buffer. Together with
  /// pending_segments() this is the reassembler's live memory footprint,
  /// which streaming consumers watch to keep per-flow state bounded.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffered_bytes_; }
  /// Number of out-of-order segments currently held.
  [[nodiscard]] std::size_t pending_segments() const { return pending_.size(); }
  /// True if a FIN has been delivered in-order, or the stream was
  /// flushed/reset.
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  /// One buffered out-of-order piece: payload plus its first-arrival
  /// capture time, which the eventual StreamChunk is stamped with.
  /// `view` always spans the piece's bytes: into `data` in owned mode
  /// (stable under Pending moves — util::Bytes's heap buffer does not
  /// relocate on move), or into the caller's stable backing store in
  /// borrowed mode (`data` empty, stable_payload contract).
  struct Pending {
    std::uint64_t start = 0;  // absolute sequence of the first byte
    util::Bytes data;
    // wm-lint: allow(borrow): see above — points into `data` or into
    // the producer's stable backing store.
    util::BytesView view;
    util::SimTime arrived;

    [[nodiscard]] std::uint64_t end() const { return start + view.size(); }
  };
  /// A half-open byte range [begin at map key, `end`) known to be
  /// unrecoverable. Surfaces as a StreamGap when delivery reaches it;
  /// late-arriving data overlapping the range resurrects those bytes.
  struct DeadRange {
    std::uint64_t end = 0;
    StreamGap::Cause cause = StreamGap::Cause::kBufferCap;
  };

  /// Unwraps a 32-bit sequence number into 64-bit stream space near the
  /// current expected position.
  std::uint64_t unwrap(std::uint32_t sequence) const;
  void drain(util::SimTime timestamp, bool condemn_all,
             std::vector<StreamItem>& out);
  /// First pending piece whose end lies past `cursor` (the flat-vector
  /// analogue of the old map upper_bound/prev probe), or pending_.end().
  [[nodiscard]] std::vector<Pending>::iterator pending_covering(
      std::uint64_t cursor);
  /// First pending piece starting at or after `cursor`.
  [[nodiscard]] std::vector<Pending>::iterator pending_at_or_after(
      std::uint64_t cursor);
  /// Record [start, end) as unrecoverable, skipping sub-spans already
  /// buffered or delivered.
  void add_dead_range(std::uint64_t start, std::uint64_t end,
                      StreamGap::Cause cause);
  /// Remove [start, end) from the dead set: real bytes arrived.
  void resurrect(std::uint64_t start, std::uint64_t end);
  /// True when buffered data pressure says the head hole will not fill.
  [[nodiscard]] bool over_reorder_window() const;

  Config config_;
  bool synchronized_ = false;
  bool finished_ = false;
  std::uint64_t base_ = 0;       // absolute sequence of first payload byte
  std::uint64_t expected_ = 0;   // next in-order absolute sequence
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t gaps_emitted_ = 0;
  std::uint64_t gap_bytes_ = 0;
  std::uint64_t fin_at_ = 0;
  bool fin_seen_ = false;
  std::size_t buffered_bytes_ = 0;
  // Out-of-order hold, sorted by absolute start sequence. A flat
  // vector, not a map: the buffer is small (bounded by the reorder
  // window) and insertion-shift beats one node allocation per
  // out-of-order segment on the hot path.
  std::vector<Pending> pending_;
  // Unrecoverable ranges: absolute start -> {end, cause}. Stays a map —
  // dead ranges are rare (impaired captures only), never hot.
  std::map<std::uint64_t, DeadRange> dead_;
};

/// Both directions of a TCP connection, reassembled together.
class TcpConnectionReassembler {
 public:
  TcpConnectionReassembler() = default;
  explicit TcpConnectionReassembler(TcpStreamReassembler::Config config)
      : client_(config), server_(config) {}

  struct DirectedItem {
    FlowDirection direction;
    StreamItem item;
  };

  /// Feed one decoded TCP packet with its flow direction. An RST ends
  /// both directions: buffered data is flushed (holes become gaps) and
  /// both streams report finished().
  std::vector<DirectedItem> on_packet(const DecodedPacket& packet,
                                      FlowDirection direction);

  /// Same semantics as on_packet, but taking the TCP fields directly
  /// (no DecodedPacket materialization) and appending into a caller-
  /// owned scratch vector — the slab decode path's entry point.
  /// `stable_payload` forwards the zero-copy contract to the stream
  /// reassembler (see TcpStreamReassembler::on_segment).
  void on_segment(FlowDirection direction, util::SimTime timestamp,
                  std::uint32_t sequence, bool syn, bool fin, bool rst,
                  util::BytesView payload, std::size_t truncated_bytes,
                  std::vector<DirectedItem>& out, bool stable_payload = false);

  /// Mutable access to one direction's stream, for the in-order fast
  /// path (TcpStreamReassembler::accept_in_order). Callers must check
  /// reset() first — a torn-down connection accepts nothing.
  [[nodiscard]] TcpStreamReassembler& stream(FlowDirection direction) {
    return direction == FlowDirection::kClientToServer ? client_ : server_;
  }

  /// Flush both directions (end of capture or eviction).
  std::vector<DirectedItem> flush(util::SimTime timestamp);

  [[nodiscard]] const TcpStreamReassembler& client_stream() const { return client_; }
  [[nodiscard]] const TcpStreamReassembler& server_stream() const { return server_; }
  /// Combined live out-of-order buffer footprint of both directions.
  [[nodiscard]] std::size_t buffered_bytes() const {
    return client_.buffered_bytes() + server_.buffered_bytes();
  }

  /// True once an RST tore the connection down.
  [[nodiscard]] bool reset() const { return reset_; }

 private:
  TcpStreamReassembler client_;
  TcpStreamReassembler server_;
  // Reused per call to relabel StreamItems with their direction without
  // a fresh vector per segment.
  std::vector<StreamItem> scratch_;
  bool reset_ = false;
};

}  // namespace wm::net
