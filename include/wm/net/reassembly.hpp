// TCP stream reassembly.
//
// Reconstructs the ordered byte stream of each direction of a TCP
// connection from possibly out-of-order, duplicated or overlapping
// segments. The TLS layer parses records out of these streams, so
// correctness here determines whether record lengths (the paper's
// side-channel) survive network impairments — the paper's robustness
// claim across "traffic conditions" depends on exactly this step.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "wm/net/flow.hpp"
#include "wm/net/packet.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::net {

/// A contiguous run of reassembled bytes, stamped with the capture time
/// of the segment that *completed* it (i.e., made it deliverable).
struct StreamChunk {
  util::SimTime timestamp;
  std::uint64_t stream_offset = 0;  // bytes since ISN+1
  util::Bytes data;
};

/// Reassembles one direction of one TCP connection.
///
/// Handles: out-of-order arrival, duplicated segments (retransmits),
/// overlapping segments (first-arrival wins, matching common OS
/// behaviour), SYN/FIN sequence-space consumption, and 32-bit sequence
/// wraparound. Data beyond a configurable reordering-buffer budget is
/// dropped with a gap notation rather than growing without bound.
class TcpStreamReassembler {
 public:
  struct Config {
    /// Maximum bytes buffered ahead of the next expected sequence
    /// number before the stream is declared gapped.
    std::size_t max_buffered_bytes = 8 * 1024 * 1024;
  };

  TcpStreamReassembler() = default;
  explicit TcpStreamReassembler(Config config) : config_(config) {}

  /// Offer one segment of this direction. `sequence` is the raw TCP
  /// sequence number; `syn` marks the segment carrying the initial
  /// sequence number. Returns chunks that became deliverable.
  std::vector<StreamChunk> on_segment(util::SimTime timestamp, std::uint32_t sequence,
                                      bool syn, bool fin, util::BytesView payload);

  /// Total contiguous bytes delivered so far.
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_; }
  /// True once a SYN (or first segment) established the base sequence.
  [[nodiscard]] bool synchronized() const { return synchronized_; }
  /// Count of bytes discarded due to buffer-budget overflow.
  [[nodiscard]] std::uint64_t dropped_bytes() const { return dropped_; }
  /// Bytes currently held in the out-of-order buffer. Together with
  /// pending_segments() this is the reassembler's live memory footprint,
  /// which streaming consumers watch to keep per-flow state bounded.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffered_bytes_; }
  /// Number of out-of-order segments currently held.
  [[nodiscard]] std::size_t pending_segments() const { return pending_.size(); }
  /// True if a FIN has been delivered in-order.
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  /// Unwraps a 32-bit sequence number into 64-bit stream space near the
  /// current expected position.
  std::uint64_t unwrap(std::uint32_t sequence) const;
  std::vector<StreamChunk> drain(util::SimTime timestamp);

  Config config_;
  bool synchronized_ = false;
  bool finished_ = false;
  std::uint64_t base_ = 0;       // absolute sequence of first payload byte
  std::uint64_t expected_ = 0;   // next in-order absolute sequence
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t fin_at_ = 0;
  bool fin_seen_ = false;
  std::size_t buffered_bytes_ = 0;
  // Out-of-order hold: absolute sequence -> payload bytes.
  std::map<std::uint64_t, util::Bytes> pending_;
};

/// Both directions of a TCP connection, reassembled together.
class TcpConnectionReassembler {
 public:
  TcpConnectionReassembler() = default;
  explicit TcpConnectionReassembler(TcpStreamReassembler::Config config)
      : client_(config), server_(config) {}

  struct DirectedChunk {
    FlowDirection direction;
    StreamChunk chunk;
  };

  /// Feed one decoded TCP packet with its flow direction.
  std::vector<DirectedChunk> on_packet(const DecodedPacket& packet,
                                       FlowDirection direction);

  [[nodiscard]] const TcpStreamReassembler& client_stream() const { return client_; }
  [[nodiscard]] const TcpStreamReassembler& server_stream() const { return server_; }
  /// Combined live out-of-order buffer footprint of both directions.
  [[nodiscard]] std::size_t buffered_bytes() const {
    return client_.buffered_bytes() + server_.buffered_bytes();
  }

 private:
  TcpStreamReassembler client_;
  TcpStreamReassembler server_;
};

}  // namespace wm::net
