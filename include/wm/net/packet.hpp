// Captured-packet representation and the layered decoder.
//
// A Packet is what a capture contains: a timestamp plus raw frame
// bytes. DecodedPacket is the parsed view an analyzer works with:
// Ethernet → IPv4/IPv6 → TCP/UDP, with the transport payload exposed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "wm/net/headers.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::net {

/// A raw captured frame. `data` holds the full link-layer frame as it
/// appeared on the wire; `original_length` can exceed data.size() when a
/// capture was truncated (snaplen).
struct Packet {
  util::SimTime timestamp;
  util::Bytes data;
  std::size_t original_length = 0;

  Packet() = default;
  Packet(util::SimTime t, util::Bytes bytes)
      : timestamp(t), data(std::move(bytes)), original_length(data.size()) {}
};

/// A non-owning captured frame: what the zero-copy readers yield. The
/// bytes borrow from the producer's backing store (an mmap'd capture
/// file, a reader's staging buffer, a Packet someone else owns), so a
/// PacketView is valid only until the producer's next read — consumers
/// either finish with it immediately or assign_to() an owned Packet.
struct PacketView {
  util::SimTime timestamp;
  util::BytesView data;
  std::size_t original_length = 0;

  PacketView() = default;
  PacketView(util::SimTime t, util::BytesView bytes, std::size_t original)
      : timestamp(t), data(bytes), original_length(original) {}
  explicit PacketView(const Packet& packet)
      : timestamp(packet.timestamp),
        data(packet.data),
        original_length(packet.original_length) {}

  /// Copy into `out`, reusing out.data's existing capacity (the slot-
  /// recycling idiom: steady-state ingestion never mallocs per packet).
  void assign_to(Packet& out) const {
    out.timestamp = timestamp;
    out.data.assign(data.begin(), data.end());
    out.original_length = original_length;
  }

  /// Materialize an owning copy.
  [[nodiscard]] Packet to_packet() const {
    Packet packet;
    assign_to(packet);
    return packet;
  }
};

/// Fully parsed view of one packet. Views borrow from the Packet's
/// buffer, so a DecodedPacket must not outlive the Packet it came from.
struct DecodedPacket {
  util::SimTime timestamp;
  EthernetHeader ethernet;
  /// 802.1Q VLAN id when the frame was tagged (0 otherwise).
  std::uint16_t vlan_id = 0;
  std::variant<std::monostate, Ipv4Header, Ipv6Header> ip;
  std::variant<std::monostate, TcpHeader, UdpHeader> transport;
  // wm-lint: allow(borrow): points into the Packet::data the decoder was
  // handed; a DecodedPacket never outlives its Packet (batch contract).
  util::BytesView transport_payload;
  /// Transport payload bytes the wire packet carried beyond what the
  /// capture retained (snaplen truncation). The reassembler turns these
  /// into an explicit dead range instead of a silent hole.
  std::size_t transport_payload_missing = 0;

  [[nodiscard]] bool has_ipv4() const { return std::holds_alternative<Ipv4Header>(ip); }
  [[nodiscard]] bool has_ipv6() const { return std::holds_alternative<Ipv6Header>(ip); }
  [[nodiscard]] bool has_tcp() const {
    return std::holds_alternative<TcpHeader>(transport);
  }
  [[nodiscard]] bool has_udp() const {
    return std::holds_alternative<UdpHeader>(transport);
  }
  [[nodiscard]] const Ipv4Header& ipv4() const { return std::get<Ipv4Header>(ip); }
  [[nodiscard]] const Ipv6Header& ipv6() const { return std::get<Ipv6Header>(ip); }
  [[nodiscard]] const TcpHeader& tcp() const { return std::get<TcpHeader>(transport); }
  [[nodiscard]] const UdpHeader& udp() const { return std::get<UdpHeader>(transport); }

  /// One-line human-readable summary, e.g.
  /// "t=1.250s 10.0.0.2:51234 -> 198.18.0.1:443 TCP PSH|ACK len=1380".
  [[nodiscard]] std::string summary() const;
};

/// Decode a captured frame through Ethernet/IP/transport. Returns
/// nullopt when the frame is not parseable to at least the IP layer.
std::optional<DecodedPacket> decode_packet(const Packet& packet);

// --- Slab-batched hot-path decode -----------------------------------
//
// The full parse_* chain materializes headers (MAC addresses, option
// byte vectors, header checksums) that the record-extraction hot path
// never reads. A PacketLens is the minimal per-packet decode result
// that path does read: a classification, the flow 5-tuple as offsets
// into the frame, and the TCP fields the reassembler consumes. Lenses
// store offsets, not views, so they borrow nothing and can sit in a
// reusable slab.
//
// Two producers fill lenses: decode_lens() (scalar, one packet) and
// decode_slab() (column-wise over up to 256 packets: one pass per
// protocol layer, so each layer's branch pattern stays predictable on
// homogeneous traffic). Both must classify every frame exactly like
// decode_packet() — that three-way equivalence is pinned by the
// slab differential tests and is the contract the engine's
// scalar-oracle mode checks end to end.

/// What the hot path needs to know about a frame.
enum class LensStatus : std::uint8_t {
  /// decode_packet() would return nullopt for this frame.
  kUndecodable = 0,
  /// Decodable but not TCP (UDP or another IP protocol): counted and
  /// skipped by the extractor. Only `status` is meaningful.
  kNonTcp,
  /// TCP: every lens field below is filled.
  kTcp,
};

/// Per-packet decode result, all offsets relative to the frame start.
struct PacketLens {
  LensStatus status = LensStatus::kUndecodable;
  bool is_v6 = false;
  /// Raw TCP flag bits (low byte of the offset/flags word).
  std::uint8_t tcp_flags = 0;
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  /// Offset of the source address bytes; the destination address
  /// follows at +4 (IPv4) or +16 (IPv6) — both stacks lay the
  /// addresses out adjacently.
  std::uint32_t address_offset = 0;
  std::uint32_t payload_offset = 0;
  std::uint32_t payload_length = 0;
  /// Transport payload bytes the wire carried beyond the capture
  /// (snaplen truncation) — DecodedPacket::transport_payload_missing.
  std::uint32_t truncated_bytes = 0;

  [[nodiscard]] bool syn() const { return (tcp_flags & 0x02) != 0; }
  [[nodiscard]] bool fin() const { return (tcp_flags & 0x01) != 0; }
  [[nodiscard]] bool rst() const { return (tcp_flags & 0x04) != 0; }
  [[nodiscard]] bool ack() const { return (tcp_flags & 0x10) != 0; }
};

/// A reusable batch of lenses, decoded column-wise. Holds no pointers
/// into the packets; lens[i] describes the i-th packet the caller
/// passed to decode_slab().
struct DecodedSlab {
  static constexpr std::size_t kCapacity = 256;
  std::array<PacketLens, kCapacity> lens;
  std::size_t count = 0;
};

/// Scalar reference decode of one frame into a lens. Classification
/// and every filled field match decode_packet() exactly.
void decode_lens(const Packet& packet, PacketLens& out);
void decode_lens(const PacketView& packet, PacketLens& out);

/// Column-wise slab decode: Ethernet/VLAN pass, IP pass, transport
/// pass over `count` (<= DecodedSlab::kCapacity) packets. Byte-for-
/// byte equivalent to calling decode_lens() per packet. The PacketView
/// overload decodes borrowed frames in place (the zero-copy ingest
/// path) — fields and classification are identical for the same bytes.
void decode_slab(const Packet* packets, std::size_t count, DecodedSlab& out);
void decode_slab(const PacketView* packets, std::size_t count, DecodedSlab& out);

}  // namespace wm::net
