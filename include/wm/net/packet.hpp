// Captured-packet representation and the layered decoder.
//
// A Packet is what a capture contains: a timestamp plus raw frame
// bytes. DecodedPacket is the parsed view an analyzer works with:
// Ethernet → IPv4/IPv6 → TCP/UDP, with the transport payload exposed.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "wm/net/headers.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::net {

/// A raw captured frame. `data` holds the full link-layer frame as it
/// appeared on the wire; `original_length` can exceed data.size() when a
/// capture was truncated (snaplen).
struct Packet {
  util::SimTime timestamp;
  util::Bytes data;
  std::size_t original_length = 0;

  Packet() = default;
  Packet(util::SimTime t, util::Bytes bytes)
      : timestamp(t), data(std::move(bytes)), original_length(data.size()) {}
};

/// A non-owning captured frame: what the zero-copy readers yield. The
/// bytes borrow from the producer's backing store (an mmap'd capture
/// file, a reader's staging buffer, a Packet someone else owns), so a
/// PacketView is valid only until the producer's next read — consumers
/// either finish with it immediately or assign_to() an owned Packet.
struct PacketView {
  util::SimTime timestamp;
  util::BytesView data;
  std::size_t original_length = 0;

  PacketView() = default;
  PacketView(util::SimTime t, util::BytesView bytes, std::size_t original)
      : timestamp(t), data(bytes), original_length(original) {}
  explicit PacketView(const Packet& packet)
      : timestamp(packet.timestamp),
        data(packet.data),
        original_length(packet.original_length) {}

  /// Copy into `out`, reusing out.data's existing capacity (the slot-
  /// recycling idiom: steady-state ingestion never mallocs per packet).
  void assign_to(Packet& out) const {
    out.timestamp = timestamp;
    out.data.assign(data.begin(), data.end());
    out.original_length = original_length;
  }

  /// Materialize an owning copy.
  [[nodiscard]] Packet to_packet() const {
    Packet packet;
    assign_to(packet);
    return packet;
  }
};

/// Fully parsed view of one packet. Views borrow from the Packet's
/// buffer, so a DecodedPacket must not outlive the Packet it came from.
struct DecodedPacket {
  util::SimTime timestamp;
  EthernetHeader ethernet;
  /// 802.1Q VLAN id when the frame was tagged (0 otherwise).
  std::uint16_t vlan_id = 0;
  std::variant<std::monostate, Ipv4Header, Ipv6Header> ip;
  std::variant<std::monostate, TcpHeader, UdpHeader> transport;
  // wm-lint: allow(borrow): points into the Packet::data the decoder was
  // handed; a DecodedPacket never outlives its Packet (batch contract).
  util::BytesView transport_payload;
  /// Transport payload bytes the wire packet carried beyond what the
  /// capture retained (snaplen truncation). The reassembler turns these
  /// into an explicit dead range instead of a silent hole.
  std::size_t transport_payload_missing = 0;

  [[nodiscard]] bool has_ipv4() const { return std::holds_alternative<Ipv4Header>(ip); }
  [[nodiscard]] bool has_ipv6() const { return std::holds_alternative<Ipv6Header>(ip); }
  [[nodiscard]] bool has_tcp() const {
    return std::holds_alternative<TcpHeader>(transport);
  }
  [[nodiscard]] bool has_udp() const {
    return std::holds_alternative<UdpHeader>(transport);
  }
  [[nodiscard]] const Ipv4Header& ipv4() const { return std::get<Ipv4Header>(ip); }
  [[nodiscard]] const Ipv6Header& ipv6() const { return std::get<Ipv6Header>(ip); }
  [[nodiscard]] const TcpHeader& tcp() const { return std::get<TcpHeader>(transport); }
  [[nodiscard]] const UdpHeader& udp() const { return std::get<UdpHeader>(transport); }

  /// One-line human-readable summary, e.g.
  /// "t=1.250s 10.0.0.2:51234 -> 198.18.0.1:443 TCP PSH|ACK len=1380".
  [[nodiscard]] std::string summary() const;
};

/// Decode a captured frame through Ethernet/IP/transport. Returns
/// nullopt when the frame is not parseable to at least the IP layer.
std::optional<DecodedPacket> decode_packet(const Packet& packet);

}  // namespace wm::net
