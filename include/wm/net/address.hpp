// Link-layer and network-layer address types with parsing/formatting.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wm::net {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parse "aa:bb:cc:dd:ee:ff" (also accepts '-' separators).
  static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_broadcast() const;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored in host order for arithmetic convenience;
/// serialization converts explicitly.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parse dotted-quad notation.
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_private() const;  // RFC1918
  [[nodiscard]] bool is_loopback() const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address, 16 octets in network order.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(std::array<std::uint8_t, 16> octets)
      : octets_(octets) {}

  /// Parse full or `::`-compressed textual form (no zone ids).
  static std::optional<Ipv6Address> parse(std::string_view text);

  [[nodiscard]] const std::array<std::uint8_t, 16>& octets() const { return octets_; }
  /// RFC 5952 canonical text (lowercase, longest zero run compressed).
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_loopback() const;

  auto operator<=>(const Ipv6Address&) const = default;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

}  // namespace wm::net
