// pcapng (pcap Next Generation) capture-file support, implemented from
// the IETF draft format description: Section Header Block, Interface
// Description Block (with if_tsresol), Enhanced Packet Block. Unknown
// block types are skipped, both byte orders are read, and writing
// produces nanosecond-resolution single-interface files that Wireshark
// accepts. Complements the classic-pcap module so the attack pipeline
// ingests either capture format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/packet.hpp"

namespace wm::net {

/// pcapng block type codes used by this implementation.
enum class PcapngBlockType : std::uint32_t {
  kSectionHeader = 0x0a0d0d0a,
  kInterfaceDescription = 0x00000001,
  kEnhancedPacket = 0x00000006,
  kSimplePacket = 0x00000003,
};

/// Streaming pcapng writer (single Ethernet interface, ns resolution).
class PcapngWriter {
 public:
  explicit PcapngWriter(const std::filesystem::path& path,
                        std::string application = "whitemirror");
  explicit PcapngWriter(std::ostream& out, std::string application = "whitemirror");
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  void write(const Packet& packet);
  [[nodiscard]] std::size_t packets_written() const { return packets_written_; }
  void flush();

 private:
  void write_preamble(const std::string& application);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::size_t packets_written_ = 0;
};

/// Streaming pcapng reader. Handles multiple sections and interfaces;
/// packets from non-Ethernet interfaces are skipped.
class PcapngReader {
 public:
  explicit PcapngReader(const std::filesystem::path& path);
  explicit PcapngReader(std::istream& in);
  ~PcapngReader();

  PcapngReader(const PcapngReader&) = delete;
  PcapngReader& operator=(const PcapngReader&) = delete;

  /// Next packet, or nullopt at end of file. Throws on corrupt blocks.
  std::optional<Packet> next();
  std::vector<Packet> read_all();

  [[nodiscard]] std::size_t blocks_skipped() const { return blocks_skipped_; }

 private:
  struct Interface {
    std::uint16_t link_type = 1;
    /// Ticks per second (from if_tsresol; default 1e6 per the spec).
    std::uint64_t ticks_per_second = 1'000'000;
  };

  bool read_block_header(std::uint32_t& type, std::uint32_t& length);
  void start_section(const std::vector<std::uint8_t>& body);
  void add_interface(const std::vector<std::uint8_t>& body);
  std::optional<Packet> parse_enhanced(const std::vector<std::uint8_t>& body);

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  bool byte_swapped_ = false;
  std::vector<Interface> interfaces_;
  std::size_t blocks_skipped_ = 0;
};

/// Convenience helpers.
void write_pcapng(const std::filesystem::path& path,
                  const std::vector<Packet>& packets);
std::vector<Packet> read_pcapng(const std::filesystem::path& path);

/// Sniff a capture file's format from its first bytes and read it with
/// the right reader ("pcap" magic vs pcapng SHB).
std::vector<Packet> read_any_capture(const std::filesystem::path& path);

}  // namespace wm::net
