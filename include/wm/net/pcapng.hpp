// pcapng (pcap Next Generation) capture-file support, implemented from
// the IETF draft format description: Section Header Block, Interface
// Description Block (with if_tsresol), Enhanced Packet Block. Unknown
// block types are skipped, both byte orders are read, and writing
// produces nanosecond-resolution single-interface files that Wireshark
// accepts. Complements the classic-pcap module so the attack pipeline
// ingests either capture format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/util/mmap_file.hpp"

namespace wm::net {

/// pcapng block type codes used by this implementation.
enum class PcapngBlockType : std::uint32_t {
  kSectionHeader = 0x0a0d0d0a,
  kInterfaceDescription = 0x00000001,
  kEnhancedPacket = 0x00000006,
  kSimplePacket = 0x00000003,
};

/// Streaming pcapng writer (single Ethernet interface, ns resolution).
class PcapngWriter {
 public:
  explicit PcapngWriter(const std::filesystem::path& path,
                        std::string application = "whitemirror");
  explicit PcapngWriter(std::ostream& out, std::string application = "whitemirror");
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  void write(const Packet& packet);
  [[nodiscard]] std::size_t packets_written() const { return packets_written_; }
  void flush();

 private:
  void write_preamble(const std::string& application);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::size_t packets_written_ = 0;
};

/// Streaming pcapng reader. Handles multiple sections and interfaces;
/// packets from non-Ethernet interfaces are skipped. Opening by path
/// memory-maps the file and parses blocks in place (zero-copy); the
/// istream constructor streams block-by-block through one recycled
/// staging buffer. Both paths yield byte-identical packet sequences.
class PcapngReader {
 public:
  explicit PcapngReader(const std::filesystem::path& path);
  explicit PcapngReader(std::istream& in);
  ~PcapngReader();

  PcapngReader(const PcapngReader&) = delete;
  PcapngReader& operator=(const PcapngReader&) = delete;

  /// True when blocks are parsed from a memory-mapped file.
  [[nodiscard]] bool memory_mapped() const noexcept { return map_.valid(); }

  /// Next packet, or nullopt at end of file. Throws on corrupt blocks.
  std::optional<Packet> next();

  /// Zero-copy read: the view borrows from the mapping (valid for the
  /// reader's lifetime) or, when streaming, from the staging buffer
  /// (valid until the next call). Same end/throw behaviour as next().
  std::optional<PacketView> next_view();

  [[nodiscard]] std::vector<Packet> read_all();

  [[nodiscard]] std::size_t blocks_skipped() const { return blocks_skipped_; }

 private:
  struct Interface {
    std::uint16_t link_type = 1;
    /// Ticks per second (from if_tsresol; default 1e6 per the spec).
    std::uint64_t ticks_per_second = 1'000'000;
  };

  /// Streaming path: pull the next block's body into the staging
  /// buffer. False at clean EOF.
  [[nodiscard]] bool read_block_streamed(std::uint32_t& type, util::BytesView& body);
  /// Mapped path: parse the next block header in place. False at EOF.
  [[nodiscard]] bool read_block_mapped(std::uint32_t& type, util::BytesView& body);
  void start_section(util::BytesView body);
  void add_interface(util::BytesView body);
  std::optional<PacketView> parse_enhanced(util::BytesView body);

  util::MappedFile map_;
  std::size_t map_pos_ = 0;
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  util::Bytes body_scratch_;  // streaming staging, recycled per block
  bool byte_swapped_ = false;
  std::vector<Interface> interfaces_;
  std::size_t blocks_skipped_ = 0;
};

/// Convenience helpers.
void write_pcapng(const std::filesystem::path& path,
                  const std::vector<Packet>& packets);
[[nodiscard]] std::vector<Packet> read_pcapng(const std::filesystem::path& path);

/// Sniff a capture file's format from its first bytes and read it with
/// the right reader ("pcap" magic vs pcapng SHB).
[[nodiscard]] std::vector<Packet> read_any_capture(const std::filesystem::path& path);

}  // namespace wm::net
