// Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variants.
#pragma once

#include <cstdint>

#include "wm/net/address.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {

/// One's-complement sum of 16-bit words, final complement applied.
std::uint16_t internet_checksum(util::BytesView data);

/// Incremental accumulator for checksums computed over several pieces
/// (pseudo-header + header + payload) without concatenating them.
class ChecksumAccumulator {
 public:
  void add(util::BytesView data);
  void add_u16(std::uint16_t value);
  void add_u32(std::uint32_t value);
  /// Final folded, complemented checksum.
  [[nodiscard]] std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // carries a dangling high byte between add() calls
};

/// Thin strong alias so the protocol argument can't be confused with a
/// port number at call sites.
struct IpProtocolValue {
  std::uint8_t value = 0;
};

/// TCP/UDP checksum over the IPv4 pseudo-header.
std::uint16_t transport_checksum_v4(Ipv4Address source, Ipv4Address destination,
                                    IpProtocolValue protocol,
                                    util::BytesView transport_bytes);

/// TCP/UDP checksum over the IPv6 pseudo-header.
std::uint16_t transport_checksum_v6(const Ipv6Address& source,
                                    const Ipv6Address& destination,
                                    IpProtocolValue protocol,
                                    util::BytesView transport_bytes);

}  // namespace wm::net
