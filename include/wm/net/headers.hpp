// Wire-format protocol headers: Ethernet II, IPv4, IPv6, TCP, UDP.
//
// Each header type offers `parse` (bounds-checked, returns the header
// plus payload view) and `serialize` (appends wire bytes to a writer).
// Parsers take the raw frame/packet bytes; higher layers chain them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "wm/net/address.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {

/// EtherType values this project understands.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86dd,
  kVlan = 0x8100,
};

/// IP protocol numbers this project understands.
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

std::string to_string(EtherType type);
std::string to_string(IpProtocol protocol);

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress destination;
  MacAddress source;
  std::uint16_t ether_type = 0;

  void serialize(util::ByteWriter& out) const;
};

/// Parsed header + the payload that follows it.
struct ParsedEthernet {
  EthernetHeader header;
  // wm-lint: allow(borrow): transient parse result; consumed before the
  // decoder touches the next frame, never stored (DESIGN.md s3.3).
  util::BytesView payload;
};
std::optional<ParsedEthernet> parse_ethernet(util::BytesView frame);

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t header_checksum = 0;  // filled by serialize
  Ipv4Address source;
  Ipv4Address destination;
  // Options are preserved opaquely so parse/serialize round-trips.
  util::Bytes options;

  [[nodiscard]] std::size_t header_length() const {
    return kMinSize + options.size();
  }

  /// Serializes with a freshly computed checksum; `payload_length` is
  /// used to fill total_length.
  void serialize(util::ByteWriter& out, std::size_t payload_length) const;
};

struct ParsedIpv4 {
  Ipv4Header header;
  // wm-lint: allow(borrow): transient parse result, same contract as
  // ParsedEthernet::payload.
  util::BytesView payload;
  bool checksum_valid = false;
  /// Payload bytes the header declares but the buffer does not contain
  /// (snaplen-truncated capture). Non-zero only with `allow_truncated`.
  std::size_t truncated_bytes = 0;
};
/// With `allow_truncated`, a total_length that runs past the end of the
/// buffer yields the available payload plus a truncated_bytes count
/// instead of a parse failure — used for snaplen-trimmed captures where
/// the frame is shorter than the wire packet.
std::optional<ParsedIpv4> parse_ipv4(util::BytesView packet,
                                     bool allow_truncated = false);

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address source;
  Ipv6Address destination;

  void serialize(util::ByteWriter& out, std::size_t payload_length) const;
};

struct ParsedIpv6 {
  Ipv6Header header;
  // wm-lint: allow(borrow): transient parse result, same contract as
  // ParsedEthernet::payload.
  util::BytesView payload;
  /// See ParsedIpv4::truncated_bytes.
  std::size_t truncated_bytes = 0;
};
std::optional<ParsedIpv6> parse_ipv6(util::BytesView packet,
                                     bool allow_truncated = false);

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t ack_number = 0;
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;
  bool urg = false;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;  // filled by serialize
  std::uint16_t urgent_pointer = 0;
  util::Bytes options;  // preserved opaquely, padded to 4-byte multiple

  [[nodiscard]] std::size_t header_length() const {
    return kMinSize + options.size();
  }
  [[nodiscard]] std::string flags_string() const;  // e.g. "SYN|ACK"

  /// Serializes header bytes with checksum = 0; the caller (packet
  /// builder) patches the checksum once the pseudo-header is known.
  void serialize(util::ByteWriter& out) const;
};

struct ParsedTcp {
  TcpHeader header;
  // wm-lint: allow(borrow): transient parse result, same contract as
  // ParsedEthernet::payload.
  util::BytesView payload;
};
std::optional<ParsedTcp> parse_tcp(util::BytesView segment);

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void serialize(util::ByteWriter& out, std::size_t payload_length) const;
};

struct ParsedUdp {
  UdpHeader header;
  // wm-lint: allow(borrow): transient parse result, same contract as
  // ParsedEthernet::payload.
  util::BytesView payload;
};
std::optional<ParsedUdp> parse_udp(util::BytesView datagram);

}  // namespace wm::net
