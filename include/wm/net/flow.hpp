// Flow identification: canonical 5-tuple keys, per-flow direction, and
// a flow table that groups decoded packets into bidirectional flows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/obs/metrics.hpp"

namespace wm::net {

/// Which way a packet travels within its bidirectional flow.
enum class FlowDirection : std::uint8_t {
  kClientToServer,
  kServerToClient,
};

std::string to_string(FlowDirection direction);

/// One endpoint of a flow. IPv6 addresses are supported alongside IPv4;
/// exactly one of the address fields is meaningful per key (`is_v6`).
struct Endpoint {
  bool is_v6 = false;
  Ipv4Address v4;
  Ipv6Address v6;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  auto operator<=>(const Endpoint&) const = default;
};

/// Canonical bidirectional flow key. The "client" is the endpoint that
/// was seen initiating (first packet / SYN); the key stores client and
/// server in that orientation so both directions map to the same key.
struct FlowKey {
  Endpoint client;
  Endpoint server;
  IpProtocol protocol = IpProtocol::kTcp;

  [[nodiscard]] std::string to_string() const;
  auto operator<=>(const FlowKey&) const = default;
};

/// Extract the (source, destination, protocol) endpoints of a decoded
/// packet; nullopt for non-TCP/UDP packets.
struct PacketEndpoints {
  Endpoint source;
  Endpoint destination;
  IpProtocol protocol = IpProtocol::kTcp;
};
std::optional<PacketEndpoints> packet_endpoints(const DecodedPacket& packet);

/// A packet's membership record inside a flow.
struct FlowPacket {
  std::size_t packet_index = 0;  // index into the original capture
  util::SimTime timestamp;
  FlowDirection direction = FlowDirection::kClientToServer;
  std::size_t transport_payload_size = 0;
  // TCP-only bookkeeping used by the reassembler:
  std::uint32_t sequence = 0;
  bool syn = false;
  bool fin = false;
  bool rst = false;
};

/// Aggregate statistics and membership for one bidirectional flow.
struct FlowRecord {
  FlowKey key;
  std::vector<FlowPacket> packets;
  std::uint64_t client_bytes = 0;  // transport payload bytes client->server
  std::uint64_t server_bytes = 0;
  util::SimTime first_seen;
  util::SimTime last_seen;
  bool saw_syn = false;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return client_bytes + server_bytes;
  }
  [[nodiscard]] util::Duration duration() const { return last_seen - first_seen; }
};

/// Groups a packet sequence into bidirectional flows.
///
/// Orientation rule: for TCP, the sender of the first pure SYN is the
/// client; otherwise (no SYN observed — mid-stream capture) the sender
/// of the first packet of the flow is presumed the client, unless its
/// source port is a well-known service port (< 1024) and the peer's is
/// not, in which case orientation flips.
class FlowTable {
 public:
  struct Config {
    /// Flows idle for longer than this become eligible for eviction
    /// via evict_idle(). Zero means "never" (the historical behaviour:
    /// a batch analysis over a finite capture keeps every flow).
    util::Duration idle_timeout{};
    /// Keep the per-packet membership list in each FlowRecord.
    /// Streaming consumers that only need the aggregates turn this off
    /// so per-flow memory stays constant regardless of flow length.
    bool track_packets = true;
    /// Observability hooks (wm::obs). May be null — the uninstrumented
    /// table pays one branch per event. Bumped on new-flow creation and
    /// on each idle eviction respectively.
    obs::Counter* created_counter = nullptr;
    obs::Counter* evicted_counter = nullptr;
  };

  FlowTable() = default;
  explicit FlowTable(Config config) : config_(config) {}

  /// Add one decoded packet (with its index in the capture order).
  /// Returns the flow key and direction assigned, or nullopt if the
  /// packet has no TCP/UDP transport.
  struct Assignment {
    FlowKey key;
    FlowDirection direction;
  };
  std::optional<Assignment> add(const DecodedPacket& packet, std::size_t packet_index);

  /// Drop every flow whose last activity is more than the configured
  /// idle timeout before `now`, returning the evicted keys so owners of
  /// parallel per-flow state (reassemblers, TLS parsers) can drop it
  /// too. No-op (returns empty) when the timeout is zero.
  std::vector<FlowKey> evict_idle(util::SimTime now);

  /// Drop one flow immediately (e.g. its connection was RST-torn and
  /// the owner already snapshotted the per-flow state). Returns true
  /// when the key was present. Not counted as an idle eviction.
  bool remove(const FlowKey& key);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t flows_evicted() const { return evicted_; }

  [[nodiscard]] const std::map<FlowKey, FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] const FlowRecord* find(const FlowKey& key) const;

  /// Flows sorted by total payload volume, descending. Useful for
  /// picking out the dominant (video) flow.
  [[nodiscard]] std::vector<const FlowRecord*> by_volume() const;

 private:
  Config config_;
  std::map<FlowKey, FlowRecord> flows_;
  std::uint64_t evicted_ = 0;
};

/// Direction-symmetric 64-bit hash of a raw frame's 5-tuple, parsed
/// straight from the wire bytes (Ethernet → IPv4/IPv6 → TCP/UDP)
/// without building a DecodedPacket. Both directions of a flow hash
/// identically, so a dispatcher can shard packets across workers while
/// each worker still sees every packet of the flows it owns. Returns
/// nullopt for frames with no TCP/UDP transport.
std::optional<std::uint64_t> flow_shard_hash(const Packet& packet);

/// Same hash computed straight from a raw frame span — the form the
/// zero-copy dispatch path uses, where a packet exists only as a
/// PacketView over a source's backing store.
std::optional<std::uint64_t> flow_shard_hash(util::BytesView frame);

/// Direction-symmetric 64-bit hash of an endpoint pair — the same
/// value `flow_shard_hash` computes from the raw frame, but starting
/// from already-extracted endpoints. Hot-path flow indexes key on this
/// so a lookup costs one hash + probe instead of an ordered-key
/// comparison chain; both orientations of a flow hash identically.
std::uint64_t endpoint_pair_hash(const Endpoint& a, const Endpoint& b,
                                 IpProtocol protocol);

/// 64-bit hash of the *viewer* (client) address parsed from the raw
/// frame, for partitioning packets across ContinuousMonitor shards so
/// every flow belonging to one subscriber lands on the same shard. The
/// server side is identified by the same heuristic FlowTable uses for
/// SYN-less flows: a well-known port (< 1024) on exactly one endpoint.
/// When the orientation is undecidable (both or neither endpoint on a
/// well-known port) this degrades to flow_shard_hash — flows stay
/// whole, but one viewer's flows may then land on different shards.
/// Returns nullopt for frames with no TCP/UDP transport.
std::optional<std::uint64_t> viewer_shard_hash(const Packet& packet);

}  // namespace wm::net
