// Classic libpcap capture-file reading and writing, implemented from
// the file format specification (no libpcap dependency).
//
// Supported: both byte orders, microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) magic, arbitrary snaplen, LINKTYPE_ETHERNET. This is the
// on-disk interchange format between the simulator (which writes
// captures) and the attack pipeline (which reads them), exactly as
// Wireshark/tcpdump would sit between a real capture and analysis.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "wm/net/packet.hpp"
#include "wm/util/mmap_file.hpp"

namespace wm::net {

/// LINKTYPE_* values from the tcpdump registry (only Ethernet is used
/// by this project, but the field round-trips).
enum class LinkType : std::uint32_t {
  kEthernet = 1,
  kRawIp = 101,
};

struct PcapFileHeader {
  static constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
  static constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
  static constexpr std::size_t kSize = 24;

  bool nanosecond_resolution = true;
  bool byte_swapped = false;  // file written on an opposite-endian host
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::uint32_t snaplen = 262144;
  LinkType link_type = LinkType::kEthernet;
};

/// Streaming pcap writer.
class PcapWriter {
 public:
  /// Create/truncate `path` and write the file header. Throws
  /// std::runtime_error on I/O failure.
  PcapWriter(const std::filesystem::path& path, bool nanosecond_resolution = true,
             std::uint32_t snaplen = 262144);
  /// Write to an arbitrary stream (used by tests to write in memory).
  PcapWriter(std::ostream& out, bool nanosecond_resolution = true,
             std::uint32_t snaplen = 262144);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Append one packet record. Frames longer than snaplen are truncated
  /// with the original length preserved in the record header.
  void write(const Packet& packet);

  [[nodiscard]] std::size_t packets_written() const { return packets_written_; }

  /// Flush underlying stream.
  void flush();

 private:
  void write_file_header(std::uint32_t snaplen);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  bool nanos_;
  std::uint32_t snaplen_;
  std::size_t packets_written_ = 0;
};

/// Streaming pcap reader with a zero-copy fast path: opening by path
/// memory-maps the file and parses records straight out of the
/// mapping; opening from an istream (or when mmap is unavailable)
/// falls back to buffered streaming. Both paths yield byte-identical
/// packet sequences.
class PcapReader {
 public:
  /// Open `path` (mmap fast path when possible) and parse the file
  /// header. Throws std::runtime_error on malformed files.
  explicit PcapReader(const std::filesystem::path& path);
  /// Read from an arbitrary stream (always the streaming path).
  explicit PcapReader(std::istream& in);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  [[nodiscard]] const PcapFileHeader& header() const { return header_; }

  /// True when records are parsed from a memory-mapped file.
  [[nodiscard]] bool memory_mapped() const noexcept { return map_.valid(); }

  /// Read the next packet; nullopt at clean end-of-file. Throws on a
  /// truncated or corrupt record.
  std::optional<Packet> next();

  /// Zero-copy read: the view borrows from the mapping (valid for the
  /// reader's lifetime) or, on the streaming path, from an internal
  /// staging buffer (valid until the next call). Same end/throw
  /// behaviour as next().
  std::optional<PacketView> next_view();

  /// Drain the remainder of the file.
  [[nodiscard]] std::vector<Packet> read_all();

 private:
  struct RecordHeader {
    util::SimTime timestamp;
    std::uint32_t captured = 0;
    std::uint32_t original = 0;
  };

  void parse_file_header(const std::uint8_t* bytes);
  void read_file_header();
  RecordHeader parse_record_header(const std::uint8_t* bytes) const;
  /// Streaming path: one buffered 16-byte read. False at clean EOF.
  [[nodiscard]] bool read_record_header(RecordHeader& out);
  std::uint32_t convert(std::uint32_t value) const;

  util::MappedFile map_;
  std::size_t map_pos_ = 0;
  std::unique_ptr<std::istream> owned_;
  std::istream* in_ = nullptr;
  util::Bytes scratch_;  // streaming next_view() staging
  PcapFileHeader header_;
};

/// Convenience helpers.
void write_pcap(const std::filesystem::path& path, const std::vector<Packet>& packets);
[[nodiscard]] std::vector<Packet> read_pcap(const std::filesystem::path& path);

}  // namespace wm::net
