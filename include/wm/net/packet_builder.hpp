// Packet crafting: builds valid Ethernet/IPv4/TCP frames with correct
// checksums. The simulator uses a TcpSender pair per connection to turn
// application byte streams into captured packets (segmentation at MSS,
// sequence/ack bookkeeping, handshake and teardown).
#pragma once

#include <cstdint>
#include <vector>

#include "wm/net/flow.hpp"
#include "wm/net/headers.hpp"
#include "wm/net/packet.hpp"
#include "wm/util/bytes.hpp"
#include "wm/util/time.hpp"

namespace wm::net {

/// Build a complete Ethernet+IPv4+TCP frame with valid checksums.
Packet build_tcp_packet(util::SimTime timestamp, MacAddress src_mac,
                        MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                        const TcpHeader& tcp, util::BytesView payload,
                        std::uint16_t ip_id);

/// Build a complete Ethernet+IPv6+TCP frame with a valid transport
/// checksum (IPv6 has no header checksum).
Packet build_tcp_packet_v6(util::SimTime timestamp, MacAddress src_mac,
                           MacAddress dst_mac, const Ipv6Address& src_ip,
                           const Ipv6Address& dst_ip, const TcpHeader& tcp,
                           util::BytesView payload);

/// Build a complete Ethernet+IPv4+UDP frame with valid checksums.
Packet build_udp_packet(util::SimTime timestamp, MacAddress src_mac,
                        MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                        std::uint16_t src_port, std::uint16_t dst_port,
                        util::BytesView payload, std::uint16_t ip_id);

/// Endpoint parameters for TcpConnectionBuilder.
struct TcpEndpointConfig {
  MacAddress mac;
  Ipv4Address ip;
  std::uint16_t port = 0;
  std::uint32_t initial_sequence = 1000;
  std::uint16_t mss = 1448;  // typical Ethernet MSS with timestamps
  std::uint16_t window = 65535;
};

/// Emits the packets of a well-formed TCP connection: handshake, data
/// segments in both directions (segmented at the sender's MSS, each
/// data segment piggybacking the latest ACK), and FIN teardown.
///
/// This is a *trace synthesizer*, not a congestion-controlled stack:
/// the simulator decides packet times; the builder guarantees that the
/// byte stream carried by the generated segments is exactly what was
/// sent, so reassembly and TLS parsing downstream see a faithful wire
/// image.
class TcpConnectionBuilder {
 public:
  TcpConnectionBuilder(TcpEndpointConfig client, TcpEndpointConfig server);

  /// Emit SYN / SYN-ACK / ACK at the given times.
  void handshake(util::SimTime syn_time, util::Duration rtt);

  /// Emit data from one endpoint; splits into MSS-sized segments. Each
  /// segment is stamped `timestamp`; when `inter_packet_gap` is nonzero
  /// consecutive segments are spaced by it.
  void send(FlowDirection direction, util::SimTime timestamp, util::BytesView data,
            util::Duration inter_packet_gap = {});

  /// Emit a pure ACK from the given side (acknowledging all data).
  void ack(FlowDirection direction, util::SimTime timestamp);

  /// Emit FIN from client, FIN-ACK exchange, final ACK.
  void close(util::SimTime fin_time, util::Duration rtt);

  /// Duplicate a previously sent data segment (models a retransmission
  /// visible to the capture point). `packet_index` indexes packets().
  void retransmit(std::size_t packet_index, util::SimTime timestamp);

  [[nodiscard]] const std::vector<Packet>& packets() const { return packets_; }
  [[nodiscard]] std::vector<Packet> take_packets();

 private:
  struct Side {
    TcpEndpointConfig config;
    std::uint32_t next_seq = 0;
  };

  Side& side(FlowDirection direction);
  Side& peer(FlowDirection direction);
  void emit_segment(FlowDirection direction, util::SimTime timestamp,
                    const TcpHeader& header, util::BytesView payload);

  Side client_;
  Side server_;
  std::uint16_t next_ip_id_ = 1;
  std::vector<Packet> packets_;
};

}  // namespace wm::net
