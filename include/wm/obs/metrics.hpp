// Low-overhead metric primitives for the observability layer.
//
// Counters and histograms are lock-free atomics: the hot path does one
// relaxed-address fetch_add with release ordering, and snapshot readers
// load with acquire ordering, so a snapshot taken from another thread
// (e.g. inside an EventSink while workers are still feeding) is
// torn-free — every value read is some value the counter actually held.
// The acquire/release pairing additionally guarantees that when a
// writer increments counter A and then counter B, a reader that
// observes B's increment and *then* loads A observes A's too.
//
// Every call site holds a possibly-null pointer and goes through the
// inc()/observe() helpers, so a run with no registry attached costs one
// predictable branch per event and nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace wm::obs {

/// How a metric's final value behaves across runs and configurations,
/// for the same input capture and seed. Determines which section of a
/// Snapshot the metric lands in, and therefore which determinism
/// guarantee tests may assert on it.
enum class Stability : std::uint8_t {
  /// Identical for a fixed input: across repeated runs, across engine
  /// shard counts, threaded or inline. Byte-stable in snapshots.
  kStable,
  /// Deterministic for a fixed (input, engine configuration) pair but
  /// varies with the shard count (per-shard breakdowns, batch counts).
  kSharded,
  /// Run-dependent: scheduling or wall-clock artefacts (backpressure
  /// waits, queue peaks). Never asserted byte-identical.
  kVolatile,
};

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    // Release: pairs with value()'s acquire so cross-counter increment
    // order survives into snapshots (see file header).
    value_.fetch_add(n, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Null-safe increment: the uninstrumented path is one branch.
inline void inc(Counter* counter, std::uint64_t n = 1) noexcept {
  if (counter != nullptr) counter->add(n);
}

/// Fixed-bucket histogram: values are counted into the first bucket
/// whose upper bound is >= value, with an implicit overflow bucket, and
/// accumulated into count/sum. Bounds are fixed at construction so
/// snapshots of the same metric are always bucket-compatible (and
/// summable across shards).
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1)) {}

  void observe(std::uint64_t value) noexcept {
    std::size_t index = 0;
    while (index < bounds_.size() && value > bounds_[index]) ++index;
    // Release, in bucket -> sum -> count order: a reader that loads
    // count first (acquire) then buckets can never see count exceed
    // the bucket total (registry.cpp snapshot relies on this).
    buckets_[index].fetch_add(1, std::memory_order_release);
    sum_.fetch_add(value, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& upper_bounds() const {
    return bounds_;
  }
  /// Bucket i counts observations <= upper_bounds()[i]; bucket
  /// upper_bounds().size() is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_acquire);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Null-safe observation.
inline void observe(Histogram* histogram, std::uint64_t value) noexcept {
  if (histogram != nullptr) histogram->observe(value);
}

/// Accumulated wall/CPU time of one named stage. Always Volatile:
/// timing never participates in deterministic snapshots.
class TimingSpan {
 public:
  void record(std::uint64_t wall_ns, std::uint64_t cpu_ns) noexcept {
    wall_ns_.fetch_add(wall_ns, std::memory_order_release);
    cpu_ns_.fetch_add(cpu_ns, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return wall_ns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t cpu_ns() const noexcept {
    return cpu_ns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> wall_ns_{0};
  std::atomic<std::uint64_t> cpu_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace wm::obs
