// wm::obs — the observability registry.
//
// A Registry owns named counters, histograms and timing spans with
// hierarchical dotted names ("engine.shard[2].flows.evicted"). Modules
// resolve their metric pointers once, at construction, and then touch
// only the atomics on the hot path; registration is mutex-protected
// but rare. A metric name registered twice returns the same object, so
// independent components may share an aggregate counter.
//
// Rollups: a per-shard counter may declare a rollup name ("engine.
// flows.opened"); snapshot() publishes the rollup as the sum of its
// members. A sum over per-shard counters of a per-flow quantity is
// shard-count-invariant, which is how the snapshot's *stable* section
// stays byte-identical across 1/2/4/8-shard runs of the same capture.
//
// Snapshots segregate metrics by Stability (see metrics.hpp) and keep
// timing in its own section, so `stable` / `deterministic` exports are
// byte-stable and assertable in tests while wall/CPU time still rides
// along in the full report.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wm/obs/metrics.hpp"
#include "wm/util/thread_annotations.hpp"

namespace wm::obs {

/// A point-in-time, acquire-consistent copy of every metric in a
/// Registry. Plain data: safe to keep, compare and serialize after the
/// registry (or the run that fed it) is gone.
struct Snapshot {
  /// Stability::kStable counters and histogram buckets, plus rollups
  /// declared stable. Byte-identical across runs and shard counts.
  std::map<std::string, std::uint64_t> stable;
  /// Stability::kSharded metrics: deterministic for a fixed engine
  /// configuration, different across shard counts.
  std::map<std::string, std::uint64_t> sharded;
  /// Stability::kVolatile counters (backpressure waits and friends).
  std::map<std::string, std::uint64_t> runtime;

  struct Timing {
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Timing> timings;

  /// The stable section as canonical compact JSON (sorted keys).
  /// Byte-identical across runs and across engine shard counts for the
  /// same input — the assertable artefact of the differential and
  /// golden-trace suites.
  [[nodiscard]] std::string stable_json() const;
  /// Stable + sharded sections: deterministic for a fixed
  /// configuration, still excludes anything run-dependent.
  [[nodiscard]] std::string deterministic_json() const;
  /// Every section, timing included, as one JSON document.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable stage report (counters grouped by prefix, timings
  /// with wall/CPU milliseconds).
  [[nodiscard]] std::string to_text() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolve (registering on first use) a counter. Re-registration
  /// under the same name returns the same counter; the first
  /// registration's stability and rollup win.
  Counter* counter(const std::string& name,
                   Stability stability = Stability::kStable)
      WM_EXCLUDES(mutex_);
  /// As above, additionally contributing to rollup `rollup_name`,
  /// published at snapshot time as the members' sum with
  /// `rollup_stability`.
  Counter* counter(const std::string& name, Stability stability,
                   const std::string& rollup_name,
                   Stability rollup_stability = Stability::kStable)
      WM_EXCLUDES(mutex_);

  /// Resolve a fixed-bucket histogram. The first registration fixes the
  /// bounds; later calls under the same name ignore `upper_bounds`.
  Histogram* histogram(const std::string& name,
                       std::vector<std::uint64_t> upper_bounds,
                       Stability stability = Stability::kStable)
      WM_EXCLUDES(mutex_);
  Histogram* histogram(const std::string& name,
                       std::vector<std::uint64_t> upper_bounds,
                       Stability stability, const std::string& rollup_name,
                       Stability rollup_stability = Stability::kStable)
      WM_EXCLUDES(mutex_);

  /// Resolve a timing span (always reported under timings).
  TimingSpan* timing(const std::string& name) WM_EXCLUDES(mutex_);

  /// Acquire-consistent copy of every metric, rollups included.
  [[nodiscard]] Snapshot snapshot() const WM_EXCLUDES(mutex_);

 private:
  struct CounterEntry {
    Stability stability = Stability::kStable;
    std::unique_ptr<Counter> counter;
  };
  struct HistogramEntry {
    Stability stability = Stability::kStable;
    std::unique_ptr<Histogram> histogram;
  };
  struct CounterRollup {
    Stability stability = Stability::kStable;
    std::vector<const Counter*> members;
  };
  struct HistogramRollup {
    Stability stability = Stability::kStable;
    std::vector<const Histogram*> members;
  };

  /// Protects the registration maps only; metric *values* are lock-free
  /// atomics read via acquire loads (see metrics.hpp).
  mutable util::Mutex mutex_;
  std::map<std::string, CounterEntry> counters_ WM_GUARDED_BY(mutex_);
  std::map<std::string, HistogramEntry> histograms_ WM_GUARDED_BY(mutex_);
  std::map<std::string, CounterRollup> counter_rollups_ WM_GUARDED_BY(mutex_);
  std::map<std::string, HistogramRollup> histogram_rollups_
      WM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<TimingSpan>> timings_
      WM_GUARDED_BY(mutex_);
};

/// RAII wall + thread-CPU timer: records into a TimingSpan (or does
/// nothing when constructed against a null registry/span) on scope
/// exit.
class StageTimer {
 public:
  explicit StageTimer(TimingSpan* span);
  /// Convenience: resolve `name` in `registry` (null registry ok).
  StageTimer(Registry* registry, const std::string& name);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  TimingSpan* span_;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
};

}  // namespace wm::obs
