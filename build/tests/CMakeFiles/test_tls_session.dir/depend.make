# Empty dependencies file for test_tls_session.
# This may be replaced when dependencies are built.
