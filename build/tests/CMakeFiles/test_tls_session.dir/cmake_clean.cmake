file(REMOVE_RECURSE
  "CMakeFiles/test_tls_session.dir/test_tls_session.cpp.o"
  "CMakeFiles/test_tls_session.dir/test_tls_session.cpp.o.d"
  "test_tls_session"
  "test_tls_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
