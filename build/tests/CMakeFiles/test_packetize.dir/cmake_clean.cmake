file(REMOVE_RECURSE
  "CMakeFiles/test_packetize.dir/test_packetize.cpp.o"
  "CMakeFiles/test_packetize.dir/test_packetize.cpp.o.d"
  "test_packetize"
  "test_packetize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packetize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
