# Empty compiler generated dependencies file for test_packetize.
# This may be replaced when dependencies are built.
