# Empty compiler generated dependencies file for test_integration_sweep.
# This may be replaced when dependencies are built.
