# Empty compiler generated dependencies file for test_multiviewer.
# This may be replaced when dependencies are built.
