file(REMOVE_RECURSE
  "CMakeFiles/test_multiviewer.dir/test_multiviewer.cpp.o"
  "CMakeFiles/test_multiviewer.dir/test_multiviewer.cpp.o.d"
  "test_multiviewer"
  "test_multiviewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiviewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
