file(REMOVE_RECURSE
  "CMakeFiles/test_gap_coverage.dir/test_gap_coverage.cpp.o"
  "CMakeFiles/test_gap_coverage.dir/test_gap_coverage.cpp.o.d"
  "test_gap_coverage"
  "test_gap_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gap_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
