file(REMOVE_RECURSE
  "CMakeFiles/test_story.dir/test_story.cpp.o"
  "CMakeFiles/test_story.dir/test_story.cpp.o.d"
  "test_story"
  "test_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
