# Empty compiler generated dependencies file for test_story.
# This may be replaced when dependencies are built.
