# Empty dependencies file for test_countermeasures.
# This may be replaced when dependencies are built.
