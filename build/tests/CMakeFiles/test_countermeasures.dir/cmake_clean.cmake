file(REMOVE_RECURSE
  "CMakeFiles/test_countermeasures.dir/test_countermeasures.cpp.o"
  "CMakeFiles/test_countermeasures.dir/test_countermeasures.cpp.o.d"
  "test_countermeasures"
  "test_countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
