
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/counter/CMakeFiles/wm_counter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/wm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/story/CMakeFiles/wm_story.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/wm_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
