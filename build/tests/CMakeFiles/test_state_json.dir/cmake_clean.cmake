file(REMOVE_RECURSE
  "CMakeFiles/test_state_json.dir/test_state_json.cpp.o"
  "CMakeFiles/test_state_json.dir/test_state_json.cpp.o.d"
  "test_state_json"
  "test_state_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
