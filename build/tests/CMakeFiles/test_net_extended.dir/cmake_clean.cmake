file(REMOVE_RECURSE
  "CMakeFiles/test_net_extended.dir/test_net_extended.cpp.o"
  "CMakeFiles/test_net_extended.dir/test_net_extended.cpp.o.d"
  "test_net_extended"
  "test_net_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
