# Empty compiler generated dependencies file for test_pcapng.
# This may be replaced when dependencies are built.
