file(REMOVE_RECURSE
  "CMakeFiles/test_tls.dir/test_tls.cpp.o"
  "CMakeFiles/test_tls.dir/test_tls.cpp.o.d"
  "test_tls"
  "test_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
