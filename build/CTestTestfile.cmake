# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/util")
subdirs("src/net")
subdirs("src/tls")
subdirs("src/story")
subdirs("src/sim")
subdirs("src/dataset")
subdirs("src/core")
subdirs("src/counter")
subdirs("examples")
subdirs("bench")
subdirs("tests")
