# Empty dependencies file for capture_to_choices.
# This may be replaced when dependencies are built.
