file(REMOVE_RECURSE
  "CMakeFiles/capture_to_choices.dir/capture_to_choices.cpp.o"
  "CMakeFiles/capture_to_choices.dir/capture_to_choices.cpp.o.d"
  "capture_to_choices"
  "capture_to_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_to_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
