file(REMOVE_RECURSE
  "CMakeFiles/countermeasure_demo.dir/countermeasure_demo.cpp.o"
  "CMakeFiles/countermeasure_demo.dir/countermeasure_demo.cpp.o.d"
  "countermeasure_demo"
  "countermeasure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countermeasure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
