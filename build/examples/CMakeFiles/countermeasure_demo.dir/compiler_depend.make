# Empty compiler generated dependencies file for countermeasure_demo.
# This may be replaced when dependencies are built.
