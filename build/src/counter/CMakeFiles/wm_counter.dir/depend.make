# Empty dependencies file for wm_counter.
# This may be replaced when dependencies are built.
