file(REMOVE_RECURSE
  "libwm_counter.a"
)
