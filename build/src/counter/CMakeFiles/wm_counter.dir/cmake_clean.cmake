file(REMOVE_RECURSE
  "CMakeFiles/wm_counter.dir/eval.cpp.o"
  "CMakeFiles/wm_counter.dir/eval.cpp.o.d"
  "CMakeFiles/wm_counter.dir/timing_attack.cpp.o"
  "CMakeFiles/wm_counter.dir/timing_attack.cpp.o.d"
  "CMakeFiles/wm_counter.dir/transforms.cpp.o"
  "CMakeFiles/wm_counter.dir/transforms.cpp.o.d"
  "libwm_counter.a"
  "libwm_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
