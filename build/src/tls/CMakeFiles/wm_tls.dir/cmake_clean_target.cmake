file(REMOVE_RECURSE
  "libwm_tls.a"
)
