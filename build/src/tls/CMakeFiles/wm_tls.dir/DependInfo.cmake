
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/cipher.cpp" "src/tls/CMakeFiles/wm_tls.dir/cipher.cpp.o" "gcc" "src/tls/CMakeFiles/wm_tls.dir/cipher.cpp.o.d"
  "/root/repo/src/tls/handshake.cpp" "src/tls/CMakeFiles/wm_tls.dir/handshake.cpp.o" "gcc" "src/tls/CMakeFiles/wm_tls.dir/handshake.cpp.o.d"
  "/root/repo/src/tls/record.cpp" "src/tls/CMakeFiles/wm_tls.dir/record.cpp.o" "gcc" "src/tls/CMakeFiles/wm_tls.dir/record.cpp.o.d"
  "/root/repo/src/tls/record_stream.cpp" "src/tls/CMakeFiles/wm_tls.dir/record_stream.cpp.o" "gcc" "src/tls/CMakeFiles/wm_tls.dir/record_stream.cpp.o.d"
  "/root/repo/src/tls/session.cpp" "src/tls/CMakeFiles/wm_tls.dir/session.cpp.o" "gcc" "src/tls/CMakeFiles/wm_tls.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
