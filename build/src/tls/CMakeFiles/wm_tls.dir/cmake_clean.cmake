file(REMOVE_RECURSE
  "CMakeFiles/wm_tls.dir/cipher.cpp.o"
  "CMakeFiles/wm_tls.dir/cipher.cpp.o.d"
  "CMakeFiles/wm_tls.dir/handshake.cpp.o"
  "CMakeFiles/wm_tls.dir/handshake.cpp.o.d"
  "CMakeFiles/wm_tls.dir/record.cpp.o"
  "CMakeFiles/wm_tls.dir/record.cpp.o.d"
  "CMakeFiles/wm_tls.dir/record_stream.cpp.o"
  "CMakeFiles/wm_tls.dir/record_stream.cpp.o.d"
  "CMakeFiles/wm_tls.dir/session.cpp.o"
  "CMakeFiles/wm_tls.dir/session.cpp.o.d"
  "libwm_tls.a"
  "libwm_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
