# Empty compiler generated dependencies file for wm_tls.
# This may be replaced when dependencies are built.
