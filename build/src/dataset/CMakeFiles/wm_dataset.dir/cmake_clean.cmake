file(REMOVE_RECURSE
  "CMakeFiles/wm_dataset.dir/attributes.cpp.o"
  "CMakeFiles/wm_dataset.dir/attributes.cpp.o.d"
  "CMakeFiles/wm_dataset.dir/builder.cpp.o"
  "CMakeFiles/wm_dataset.dir/builder.cpp.o.d"
  "CMakeFiles/wm_dataset.dir/choice_policy.cpp.o"
  "CMakeFiles/wm_dataset.dir/choice_policy.cpp.o.d"
  "libwm_dataset.a"
  "libwm_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
