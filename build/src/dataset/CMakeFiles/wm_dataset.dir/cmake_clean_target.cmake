file(REMOVE_RECURSE
  "libwm_dataset.a"
)
