
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/attributes.cpp" "src/dataset/CMakeFiles/wm_dataset.dir/attributes.cpp.o" "gcc" "src/dataset/CMakeFiles/wm_dataset.dir/attributes.cpp.o.d"
  "/root/repo/src/dataset/builder.cpp" "src/dataset/CMakeFiles/wm_dataset.dir/builder.cpp.o" "gcc" "src/dataset/CMakeFiles/wm_dataset.dir/builder.cpp.o.d"
  "/root/repo/src/dataset/choice_policy.cpp" "src/dataset/CMakeFiles/wm_dataset.dir/choice_policy.cpp.o" "gcc" "src/dataset/CMakeFiles/wm_dataset.dir/choice_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/story/CMakeFiles/wm_story.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/wm_tls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
