# Empty dependencies file for wm_dataset.
# This may be replaced when dependencies are built.
