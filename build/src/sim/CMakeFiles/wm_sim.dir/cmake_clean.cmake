file(REMOVE_RECURSE
  "CMakeFiles/wm_sim.dir/http.cpp.o"
  "CMakeFiles/wm_sim.dir/http.cpp.o.d"
  "CMakeFiles/wm_sim.dir/impairments.cpp.o"
  "CMakeFiles/wm_sim.dir/impairments.cpp.o.d"
  "CMakeFiles/wm_sim.dir/netmodel.cpp.o"
  "CMakeFiles/wm_sim.dir/netmodel.cpp.o.d"
  "CMakeFiles/wm_sim.dir/packetize.cpp.o"
  "CMakeFiles/wm_sim.dir/packetize.cpp.o.d"
  "CMakeFiles/wm_sim.dir/profile.cpp.o"
  "CMakeFiles/wm_sim.dir/profile.cpp.o.d"
  "CMakeFiles/wm_sim.dir/session.cpp.o"
  "CMakeFiles/wm_sim.dir/session.cpp.o.d"
  "CMakeFiles/wm_sim.dir/state_json.cpp.o"
  "CMakeFiles/wm_sim.dir/state_json.cpp.o.d"
  "CMakeFiles/wm_sim.dir/streaming.cpp.o"
  "CMakeFiles/wm_sim.dir/streaming.cpp.o.d"
  "libwm_sim.a"
  "libwm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
