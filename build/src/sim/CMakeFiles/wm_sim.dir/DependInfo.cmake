
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/http.cpp" "src/sim/CMakeFiles/wm_sim.dir/http.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/http.cpp.o.d"
  "/root/repo/src/sim/impairments.cpp" "src/sim/CMakeFiles/wm_sim.dir/impairments.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/impairments.cpp.o.d"
  "/root/repo/src/sim/netmodel.cpp" "src/sim/CMakeFiles/wm_sim.dir/netmodel.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/netmodel.cpp.o.d"
  "/root/repo/src/sim/packetize.cpp" "src/sim/CMakeFiles/wm_sim.dir/packetize.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/packetize.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/sim/CMakeFiles/wm_sim.dir/profile.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/profile.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/wm_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/session.cpp.o.d"
  "/root/repo/src/sim/state_json.cpp" "src/sim/CMakeFiles/wm_sim.dir/state_json.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/state_json.cpp.o.d"
  "/root/repo/src/sim/streaming.cpp" "src/sim/CMakeFiles/wm_sim.dir/streaming.cpp.o" "gcc" "src/sim/CMakeFiles/wm_sim.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tls/CMakeFiles/wm_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/story/CMakeFiles/wm_story.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
