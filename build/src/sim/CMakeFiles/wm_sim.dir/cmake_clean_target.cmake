file(REMOVE_RECURSE
  "libwm_sim.a"
)
