# Empty compiler generated dependencies file for wm_sim.
# This may be replaced when dependencies are built.
