
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/behavior.cpp" "src/core/CMakeFiles/wm_core.dir/behavior.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/behavior.cpp.o.d"
  "/root/repo/src/core/bitrate_baseline.cpp" "src/core/CMakeFiles/wm_core.dir/bitrate_baseline.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/bitrate_baseline.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/wm_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/decoder.cpp" "src/core/CMakeFiles/wm_core.dir/decoder.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/decoder.cpp.o.d"
  "/root/repo/src/core/eval.cpp" "src/core/CMakeFiles/wm_core.dir/eval.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/eval.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/wm_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/features.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/core/CMakeFiles/wm_core.dir/fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/fingerprint.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/wm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/wm_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tls/CMakeFiles/wm_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/story/CMakeFiles/wm_story.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
