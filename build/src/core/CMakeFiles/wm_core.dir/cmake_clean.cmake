file(REMOVE_RECURSE
  "CMakeFiles/wm_core.dir/behavior.cpp.o"
  "CMakeFiles/wm_core.dir/behavior.cpp.o.d"
  "CMakeFiles/wm_core.dir/bitrate_baseline.cpp.o"
  "CMakeFiles/wm_core.dir/bitrate_baseline.cpp.o.d"
  "CMakeFiles/wm_core.dir/classifier.cpp.o"
  "CMakeFiles/wm_core.dir/classifier.cpp.o.d"
  "CMakeFiles/wm_core.dir/decoder.cpp.o"
  "CMakeFiles/wm_core.dir/decoder.cpp.o.d"
  "CMakeFiles/wm_core.dir/eval.cpp.o"
  "CMakeFiles/wm_core.dir/eval.cpp.o.d"
  "CMakeFiles/wm_core.dir/features.cpp.o"
  "CMakeFiles/wm_core.dir/features.cpp.o.d"
  "CMakeFiles/wm_core.dir/fingerprint.cpp.o"
  "CMakeFiles/wm_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/wm_core.dir/pipeline.cpp.o"
  "CMakeFiles/wm_core.dir/pipeline.cpp.o.d"
  "libwm_core.a"
  "libwm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
