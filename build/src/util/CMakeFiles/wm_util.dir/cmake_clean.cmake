file(REMOVE_RECURSE
  "CMakeFiles/wm_util.dir/bytes.cpp.o"
  "CMakeFiles/wm_util.dir/bytes.cpp.o.d"
  "CMakeFiles/wm_util.dir/cli.cpp.o"
  "CMakeFiles/wm_util.dir/cli.cpp.o.d"
  "CMakeFiles/wm_util.dir/csv.cpp.o"
  "CMakeFiles/wm_util.dir/csv.cpp.o.d"
  "CMakeFiles/wm_util.dir/json.cpp.o"
  "CMakeFiles/wm_util.dir/json.cpp.o.d"
  "CMakeFiles/wm_util.dir/log.cpp.o"
  "CMakeFiles/wm_util.dir/log.cpp.o.d"
  "CMakeFiles/wm_util.dir/rng.cpp.o"
  "CMakeFiles/wm_util.dir/rng.cpp.o.d"
  "CMakeFiles/wm_util.dir/stats.cpp.o"
  "CMakeFiles/wm_util.dir/stats.cpp.o.d"
  "CMakeFiles/wm_util.dir/strings.cpp.o"
  "CMakeFiles/wm_util.dir/strings.cpp.o.d"
  "CMakeFiles/wm_util.dir/time.cpp.o"
  "CMakeFiles/wm_util.dir/time.cpp.o.d"
  "libwm_util.a"
  "libwm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
