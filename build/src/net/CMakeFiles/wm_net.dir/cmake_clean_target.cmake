file(REMOVE_RECURSE
  "libwm_net.a"
)
