# Empty compiler generated dependencies file for wm_net.
# This may be replaced when dependencies are built.
