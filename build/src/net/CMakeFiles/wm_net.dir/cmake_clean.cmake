file(REMOVE_RECURSE
  "CMakeFiles/wm_net.dir/address.cpp.o"
  "CMakeFiles/wm_net.dir/address.cpp.o.d"
  "CMakeFiles/wm_net.dir/checksum.cpp.o"
  "CMakeFiles/wm_net.dir/checksum.cpp.o.d"
  "CMakeFiles/wm_net.dir/flow.cpp.o"
  "CMakeFiles/wm_net.dir/flow.cpp.o.d"
  "CMakeFiles/wm_net.dir/headers.cpp.o"
  "CMakeFiles/wm_net.dir/headers.cpp.o.d"
  "CMakeFiles/wm_net.dir/packet.cpp.o"
  "CMakeFiles/wm_net.dir/packet.cpp.o.d"
  "CMakeFiles/wm_net.dir/packet_builder.cpp.o"
  "CMakeFiles/wm_net.dir/packet_builder.cpp.o.d"
  "CMakeFiles/wm_net.dir/pcap.cpp.o"
  "CMakeFiles/wm_net.dir/pcap.cpp.o.d"
  "CMakeFiles/wm_net.dir/pcapng.cpp.o"
  "CMakeFiles/wm_net.dir/pcapng.cpp.o.d"
  "CMakeFiles/wm_net.dir/reassembly.cpp.o"
  "CMakeFiles/wm_net.dir/reassembly.cpp.o.d"
  "libwm_net.a"
  "libwm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
