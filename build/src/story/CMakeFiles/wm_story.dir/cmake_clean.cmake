file(REMOVE_RECURSE
  "CMakeFiles/wm_story.dir/bandersnatch.cpp.o"
  "CMakeFiles/wm_story.dir/bandersnatch.cpp.o.d"
  "CMakeFiles/wm_story.dir/generator.cpp.o"
  "CMakeFiles/wm_story.dir/generator.cpp.o.d"
  "CMakeFiles/wm_story.dir/graph.cpp.o"
  "CMakeFiles/wm_story.dir/graph.cpp.o.d"
  "CMakeFiles/wm_story.dir/serialize.cpp.o"
  "CMakeFiles/wm_story.dir/serialize.cpp.o.d"
  "libwm_story.a"
  "libwm_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
