file(REMOVE_RECURSE
  "libwm_story.a"
)
