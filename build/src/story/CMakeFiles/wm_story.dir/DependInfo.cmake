
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/story/bandersnatch.cpp" "src/story/CMakeFiles/wm_story.dir/bandersnatch.cpp.o" "gcc" "src/story/CMakeFiles/wm_story.dir/bandersnatch.cpp.o.d"
  "/root/repo/src/story/generator.cpp" "src/story/CMakeFiles/wm_story.dir/generator.cpp.o" "gcc" "src/story/CMakeFiles/wm_story.dir/generator.cpp.o.d"
  "/root/repo/src/story/graph.cpp" "src/story/CMakeFiles/wm_story.dir/graph.cpp.o" "gcc" "src/story/CMakeFiles/wm_story.dir/graph.cpp.o.d"
  "/root/repo/src/story/serialize.cpp" "src/story/CMakeFiles/wm_story.dir/serialize.cpp.o" "gcc" "src/story/CMakeFiles/wm_story.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
