# Empty dependencies file for wm_story.
# This may be replaced when dependencies are built.
