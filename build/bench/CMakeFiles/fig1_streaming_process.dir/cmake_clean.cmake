file(REMOVE_RECURSE
  "CMakeFiles/fig1_streaming_process.dir/fig1_streaming_process.cpp.o"
  "CMakeFiles/fig1_streaming_process.dir/fig1_streaming_process.cpp.o.d"
  "fig1_streaming_process"
  "fig1_streaming_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_streaming_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
