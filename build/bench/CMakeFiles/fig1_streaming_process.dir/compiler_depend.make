# Empty compiler generated dependencies file for fig1_streaming_process.
# This may be replaced when dependencies are built.
