# Empty dependencies file for fig2_record_lengths.
# This may be replaced when dependencies are built.
