file(REMOVE_RECURSE
  "CMakeFiles/fig2_record_lengths.dir/fig2_record_lengths.cpp.o"
  "CMakeFiles/fig2_record_lengths.dir/fig2_record_lengths.cpp.o.d"
  "fig2_record_lengths"
  "fig2_record_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_record_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
