file(REMOVE_RECURSE
  "CMakeFiles/ablation_calibration_scope.dir/ablation_calibration_scope.cpp.o"
  "CMakeFiles/ablation_calibration_scope.dir/ablation_calibration_scope.cpp.o.d"
  "ablation_calibration_scope"
  "ablation_calibration_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_calibration_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
