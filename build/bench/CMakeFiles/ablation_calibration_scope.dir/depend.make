# Empty dependencies file for ablation_calibration_scope.
# This may be replaced when dependencies are built.
