file(REMOVE_RECURSE
  "CMakeFiles/result_accuracy.dir/result_accuracy.cpp.o"
  "CMakeFiles/result_accuracy.dir/result_accuracy.cpp.o.d"
  "result_accuracy"
  "result_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
