# Empty dependencies file for result_accuracy.
# This may be replaced when dependencies are built.
