# Empty compiler generated dependencies file for behavior_profiling.
# This may be replaced when dependencies are built.
