file(REMOVE_RECURSE
  "CMakeFiles/behavior_profiling.dir/behavior_profiling.cpp.o"
  "CMakeFiles/behavior_profiling.dir/behavior_profiling.cpp.o.d"
  "behavior_profiling"
  "behavior_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavior_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
