file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_bitrate.dir/ablation_baseline_bitrate.cpp.o"
  "CMakeFiles/ablation_baseline_bitrate.dir/ablation_baseline_bitrate.cpp.o.d"
  "ablation_baseline_bitrate"
  "ablation_baseline_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
