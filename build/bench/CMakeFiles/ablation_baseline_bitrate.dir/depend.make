# Empty dependencies file for ablation_baseline_bitrate.
# This may be replaced when dependencies are built.
