#include "wm/obs/registry.hpp"

#include <chrono>
#include <ctime>
#include <sstream>

#include "wm/util/json.hpp"

namespace wm::obs {

namespace {

/// Add `member` to a rollup's member list exactly once, however many
/// times the same metric re-registers under the rollup (shards resolve
/// their pointers independently). Member lists are tiny (one entry per
/// shard), so a linear scan beats bookkeeping.
template <typename T>
void add_rollup_member(std::vector<const T*>& members, const T* member) {
  for (const T* existing : members) {
    if (existing == member) return;
  }
  members.push_back(member);
}

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// CPU time of the calling thread. Falls back to 0 where the POSIX
/// thread-CPU clock is unavailable; timings are advisory, never part of
/// deterministic snapshots.
std::uint64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000u +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

/// Flatten one histogram into bucket/count/sum entries of `out`.
void flatten_histogram(const std::string& name,
                       const std::vector<std::uint64_t>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, std::uint64_t sum,
                       std::map<std::string, std::uint64_t>& out) {
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    out[name + ".le_" + std::to_string(bounds[i])] = buckets[i];
  }
  out[name + ".le_inf"] = buckets[bounds.size()];
  out[name + ".count"] = count;
  out[name + ".sum"] = sum;
}

util::JsonValue section_json(const std::map<std::string, std::uint64_t>& section) {
  util::JsonObject object;
  for (const auto& [name, value] : section) object.emplace(name, value);
  return util::JsonValue(std::move(object));
}

void append_section_text(std::ostringstream& out, const char* title,
                         const std::map<std::string, std::uint64_t>& section) {
  if (section.empty()) return;
  out << title << ":\n";
  for (const auto& [name, value] : section) {
    out << "  " << name;
    for (std::size_t pad = name.size(); pad < 52; ++pad) out << ' ';
    out << ' ' << value << '\n';
  }
}

}  // namespace

// --- Registry --------------------------------------------------------

Counter* Registry::counter(const std::string& name, Stability stability) {
  const util::LockGuard lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) {
    it->second.stability = stability;
    it->second.counter = std::make_unique<Counter>();
  }
  return it->second.counter.get();
}

Counter* Registry::counter(const std::string& name, Stability stability,
                           const std::string& rollup_name,
                           Stability rollup_stability) {
  Counter* resolved = counter(name, stability);
  const util::LockGuard lock(mutex_);
  auto [it, inserted] = counter_rollups_.try_emplace(rollup_name);
  if (inserted) it->second.stability = rollup_stability;
  add_rollup_member(it->second.members, static_cast<const Counter*>(resolved));
  return resolved;
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> upper_bounds,
                               Stability stability) {
  const util::LockGuard lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second.stability = stability;
    it->second.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return it->second.histogram.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> upper_bounds,
                               Stability stability,
                               const std::string& rollup_name,
                               Stability rollup_stability) {
  Histogram* resolved = histogram(name, std::move(upper_bounds), stability);
  const util::LockGuard lock(mutex_);
  auto [it, inserted] = histogram_rollups_.try_emplace(rollup_name);
  if (inserted) it->second.stability = rollup_stability;
  add_rollup_member(it->second.members,
                    static_cast<const Histogram*>(resolved));
  return resolved;
}

TimingSpan* Registry::timing(const std::string& name) {
  const util::LockGuard lock(mutex_);
  auto [it, inserted] = timings_.try_emplace(name);
  if (inserted) it->second = std::make_unique<TimingSpan>();
  return it->second.get();
}

Snapshot Registry::snapshot() const {
  // The lock protects the registration maps only; metric values are
  // read through their own acquire loads, so concurrent increments on
  // worker threads never block or tear the snapshot.
  const util::LockGuard lock(mutex_);
  Snapshot snap;

  const auto section = [&snap](Stability stability)
      -> std::map<std::string, std::uint64_t>& {
    switch (stability) {
      case Stability::kStable: return snap.stable;
      case Stability::kSharded: return snap.sharded;
      case Stability::kVolatile: break;
    }
    return snap.runtime;
  };

  for (const auto& [name, entry] : counters_) {
    section(entry.stability)[name] = entry.counter->value();
  }
  for (const auto& [name, rollup] : counter_rollups_) {
    std::uint64_t total = 0;
    for (const Counter* member : rollup.members) total += member->value();
    section(rollup.stability)[name] = total;
  }

  const auto flatten = [&](const std::string& name, Stability stability,
                           const std::vector<const Histogram*>& members) {
    const auto& bounds = members.front()->upper_bounds();
    std::vector<std::uint64_t> buckets(bounds.size() + 1, 0);
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    for (const Histogram* member : members) {
      // Read in writer-opposite order (observe() updates bucket, then
      // sum, then count): count first, buckets last, so a mid-run
      // snapshot always satisfies sum(buckets) >= count.
      count += member->count();
      sum += member->sum();
      for (std::size_t i = 0; i <= bounds.size(); ++i) {
        buckets[i] += member->bucket(i);
      }
    }
    flatten_histogram(name, bounds, buckets, count, sum, section(stability));
  };
  for (const auto& [name, entry] : histograms_) {
    flatten(name, entry.stability, {entry.histogram.get()});
  }
  for (const auto& [name, rollup] : histogram_rollups_) {
    flatten(name, rollup.stability, rollup.members);
  }

  for (const auto& [name, span] : timings_) {
    snap.timings[name] =
        Snapshot::Timing{span->wall_ns(), span->cpu_ns(), span->count()};
  }
  return snap;
}

// --- Snapshot --------------------------------------------------------

std::string Snapshot::stable_json() const {
  return section_json(stable).dump();
}

std::string Snapshot::deterministic_json() const {
  util::JsonObject object;
  object.emplace("sharded", section_json(sharded));
  object.emplace("stable", section_json(stable));
  return util::JsonValue(std::move(object)).dump();
}

std::string Snapshot::to_json() const {
  util::JsonObject object;
  object.emplace("runtime", section_json(runtime));
  object.emplace("sharded", section_json(sharded));
  object.emplace("stable", section_json(stable));
  util::JsonObject timing_object;
  for (const auto& [name, timing] : timings) {
    util::JsonObject one;
    one.emplace("count", timing.count);
    one.emplace("cpu_ns", timing.cpu_ns);
    one.emplace("wall_ns", timing.wall_ns);
    timing_object.emplace(name, std::move(one));
  }
  object.emplace("timings", std::move(timing_object));
  return util::JsonValue(std::move(object)).dump();
}

std::string Snapshot::to_text() const {
  std::ostringstream out;
  out << "== wm::obs stage report ==\n";
  append_section_text(out, "counters (stable)", stable);
  append_section_text(out, "counters (sharded)", sharded);
  append_section_text(out, "counters (runtime)", runtime);
  if (!timings.empty()) {
    out << "timings:\n";
    for (const auto& [name, timing] : timings) {
      out << "  " << name;
      for (std::size_t pad = name.size(); pad < 40; ++pad) out << ' ';
      out << " wall " << static_cast<double>(timing.wall_ns) / 1e6 << "ms"
          << "  cpu " << static_cast<double>(timing.cpu_ns) / 1e6 << "ms"
          << "  spans " << timing.count << '\n';
    }
  }
  return out.str();
}

// --- StageTimer ------------------------------------------------------

StageTimer::StageTimer(TimingSpan* span) : span_(span) {
  if (span_ != nullptr) {
    wall_start_ns_ = wall_now_ns();
    cpu_start_ns_ = thread_cpu_now_ns();
  }
}

StageTimer::StageTimer(Registry* registry, const std::string& name)
    : StageTimer(registry != nullptr ? registry->timing(name) : nullptr) {}

StageTimer::~StageTimer() {
  if (span_ != nullptr) {
    span_->record(wall_now_ns() - wall_start_ns_,
                  thread_cpu_now_ns() - cpu_start_ns_);
  }
}

}  // namespace wm::obs
