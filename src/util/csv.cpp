#include "wm/util/csv.hpp"

#include <ostream>
#include <stdexcept>

#include "wm/util/strings.hpp"

namespace wm::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::string_view field) {
  fields_.emplace_back(field);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::int64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::uint64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double value) {
  fields_.push_back(format("%.6g", value));
  return *this;
}

void CsvWriter::RowBuilder::end() { writer_.write_row(fields_); }

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          throw std::runtime_error("parse_csv: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = false;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quoted field");
  // Flush a final row that lacks a trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace wm::util
