#include "wm/util/timer_wheel.hpp"

#include <cassert>

namespace wm::util {

TimerWheel::TimerWheel(Config config, SimTime origin)
    : config_(config), origin_(origin) {
  if (config_.slot_bits == 0) config_.slot_bits = 1;
  if (config_.slot_bits > 16) config_.slot_bits = 16;
  if (config_.levels == 0) config_.levels = 1;
  if (config_.levels > 8) config_.levels = 8;
  // Keep levels * slot_bits shiftable in 64 bits with headroom.
  while (config_.levels > 1 && config_.levels * config_.slot_bits > 48) {
    --config_.levels;
  }
  tick_nanos_ = config_.tick.total_nanos();
  if (tick_nanos_ <= 0) tick_nanos_ = 1;
  slot_count_ = std::size_t{1} << config_.slot_bits;
  slot_mask_ = slot_count_ - 1;
  slots_.assign(config_.levels * slot_count_, kNil);
}

std::uint64_t TimerWheel::tick_of(SimTime time) const {
  const std::int64_t delta = time.nanos() - origin_.nanos();
  if (delta <= 0) return 0;
  return static_cast<std::uint64_t>(delta) /
         static_cast<std::uint64_t>(tick_nanos_);
}

std::size_t TimerWheel::level_slot(std::size_t level,
                                   std::uint64_t tick) const {
  return static_cast<std::size_t>(tick >> (level * config_.slot_bits)) &
         slot_mask_;
}

SimTime TimerWheel::now() const {
  return SimTime::from_nanos(origin_.nanos() +
                             static_cast<std::int64_t>(cursor_) * tick_nanos_);
}

std::size_t TimerWheel::memory_bytes() const {
  return slots_.capacity() * sizeof(std::uint32_t) +
         entries_.capacity() * sizeof(Entry);
}

std::uint32_t TimerWheel::acquire() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = entries_[index].next;
    return index;
  }
  entries_.push_back(Entry{});
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

void TimerWheel::release(std::uint32_t index) {
  Entry& entry = entries_[index];
  ++entry.generation;  // invalidates any outstanding TimerId
  entry.slot = kNil;
  entry.prev = kNil;
  entry.next = free_head_;
  free_head_ = index;
  --active_;
}

void TimerWheel::place(std::uint32_t index) {
  Entry& entry = entries_[index];
  std::uint64_t deadline_tick = tick_of(entry.deadline);
  // A deadline in a tick we have already processed belongs to the next
  // tick that can still fire: the in-flight tick while advancing (its
  // slot is re-drained), cursor_ + 1 otherwise. Never silently
  // dropped, never early relative to the cursor.
  const std::uint64_t floor_tick = advancing_ ? cursor_ : cursor_ + 1;
  if (deadline_tick < floor_tick) deadline_tick = floor_tick;
  const std::uint64_t delta = deadline_tick - cursor_;

  // Pick the coarsest level whose span is still needed; beyond the top
  // level's horizon, park in the top level's furthest-future slot and
  // let cascade bring it back around (long-idle wraparound).
  std::size_t level = 0;
  while (level + 1 < config_.levels &&
         delta >= (std::uint64_t{1} << ((level + 1) * config_.slot_bits))) {
    ++level;
  }
  std::uint64_t target_tick = deadline_tick;
  const std::uint64_t horizon = std::uint64_t{1}
                                << (config_.levels * config_.slot_bits);
  if (delta >= horizon) target_tick = cursor_ + horizon - 1;

  const std::size_t flat = slot_index(level, level_slot(level, target_tick));
  entry.slot = static_cast<std::uint32_t>(flat);
  entry.prev = kNil;
  entry.next = slots_[flat];
  if (entry.next != kNil) entries_[entry.next].prev = index;
  slots_[flat] = index;
}

void TimerWheel::unlink(std::uint32_t index) {
  Entry& entry = entries_[index];
  if (entry.prev != kNil) {
    entries_[entry.prev].next = entry.next;
  } else {
    slots_[entry.slot] = entry.next;
  }
  if (entry.next != kNil) entries_[entry.next].prev = entry.prev;
  entry.slot = kNil;
  entry.prev = kNil;
  entry.next = kNil;
}

std::uint32_t TimerWheel::take_slot(std::size_t level, std::size_t slot) {
  const std::size_t flat = slot_index(level, slot);
  const std::uint32_t head = slots_[flat];
  slots_[flat] = kNil;
  // Detach every node so release()/place() see a clean state; `next`
  // links are preserved for the caller's walk.
  for (std::uint32_t i = head; i != kNil; i = entries_[i].next) {
    entries_[i].slot = kNil;
    entries_[i].prev = kNil;
  }
  return head;
}

void TimerWheel::cascade_for(std::uint64_t tick) {
  // Level L's slot advances once every 2^(L*slot_bits) ticks; when it
  // does, its occupants re-place into finer levels (or level 0's slot
  // for this exact tick, which the caller drains right after).
  for (std::size_t level = 1; level < config_.levels; ++level) {
    const std::uint64_t period = std::uint64_t{1}
                                 << (level * config_.slot_bits);
    if ((tick & (period - 1)) != 0) break;
    std::uint32_t index = take_slot(level, level_slot(level, tick));
    while (index != kNil) {
      const std::uint32_t next = entries_[index].next;
      entries_[index].next = kNil;
      place(index);
      index = next;
    }
  }
}

TimerWheel::TimerId TimerWheel::schedule(SimTime deadline,
                                         std::uint64_t data) {
  const std::uint32_t index = acquire();
  Entry& entry = entries_[index];
  entry.deadline = deadline;
  entry.data = data;
  ++active_;
  place(index);
  return make_id(index, entry.generation);
}

bool TimerWheel::cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  if (index >= entries_.size()) return false;
  Entry& entry = entries_[index];
  if (entry.slot == kNil) return false;  // free or mid-fire
  if (entry.generation != static_cast<std::uint32_t>(id >> 32)) return false;
  unlink(index);
  release(index);
  return true;
}

TimerWheel::TimerId TimerWheel::reschedule(TimerId id, SimTime deadline,
                                           std::uint64_t data) {
  cancel(id);
  return schedule(deadline, data);
}

}  // namespace wm::util
