#include "wm/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void emit_log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace detail

}  // namespace wm::util
