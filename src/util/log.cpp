#include "wm/util/log.hpp"

#include <atomic>
#include <cstdio>

#include "wm/util/thread_annotations.hpp"

namespace wm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// wm-lint: allow(guarded): guards no member — it serializes fprintf
// calls so interleaved threads emit whole lines to stderr.
// wm-lint: allow(mutex): emit sites are warn/error paths, never the
// packet loop; the level gate above returns before the lock.
Mutex g_emit_mutex;
}  // namespace

void set_log_level(LogLevel level) {
  // Relaxed: the level gate is advisory — a statement racing a level
  // change may use either threshold; no other data is published.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  // Relaxed: pure gate read, no ordering required (see set_log_level).
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void emit_log(LogLevel level, std::string_view message) {
  // Relaxed: same advisory gate as log_level().
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const LockGuard lock(g_emit_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace detail

}  // namespace wm::util
