#include "wm/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wm::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::optional<double> quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::nullopt;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  if (lo == hi) return values[lo];
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void IntHistogram::add(std::int64_t value, std::uint64_t weight) {
  cells_[value] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count_of(std::int64_t value) const {
  const auto it = cells_.find(value);
  return it == cells_.end() ? 0 : it->second;
}

std::uint64_t IntHistogram::count_in(std::int64_t lo, std::int64_t hi) const {
  std::uint64_t sum = 0;
  for (auto it = cells_.lower_bound(lo); it != cells_.end() && it->first <= hi; ++it) {
    sum += it->second;
  }
  return sum;
}

std::optional<std::int64_t> IntHistogram::min() const {
  if (cells_.empty()) return std::nullopt;
  return cells_.begin()->first;
}

std::optional<std::int64_t> IntHistogram::max() const {
  if (cells_.empty()) return std::nullopt;
  return cells_.rbegin()->first;
}

std::optional<std::int64_t> IntHistogram::mode() const {
  if (cells_.empty()) return std::nullopt;
  std::int64_t best_value = cells_.begin()->first;
  std::uint64_t best_count = 0;
  for (const auto& [value, count] : cells_) {
    if (count > best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

std::string IntInterval::to_string() const {
  std::ostringstream out;
  if (lo == hi) {
    out << lo;
  } else {
    out << lo << "-" << hi;
  }
  return out.str();
}

std::optional<IntInterval> covering_interval(const IntHistogram& hist) {
  const auto lo = hist.min();
  const auto hi = hist.max();
  if (!lo || !hi) return std::nullopt;
  return IntInterval{*lo, *hi};
}

ConfusionMatrix::ConfusionMatrix(std::vector<std::string> labels)
    : labels_(std::move(labels)), cells_(labels_.size() * labels_.size(), 0) {
  if (labels_.empty()) {
    throw std::invalid_argument("ConfusionMatrix: need at least one label");
  }
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted,
                          std::uint64_t weight) {
  if (truth >= labels_.size() || predicted >= labels_.size()) {
    throw std::out_of_range("ConfusionMatrix::add: class index out of range");
  }
  cells_[truth * labels_.size() + predicted] += weight;
  total_ += weight;
}

std::uint64_t ConfusionMatrix::at(std::size_t truth, std::size_t predicted) const {
  if (truth >= labels_.size() || predicted >= labels_.size()) {
    throw std::out_of_range("ConfusionMatrix::at: class index out of range");
  }
  return cells_[truth * labels_.size() + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 1.0;
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    correct += cells_[i * labels_.size() + i];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::uint64_t predicted = 0;
  for (std::size_t t = 0; t < labels_.size(); ++t) {
    predicted += at(t, cls);
  }
  if (predicted == 0) return 0.0;
  return static_cast<double>(at(cls, cls)) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::uint64_t actual = 0;
  for (std::size_t p = 0; p < labels_.size(); ++p) {
    actual += at(cls, p);
  }
  if (actual == 0) return 0.0;
  return static_cast<double>(at(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::size_t width = 10;
  for (const auto& label : labels_) width = std::max(width, label.size() + 2);

  std::ostringstream out;
  auto pad = [&](const std::string& s) {
    out << s;
    for (std::size_t i = s.size(); i < width; ++i) out << ' ';
  };

  pad("truth\\pred");
  for (const auto& label : labels_) pad(label);
  out << '\n';
  for (std::size_t t = 0; t < labels_.size(); ++t) {
    pad(labels_[t]);
    for (std::size_t p = 0; p < labels_.size(); ++p) {
      pad(std::to_string(at(t, p)));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace wm::util
