#include "wm/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wm::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string format_percent(double fraction, int decimals) {
  return format("%.*f%%", decimals, fraction * 100.0);
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string_view clipped = text.substr(0, width);
  std::string out(width - clipped.size(), ' ');
  out += clipped;
  return out;
}

}  // namespace wm::util
