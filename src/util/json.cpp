#include "wm/util/json.hpp"

#include <cmath>
#include <cstring>
#include <cstdio>
#include <stdexcept>

namespace wm::util {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("JsonValue: value is not ") + expected);
}

/// Nesting cap for the recursive-descent parser: each level of [ / {
/// costs two native stack frames, so attacker-supplied input (state
/// JSONs ride inside captured traffic) could otherwise overflow the
/// stack long before exhausting memory. 192 levels is far beyond any
/// real Netflix state document and keeps worst-case stack use small.
constexpr int kMaxNestingDepth = 192;

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  /// RAII depth ticket taken by every container frame.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxNestingDepth) {
        parser_.fail("nesting deeper than " +
                     std::to_string(kMaxNestingDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard depth(*this);
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    const DepthGuard depth(*this);
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs stored verbatim).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only legal inside exponents, but accepting them here is
        // harmless: strtod/stoll below reject genuinely malformed text.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    try {
      if (is_double) return JsonValue(std::stod(token));
      return JsonValue(static_cast<std::int64_t>(std::stoll(token)));
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
  }

  // wm-lint: allow(borrow): parser is stack-local inside parse(); the
  // input string outlives it by construction.
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  type_error("a bool");
}

std::int64_t JsonValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  type_error("an integer");
}

double JsonValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  type_error("a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("a string");
}

const JsonArray& JsonValue::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("an array");
}

JsonArray& JsonValue::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("an array");
}

const JsonObject& JsonValue::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("an object");
}

JsonObject& JsonValue::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("an object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("JsonValue::at: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string newline = indent > 0 ? "\n" : "";
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* colon = indent > 0 ? ": " : ":";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(as_int());
  } else if (is_double()) {
    const double d = std::get<double>(value_);
    if (!std::isfinite(d)) {
      throw std::runtime_error("JsonValue::dump: non-finite number");
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
    // Keep the double-ness visible so dump/parse round-trips types:
    // "1.0" must not come back as the integer 1.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
        std::string::npos) {
      out += ".0";
    }
  } else if (is_string()) {
    out += '"';
    out += json_escape(as_string());
    out += '"';
  } else if (is_array()) {
    const JsonArray& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += newline;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += newline;
    }
    out += pad_close;
    out += ']';
  } else {
    const JsonObject& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += newline;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      out += '"';
      out += json_escape(key);
      out += '"';
      out += colon;
      value.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += newline;
    }
    out += pad_close;
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace wm::util
