#include "wm/util/buffer_pool.hpp"

namespace wm::util {

BufferPool::BufferPool(std::size_t slab_size, std::size_t max_retained)
    : pool_(max_retained), slab_size_(slab_size) {}

BufferPool::Slab BufferPool::acquire() {
  Slab slab = pool_.acquire();
  slab->clear();  // capacity survives clear(): recycled slabs stay warm
  slab->reserve(slab_size_);
  return slab;
}

}  // namespace wm::util
