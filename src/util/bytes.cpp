#include "wm/util/bytes.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wm::util {

std::size_t read_exact(std::istream& in, std::uint8_t* dst, std::size_t count) {
  // The one blessed uint8_t* -> char* bridge for stream input.
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(count));
  return static_cast<std::size_t>(in.gcount());
}

void write_all(std::ostream& out, BytesView data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::string_view as_chars(BytesView data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

BytesView as_bytes(std::string_view text) {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int high = -1;
  for (char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') continue;
    const int v = hex_value(c);
    if (v < 0) throw std::invalid_argument("from_hex: non-hex character");
    if (high < 0) {
      high = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((high << 4) | v));
      high = -1;
    }
  }
  if (high >= 0) throw std::invalid_argument("from_hex: odd number of hex digits");
  return out;
}

std::string hex_dump(BytesView data, std::size_t bytes_per_line) {
  if (bytes_per_line == 0) bytes_per_line = 16;
  std::ostringstream out;
  for (std::size_t offset = 0; offset < data.size(); offset += bytes_per_line) {
    char header[24];
    std::snprintf(header, sizeof header, "%08zx  ", offset);
    out << header;
    const std::size_t line = std::min(bytes_per_line, data.size() - offset);
    for (std::size_t i = 0; i < bytes_per_line; ++i) {
      if (i < line) {
        const std::uint8_t b = data[offset + i];
        out << kHexDigits[b >> 4] << kHexDigits[b & 0x0f] << ' ';
      } else {
        out << "   ";
      }
    }
    out << ' ';
    for (std::size_t i = 0; i < line; ++i) {
      const char c = static_cast<char>(data[offset + i]);
      out << (std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out << '\n';
  }
  return out.str();
}

OutOfBoundsError::OutOfBoundsError(std::size_t requested, std::size_t available)
    : requested_(requested), available_(available) {
  std::ostringstream msg;
  msg << "ByteReader: requested " << requested << " byte(s) but only " << available
      << " remain";
  message_ = msg.str();
}

void ByteReader::require(std::size_t count) const {
  if (count > remaining()) throw OutOfBoundsError(count, remaining());
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) throw OutOfBoundsError(offset, data_.size());
  pos_ = offset;
}

void ByteReader::skip(std::size_t count) {
  require(count);
  pos_ += count;
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16_be() {
  require(2);
  const auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint16_t ByteReader::read_u16_le() {
  require(2);
  const auto v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u24_be() {
  require(3);
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::read_u32_be() {
  require(4);
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint32_t ByteReader::read_u32_le() {
  require(4);
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64_be() {
  const std::uint64_t high = read_u32_be();
  const std::uint64_t low = read_u32_be();
  return (high << 32) | low;
}

std::uint64_t ByteReader::read_u64_le() {
  const std::uint64_t low = read_u32_le();
  const std::uint64_t high = read_u32_le();
  return (high << 32) | low;
}

BytesView ByteReader::read_view(std::size_t count) {
  require(count);
  BytesView view = data_.subspan(pos_, count);
  pos_ += count;
  return view;
}

Bytes ByteReader::read_bytes(std::size_t count) {
  BytesView view = read_view(count);
  return Bytes(view.begin(), view.end());
}

std::uint8_t ByteReader::peek_u8() const {
  require(1);
  return data_[pos_];
}

std::uint16_t ByteReader::peek_u16_be() const {
  require(2);
  return static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
}

void ByteWriter::write_u8(std::uint8_t value) { buffer_.push_back(value); }

void ByteWriter::write_u16_be(std::uint16_t value) {
  buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void ByteWriter::write_u16_le(std::uint16_t value) {
  buffer_.push_back(static_cast<std::uint8_t>(value & 0xff));
  buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void ByteWriter::write_u24_be(std::uint32_t value) {
  buffer_.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
  buffer_.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
  buffer_.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void ByteWriter::write_u32_be(std::uint32_t value) {
  write_u16_be(static_cast<std::uint16_t>(value >> 16));
  write_u16_be(static_cast<std::uint16_t>(value & 0xffff));
}

void ByteWriter::write_u32_le(std::uint32_t value) {
  write_u16_le(static_cast<std::uint16_t>(value & 0xffff));
  write_u16_le(static_cast<std::uint16_t>(value >> 16));
}

void ByteWriter::write_u64_be(std::uint64_t value) {
  write_u32_be(static_cast<std::uint32_t>(value >> 32));
  write_u32_be(static_cast<std::uint32_t>(value & 0xffffffffu));
}

void ByteWriter::write_u64_le(std::uint64_t value) {
  write_u32_le(static_cast<std::uint32_t>(value & 0xffffffffu));
  write_u32_le(static_cast<std::uint32_t>(value >> 32));
}

void ByteWriter::write_bytes(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::write_repeated(std::uint8_t fill, std::size_t count) {
  buffer_.insert(buffer_.end(), count, fill);
}

void ByteWriter::patch_u16_be(std::size_t offset, std::uint16_t value) {
  if (offset + 2 > buffer_.size()) throw OutOfBoundsError(offset + 2, buffer_.size());
  buffer_[offset] = static_cast<std::uint8_t>(value >> 8);
  buffer_[offset + 1] = static_cast<std::uint8_t>(value & 0xff);
}

Bytes ByteWriter::take() {
  Bytes out = std::move(buffer_);
  buffer_.clear();
  return out;
}

}  // namespace wm::util
