#include "wm/util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wm::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 uniform mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::categorical: all weights are zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underflow fallback: return last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::int64_t Rng::clamped_normal_int(double mean, double stddev, std::int64_t lo,
                                     std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::clamped_normal_int: lo > hi");
  const double sample = normal(mean, stddev);
  const auto rounded = static_cast<std::int64_t>(std::llround(sample));
  if (rounded < lo) return lo;
  if (rounded > hi) return hi;
  return rounded;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace wm::util
