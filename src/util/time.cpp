#include "wm/util/time.hpp"

#include <cmath>
#include <cstdio>

namespace wm::util {

Duration Duration::from_seconds(double s) {
  return Duration::nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

Duration Duration::operator*(double k) const {
  return Duration::nanos(
      static_cast<std::int64_t>(std::llround(static_cast<double>(nanos_) * k)));
}

std::string Duration::to_string() const {
  char buf[48];
  const std::int64_t abs_ns = nanos_ < 0 ? -nanos_ : nanos_;
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(nanos_) / 1e9);
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(nanos_) / 1e6);
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(nanos_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(nanos_));
  }
  return buf;
}

SimTime SimTime::from_seconds(double s) {
  return SimTime::from_nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string SimTime::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.3fs", to_seconds());
  return buf;
}

}  // namespace wm::util
