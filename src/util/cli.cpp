#include "wm/util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "wm/util/strings.hpp"

namespace wm::util {

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)), description_(std::move(description)) {}

void CliParser::add_string(std::string name, std::string help,
                           std::optional<std::string> default_value) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.required = !default_value.has_value();
  flag.value = std::move(default_value);
  flags_[std::move(name)] = std::move(flag);
}

void CliParser::add_int(std::string name, std::string help,
                        std::optional<std::int64_t> default_value) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.required = !default_value.has_value();
  if (default_value) flag.value = std::to_string(*default_value);
  flags_[std::move(name)] = std::move(flag);
}

void CliParser::add_double(std::string name, std::string help,
                           std::optional<double> default_value) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.required = !default_value.has_value();
  if (default_value) flag.value = format("%g", *default_value);
  flags_[std::move(name)] = std::move(flag);
}

void CliParser::add_bool(std::string name, std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.required = false;
  flag.value = "false";
  flags_[std::move(name)] = std::move(flag);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      name = std::string(body.substr(0, eq));
      inline_value = std::string(body.substr(eq + 1));
    } else {
      name = std::string(body);
    }

    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::runtime_error("unknown flag --" + name + "\n" + usage());
    }
    Flag& flag = it->second;
    flag.seen = true;
    if (flag.type == Type::kBool) {
      flag.value = inline_value.value_or("true");
      continue;
    }
    if (inline_value) {
      flag.value = std::move(inline_value);
    } else {
      if (i + 1 >= argc) {
        throw std::runtime_error("flag --" + name + " expects a value");
      }
      flag.value = argv[++i];
    }
  }

  for (const auto& [name, flag] : flags_) {
    if (flag.required && !flag.value) {
      throw std::runtime_error("missing required flag --" + name + "\n" + usage());
    }
  }
  return true;
}

const CliParser::Flag& CliParser::find(std::string_view name, Type expected) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("CliParser: flag --" + std::string(name) +
                           " was never registered");
  }
  if (it->second.type != expected) {
    throw std::logic_error("CliParser: flag --" + std::string(name) +
                           " accessed with the wrong type");
  }
  return it->second;
}

std::string CliParser::get_string(std::string_view name) const {
  return *find(name, Type::kString).value;
}

std::int64_t CliParser::get_int(std::string_view name) const {
  const Flag& flag = find(name, Type::kInt);
  try {
    return std::stoll(*flag.value);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + std::string(name) + ": '" + *flag.value +
                             "' is not an integer");
  }
}

double CliParser::get_double(std::string_view name) const {
  const Flag& flag = find(name, Type::kDouble);
  try {
    return std::stod(*flag.value);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + std::string(name) + ": '" + *flag.value +
                             "' is not a number");
  }
}

bool CliParser::get_bool(std::string_view name) const {
  const Flag& flag = find(name, Type::kBool);
  return *flag.value == "true" || *flag.value == "1";
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_name_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << pad_right(name, 24) << flag.help;
    if (flag.required) {
      out << " (required)";
    } else if (flag.type != Type::kBool && flag.value) {
      out << " (default: " << *flag.value << ")";
    }
    out << '\n';
  }
  out << "  --" << pad_right("help", 24) << "show this message\n";
  return out.str();
}

}  // namespace wm::util
