#include "wm/util/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wm::util {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), valid_(other.valid_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.valid_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    valid_ = other.valid_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.valid_ = false;
  }
  return *this;
}

void MappedFile::reset() noexcept {
#if WM_HAVE_MMAP
  if (data_ != nullptr) munmap(data_, size_);
#endif
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

MappedFile MappedFile::open(const std::filesystem::path& path) {
  MappedFile mapped;
#if WM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return mapped;
  struct stat st{};
  if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return mapped;
  }
  if (st.st_size == 0) {
    // mmap(0) is invalid; an empty file is simply a valid empty view.
    ::close(fd);
    mapped.valid_ = true;
    return mapped;
  }
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  // Every consumer sweeps the whole file front to back, so prefault the
  // page tables in one batched kernel pass instead of taking a soft
  // fault every 4 KiB of the parse loop (for page-cache-resident
  // captures the faults, not the parsing, would dominate).
  flags |= MAP_POPULATE;
#endif
  void* addr = mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                    flags, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) return mapped;
#ifdef MADV_SEQUENTIAL
  // Capture parsing is one front-to-back sweep; let readahead run hot.
  madvise(addr, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
#endif
  mapped.data_ = addr;
  mapped.size_ = static_cast<std::size_t>(st.st_size);
  mapped.valid_ = true;
#else
  (void)path;
#endif
  return mapped;
}

}  // namespace wm::util
