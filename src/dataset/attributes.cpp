#include "wm/dataset/attributes.hpp"

#include <array>

#include "wm/util/strings.hpp"

namespace wm::dataset {

std::string to_string(AgeGroup value) {
  switch (value) {
    case AgeGroup::kUnder20: return "<20";
    case AgeGroup::k20To25: return "20-25";
    case AgeGroup::k25To30: return "25-30";
    case AgeGroup::kOver30: return ">30";
  }
  return "?";
}

std::string to_string(Gender value) {
  switch (value) {
    case Gender::kMale: return "Male";
    case Gender::kFemale: return "Female";
    case Gender::kUndisclosed: return "Undisclosed";
  }
  return "?";
}

std::string to_string(PoliticalAlignment value) {
  switch (value) {
    case PoliticalAlignment::kLiberal: return "Liberal";
    case PoliticalAlignment::kCentrist: return "Centrist";
    case PoliticalAlignment::kCommunist: return "Communist";
    case PoliticalAlignment::kUndisclosed: return "Undisclosed";
  }
  return "?";
}

std::string to_string(StateOfMind value) {
  switch (value) {
    case StateOfMind::kHappy: return "Happy";
    case StateOfMind::kStressed: return "Stressed";
    case StateOfMind::kSad: return "Sad";
    case StateOfMind::kUndisclosed: return "Undisclosed";
  }
  return "?";
}

namespace {

template <typename Enum, std::size_t N>
std::optional<Enum> parse_enum(std::string_view text,
                               const std::array<Enum, N>& values) {
  for (Enum value : values) {
    if (util::iequals(text, to_string(value))) return value;
  }
  return std::nullopt;
}

template <typename Enum, std::size_t N>
std::optional<Enum> parse_enum_sim(std::string_view text,
                                   const std::array<Enum, N>& values) {
  for (Enum value : values) {
    if (util::iequals(text, sim::to_string(value))) return value;
  }
  return std::nullopt;
}

}  // namespace

std::optional<AgeGroup> parse_age_group(std::string_view text) {
  return parse_enum(text, std::array{AgeGroup::kUnder20, AgeGroup::k20To25,
                                     AgeGroup::k25To30, AgeGroup::kOver30});
}

std::optional<Gender> parse_gender(std::string_view text) {
  return parse_enum(text,
                    std::array{Gender::kMale, Gender::kFemale, Gender::kUndisclosed});
}

std::optional<PoliticalAlignment> parse_political(std::string_view text) {
  return parse_enum(
      text, std::array{PoliticalAlignment::kLiberal, PoliticalAlignment::kCentrist,
                       PoliticalAlignment::kCommunist,
                       PoliticalAlignment::kUndisclosed});
}

std::optional<StateOfMind> parse_state_of_mind(std::string_view text) {
  return parse_enum(text, std::array{StateOfMind::kHappy, StateOfMind::kStressed,
                                     StateOfMind::kSad, StateOfMind::kUndisclosed});
}

std::optional<sim::OperatingSystem> parse_os(std::string_view text) {
  return parse_enum_sim(
      text, std::array{sim::OperatingSystem::kWindows, sim::OperatingSystem::kLinux,
                       sim::OperatingSystem::kMac});
}

std::optional<sim::Platform> parse_platform(std::string_view text) {
  return parse_enum_sim(text,
                        std::array{sim::Platform::kDesktop, sim::Platform::kLaptop});
}

std::optional<sim::TrafficCondition> parse_traffic(std::string_view text) {
  return parse_enum_sim(
      text, std::array{sim::TrafficCondition::kMorning, sim::TrafficCondition::kNoon,
                       sim::TrafficCondition::kNight});
}

std::optional<sim::ConnectionType> parse_connection(std::string_view text) {
  return parse_enum_sim(text, std::array{sim::ConnectionType::kWired,
                                         sim::ConnectionType::kWireless});
}

std::optional<sim::Browser> parse_browser(std::string_view text) {
  return parse_enum_sim(text,
                        std::array{sim::Browser::kChrome, sim::Browser::kFirefox});
}

std::vector<Viewer> sample_cohort(std::size_t count, util::Rng& rng) {
  std::vector<Viewer> out;
  out.reserve(count);

  // Weights resembling a university volunteer pool.
  const std::array<double, 4> age_weights{0.18, 0.46, 0.24, 0.12};
  const std::array<double, 3> gender_weights{0.55, 0.38, 0.07};
  const std::array<double, 4> political_weights{0.30, 0.27, 0.13, 0.30};
  const std::array<double, 4> mood_weights{0.40, 0.30, 0.12, 0.18};

  const std::array<double, 3> os_weights{0.42, 0.38, 0.20};
  const std::array<double, 2> platform_weights{0.55, 0.45};
  const std::array<double, 3> traffic_weights{0.30, 0.36, 0.34};
  const std::array<double, 2> connection_weights{0.52, 0.48};
  const std::array<double, 2> browser_weights{0.57, 0.43};

  for (std::size_t i = 0; i < count; ++i) {
    Viewer viewer;
    viewer.id = static_cast<std::uint32_t>(i + 1);
    viewer.operational.os =
        static_cast<sim::OperatingSystem>(rng.categorical(os_weights));
    viewer.operational.platform =
        static_cast<sim::Platform>(rng.categorical(platform_weights));
    viewer.operational.traffic =
        static_cast<sim::TrafficCondition>(rng.categorical(traffic_weights));
    viewer.operational.connection =
        static_cast<sim::ConnectionType>(rng.categorical(connection_weights));
    viewer.operational.browser =
        static_cast<sim::Browser>(rng.categorical(browser_weights));

    viewer.behavioral.age = static_cast<AgeGroup>(rng.categorical(age_weights));
    viewer.behavioral.gender = static_cast<Gender>(rng.categorical(gender_weights));
    viewer.behavioral.political =
        static_cast<PoliticalAlignment>(rng.categorical(political_weights));
    viewer.behavioral.mood = static_cast<StateOfMind>(rng.categorical(mood_weights));
    out.push_back(viewer);
  }
  return out;
}

}  // namespace wm::dataset
