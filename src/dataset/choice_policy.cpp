#include "wm/dataset/choice_policy.hpp"

#include <algorithm>

namespace wm::dataset {

double default_probability(const BehavioralAttributes& behavioral,
                           std::size_t question_index) {
  // Base rate: viewers slightly favour the highlighted default.
  double p = 0.58;

  // Age: older viewers are more default-prone (less exploratory).
  switch (behavioral.age) {
    case AgeGroup::kUnder20: p -= 0.10; break;
    case AgeGroup::k20To25: p -= 0.04; break;
    case AgeGroup::k25To30: p += 0.03; break;
    case AgeGroup::kOver30: p += 0.10; break;
  }

  // Mood: stress and sadness push toward impulsive non-default picks.
  switch (behavioral.mood) {
    case StateOfMind::kHappy: p += 0.05; break;
    case StateOfMind::kStressed: p -= 0.09; break;
    case StateOfMind::kSad: p -= 0.05; break;
    case StateOfMind::kUndisclosed: break;
  }

  // Politics: mild exploratory tilt for non-centrists.
  switch (behavioral.political) {
    case PoliticalAlignment::kLiberal: p -= 0.03; break;
    case PoliticalAlignment::kCentrist: p += 0.05; break;
    case PoliticalAlignment::kCommunist: p -= 0.04; break;
    case PoliticalAlignment::kUndisclosed: break;
  }

  // Gender has no modelled effect (kept explicit for documentation).
  (void)behavioral.gender;

  // Late questions are the high-stakes ones; everyone becomes a little
  // more deliberate (less default-prone) as stakes rise.
  if (question_index >= 9) p -= 0.06;

  return std::clamp(p, 0.05, 0.95);
}

std::vector<story::Choice> draw_choices(const story::StoryGraph& graph,
                                        const BehavioralAttributes& behavioral,
                                        util::Rng& rng) {
  const std::size_t budget = graph.max_questions() + 4;
  std::vector<story::Choice> out;
  out.reserve(budget);
  for (std::size_t q = 1; q <= budget; ++q) {
    const double p = default_probability(behavioral, q);
    out.push_back(rng.bernoulli(p) ? story::Choice::kDefault
                                   : story::Choice::kNonDefault);
  }
  return out;
}

}  // namespace wm::dataset
