#include "wm/dataset/builder.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "wm/dataset/choice_policy.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/util/csv.hpp"
#include "wm/util/json.hpp"
#include "wm/util/log.hpp"
#include "wm/util/strings.hpp"

namespace wm::dataset {

namespace fs = std::filesystem;
using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

void generate_dataset(const story::StoryGraph& graph, const DatasetConfig& config,
                      const std::function<void(DataPoint&&)>& sink) {
  util::Rng cohort_rng(config.seed);
  const std::vector<Viewer> cohort = sample_cohort(config.viewer_count, cohort_rng);

  for (const Viewer& viewer : cohort) {
    util::Rng viewer_rng(config.seed ^ (0x9e3779b97f4a7c15ull * viewer.id));
    const std::vector<story::Choice> choices =
        draw_choices(graph, viewer.behavioral, viewer_rng);

    sim::SessionConfig session_config;
    session_config.conditions = viewer.operational;
    session_config.streaming = config.streaming;
    session_config.packetize = config.packetize;
    session_config.seed = viewer_rng.next_u64();

    DataPoint point;
    point.viewer = viewer;
    point.session = sim::simulate_session(graph, choices, session_config);
    sink(std::move(point));
  }
}

std::vector<DataPoint> generate_dataset(const story::StoryGraph& graph,
                                        const DatasetConfig& config) {
  std::vector<DataPoint> out;
  out.reserve(config.viewer_count);
  generate_dataset(graph, config,
                   [&out](DataPoint&& point) { out.push_back(std::move(point)); });
  return out;
}

std::string ground_truth_to_json(const Viewer& viewer,
                                 const sim::SessionGroundTruth& truth,
                                 const story::StoryGraph& graph) {
  JsonObject root;
  root["viewer_id"] = JsonValue(static_cast<std::int64_t>(viewer.id));
  root["reached_ending"] = JsonValue(truth.reached_ending);

  JsonArray questions;
  for (const sim::QuestionOutcome& q : truth.questions) {
    JsonObject obj;
    obj["index"] = JsonValue(static_cast<std::int64_t>(q.index));
    obj["segment"] = JsonValue(graph.segment(q.segment).name);
    obj["prompt"] = JsonValue(q.prompt);
    obj["choice"] = JsonValue(story::to_string(q.choice));
    obj["question_time_s"] = JsonValue(q.question_time.to_seconds());
    obj["decision_time_s"] = JsonValue(q.decision_time.to_seconds());
    questions.emplace_back(std::move(obj));
  }
  root["questions"] = JsonValue(std::move(questions));

  JsonArray path;
  for (story::SegmentId id : truth.path) {
    path.emplace_back(graph.segment(id).name);
  }
  root["path"] = JsonValue(std::move(path));
  return JsonValue(std::move(root)).dump(2);
}

sim::SessionGroundTruth ground_truth_from_json(const std::string& text) {
  const JsonValue root = JsonValue::parse(text);
  sim::SessionGroundTruth truth;
  truth.reached_ending = root.at("reached_ending").as_bool();
  for (const JsonValue& item : root.at("questions").as_array()) {
    sim::QuestionOutcome q;
    q.index = static_cast<std::size_t>(item.at("index").as_int());
    q.prompt = item.at("prompt").as_string();
    q.choice = item.at("choice").as_string() == "default"
                   ? story::Choice::kDefault
                   : story::Choice::kNonDefault;
    q.question_time = util::SimTime::from_seconds(
        item.at("question_time_s").as_double());
    q.decision_time = util::SimTime::from_seconds(
        item.at("decision_time_s").as_double());
    truth.questions.push_back(std::move(q));
  }
  // Path is stored by name; ids are not reconstructible without the
  // graph, so the loader leaves `path` empty. Choices are the payload.
  return truth;
}

std::size_t write_dataset(const fs::path& dir, const story::StoryGraph& graph,
                          const DatasetConfig& config) {
  fs::create_directories(dir / "traces");
  fs::create_directories(dir / "truth");

  std::ofstream viewers_csv(dir / "viewers.csv");
  if (!viewers_csv) {
    throw std::runtime_error("write_dataset: cannot create viewers.csv");
  }
  util::CsvWriter csv(viewers_csv);
  csv.write_row({"viewer_id", "os", "platform", "traffic", "connection", "browser",
                 "age_group", "gender", "political", "state_of_mind"});

  JsonArray index;
  std::size_t written = 0;

  generate_dataset(graph, config, [&](DataPoint&& point) {
    const Viewer& v = point.viewer;
    const std::string stem = util::format("viewer_%03u", v.id);
    const bool ng = config.capture_format == CaptureFormat::kPcapng;
    const fs::path trace_file =
        dir / "traces" / (stem + (ng ? ".pcapng" : ".pcap"));
    const fs::path truth_file = dir / "truth" / (stem + ".json");

    if (ng) {
      net::write_pcapng(trace_file, point.session.capture.packets);
    } else {
      net::write_pcap(trace_file, point.session.capture.packets);
    }
    std::ofstream truth_out(truth_file);
    truth_out << ground_truth_to_json(v, point.session.truth, graph) << '\n';

    csv.row()
        .add(static_cast<std::int64_t>(v.id))
        .add(sim::to_string(v.operational.os))
        .add(sim::to_string(v.operational.platform))
        .add(sim::to_string(v.operational.traffic))
        .add(sim::to_string(v.operational.connection))
        .add(sim::to_string(v.operational.browser))
        .add(to_string(v.behavioral.age))
        .add(to_string(v.behavioral.gender))
        .add(to_string(v.behavioral.political))
        .add(to_string(v.behavioral.mood))
        .end();

    JsonObject entry;
    entry["viewer_id"] = JsonValue(static_cast<std::int64_t>(v.id));
    entry["trace"] = JsonValue("traces/" + stem + (ng ? ".pcapng" : ".pcap"));
    entry["truth"] = JsonValue("truth/" + stem + ".json");
    entry["os"] = JsonValue(sim::to_string(v.operational.os));
    entry["platform"] = JsonValue(sim::to_string(v.operational.platform));
    entry["traffic"] = JsonValue(sim::to_string(v.operational.traffic));
    entry["connection"] = JsonValue(sim::to_string(v.operational.connection));
    entry["browser"] = JsonValue(sim::to_string(v.operational.browser));
    entry["age_group"] = JsonValue(to_string(v.behavioral.age));
    entry["gender"] = JsonValue(to_string(v.behavioral.gender));
    entry["political"] = JsonValue(to_string(v.behavioral.political));
    entry["state_of_mind"] = JsonValue(to_string(v.behavioral.mood));
    index.emplace_back(std::move(entry));

    ++written;
    WM_LOG(Info) << "dataset: wrote " << stem << " ("
                 << point.session.capture.packets.size() << " packets)";
  });

  JsonObject manifest;
  manifest["name"] = JsonValue("IITM-Bandersnatch (synthetic reproduction)");
  manifest["film"] = JsonValue(graph.title());
  manifest["viewer_count"] = JsonValue(static_cast<std::int64_t>(written));
  manifest["seed"] = JsonValue(static_cast<std::int64_t>(config.seed));
  manifest["viewers"] = JsonValue(std::move(index));
  std::ofstream manifest_out(dir / "manifest.json");
  manifest_out << JsonValue(std::move(manifest)).dump(2) << '\n';
  return written;
}

std::vector<DatasetIndexEntry> read_manifest(const fs::path& dir) {
  std::ifstream in(dir / "manifest.json");
  if (!in) {
    throw std::runtime_error("read_manifest: cannot open " +
                             (dir / "manifest.json").string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = JsonValue::parse(buffer.str());

  std::vector<DatasetIndexEntry> out;
  for (const JsonValue& item : root.at("viewers").as_array()) {
    DatasetIndexEntry entry;
    entry.viewer.id = static_cast<std::uint32_t>(item.at("viewer_id").as_int());
    entry.trace_file = dir / item.at("trace").as_string();
    entry.truth_file = dir / item.at("truth").as_string();

    auto require = [](auto parsed, const char* what) {
      if (!parsed) {
        throw std::runtime_error(std::string("read_manifest: bad ") + what);
      }
      return *parsed;
    };
    entry.viewer.operational.os = require(parse_os(item.at("os").as_string()), "os");
    entry.viewer.operational.platform =
        require(parse_platform(item.at("platform").as_string()), "platform");
    entry.viewer.operational.traffic =
        require(parse_traffic(item.at("traffic").as_string()), "traffic");
    entry.viewer.operational.connection =
        require(parse_connection(item.at("connection").as_string()), "connection");
    entry.viewer.operational.browser =
        require(parse_browser(item.at("browser").as_string()), "browser");
    entry.viewer.behavioral.age =
        require(parse_age_group(item.at("age_group").as_string()), "age_group");
    entry.viewer.behavioral.gender =
        require(parse_gender(item.at("gender").as_string()), "gender");
    entry.viewer.behavioral.political =
        require(parse_political(item.at("political").as_string()), "political");
    entry.viewer.behavioral.mood = require(
        parse_state_of_mind(item.at("state_of_mind").as_string()), "state_of_mind");
    out.push_back(std::move(entry));
  }
  return out;
}

sim::SessionGroundTruth read_ground_truth(const fs::path& truth_file) {
  std::ifstream in(truth_file);
  if (!in) {
    throw std::runtime_error("read_ground_truth: cannot open " + truth_file.string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ground_truth_from_json(buffer.str());
}

}  // namespace wm::dataset
