#include "wm/counter/eval.hpp"

#include "wm/core/engine/source.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/util/log.hpp"

namespace wm::counter {

CountermeasureRun evaluate_countermeasure(
    const story::StoryGraph& graph, const std::string& name,
    const sim::ClientPayloadTransform& transform,
    const CountermeasureEvalConfig& config) {
  CountermeasureRun run;
  run.name = name;

  // --- Generate protected sessions ----------------------------------
  util::Rng rng(config.seed);
  const std::size_t total = config.calibration_sessions + config.eval_sessions;
  std::vector<dataset::Viewer> cohort = dataset::sample_cohort(total, rng);

  std::vector<core::CalibrationSession> calibration;
  struct EvalSession {
    std::vector<net::Packet> packets;
    sim::SessionGroundTruth truth;
  };
  std::vector<EvalSession> eval_sessions;

  for (std::size_t i = 0; i < cohort.size(); ++i) {
    util::Rng viewer_rng(config.seed ^ (0xa5a5a5a5ull + i * 0x9e3779b9ull));
    const auto choices =
        dataset::draw_choices(graph, cohort[i].behavioral, viewer_rng);

    sim::SessionConfig session_config;
    session_config.conditions = config.conditions;
    session_config.streaming = config.streaming;
    session_config.packetize.client_transform = transform;
    session_config.seed = viewer_rng.next_u64();

    sim::SessionResult result = sim::simulate_session(graph, choices, session_config);
    if (i < config.calibration_sessions) {
      calibration.push_back(core::CalibrationSession{
          std::move(result.capture.packets), std::move(result.truth)});
    } else {
      eval_sessions.push_back(EvalSession{std::move(result.capture.packets),
                                          std::move(result.truth)});
    }
  }

  // --- Record-length attack (attacker re-calibrates on protected
  // traces) ------------------------------------------------------------
  core::AttackPipeline pipeline("interval");
  bool calibrated = false;
  try {
    pipeline.calibrate(calibration);
    calibrated = true;
    const auto& interval =
        dynamic_cast<const core::IntervalClassifier&>(pipeline.classifier());
    run.classifier_bands_overlap = interval.bands_overlap();
  } catch (const std::invalid_argument& e) {
    WM_LOG(Info) << "countermeasure '" << name
                 << "': calibration impossible: " << e.what();
    run.classifier_bands_overlap = true;
  }

  std::vector<core::SessionScore> length_scores;
  std::vector<core::SessionScore> timing_scores;
  for (const EvalSession& session : eval_sessions) {
    if (calibrated) {
      engine::VectorSource source(&session.packets);
      length_scores.push_back(core::score_session(
          session.truth, pipeline.infer(source).combined));
    } else {
      // No usable bands: the attack detects nothing.
      core::InferredSession empty;
      length_scores.push_back(core::score_session(session.truth, empty));
    }

    TimingAttackConfig timing_config;
    timing_config.chunk_cadence_s = config.streaming.chunk_seconds;
    const TimingInference timing = timing_attack(session.packets, timing_config);
    timing_scores.push_back(core::score_session(session.truth, timing.session));
  }
  run.length_attack = core::aggregate_scores(length_scores);
  run.timing_attack = core::aggregate_scores(timing_scores);

  // Chance level: the better of always-default / always-non-default.
  {
    std::size_t questions = 0;
    std::size_t defaults = 0;
    for (const EvalSession& session : eval_sessions) {
      for (const auto& q : session.truth.questions) {
        ++questions;
        if (q.choice == story::Choice::kDefault) ++defaults;
      }
    }
    if (questions > 0) {
      const double default_rate =
          static_cast<double>(defaults) / static_cast<double>(questions);
      run.blind_guess_accuracy = std::max(default_rate, 1.0 - default_rate);
    }
  }

  // --- Byte overhead of the countermeasure ---------------------------
  {
    const sim::TrafficProfile profile =
        sim::make_traffic_profile(sim::OperationalConditions{});
    util::Rng overhead_rng(config.seed + 13);
    double original = 0.0;
    double transformed = 0.0;
    const sim::ClientPayloadTransform& t =
        transform ? transform : identity_transform();
    for (sim::ClientMessageKind kind :
         {sim::ClientMessageKind::kType1Json, sim::ClientMessageKind::kType2Json,
          sim::ClientMessageKind::kTelemetry, sim::ClientMessageKind::kLogBatch}) {
      for (int i = 0; i < 200; ++i) {
        const std::size_t size = profile.sample_plaintext(kind, overhead_rng);
        original += static_cast<double>(size);
        for (std::size_t piece : t(kind, size)) {
          transformed += static_cast<double>(piece);
        }
      }
    }
    run.overhead_fraction = original > 0.0 ? transformed / original - 1.0 : 0.0;
  }

  return run;
}

}  // namespace wm::counter
