#include "wm/counter/timing_attack.hpp"

#include <algorithm>

namespace wm::counter {

using core::InferredQuestion;
using core::InferredSession;
using net::FlowDirection;
using tls::ContentType;
using tls::FlowRecordStream;
using util::Duration;
using util::SimTime;

namespace {

/// Client application-record timestamps of one flow.
std::vector<SimTime> client_upload_times(const FlowRecordStream& stream) {
  std::vector<SimTime> out;
  for (const tls::RecordEvent& event : stream.events) {
    if (event.is_client_application_data()) out.push_back(event.timestamp);
  }
  return out;
}

std::uint64_t server_volume(const FlowRecordStream& stream) {
  std::uint64_t total = 0;
  for (const tls::RecordEvent& event : stream.events) {
    if (event.direction == FlowDirection::kServerToClient &&
        event.content_type == ContentType::kApplicationData) {
      total += event.record_length;
    }
  }
  return total;
}

}  // namespace

TimingInference timing_attack(const std::vector<FlowRecordStream>& streams,
                              const TimingAttackConfig& config) {
  TimingInference out;
  if (streams.empty()) return out;

  // Identify roles. CDN: largest server volume. API: among the rest,
  // the flow with the most client uploads (state + telemetry traffic).
  const FlowRecordStream* cdn = nullptr;
  std::uint64_t best_volume = 0;
  for (const FlowRecordStream& stream : streams) {
    const std::uint64_t volume = server_volume(stream);
    if (volume > best_volume) {
      best_volume = volume;
      cdn = &stream;
    }
  }
  if (cdn == nullptr) return out;

  const FlowRecordStream* api = nullptr;
  std::size_t best_uploads = 0;
  for (const FlowRecordStream& stream : streams) {
    if (&stream == cdn) continue;
    const std::size_t uploads = client_upload_times(stream).size();
    if (uploads > best_uploads) {
      best_uploads = uploads;
      api = &stream;
    }
  }

  const std::vector<SimTime> requests = client_upload_times(*cdn);
  const std::vector<SimTime> uploads =
      api ? client_upload_times(*api) : std::vector<SimTime>{};

  // Find runs of prefetch-cadence gaps between consecutive CDN requests.
  const double lo = config.chunk_cadence_s * config.burst_min_fraction;
  const double hi = config.chunk_cadence_s * config.burst_max_fraction;

  struct Window {
    SimTime start;
    SimTime end;
  };
  std::vector<Window> windows;
  std::size_t run_start = 0;
  std::size_t run_length = 0;
  for (std::size_t i = 1; i < requests.size(); ++i) {
    const double gap = (requests[i] - requests[i - 1]).to_seconds();
    if (gap > lo && gap < hi) {
      if (run_length == 0) run_start = i - 1;
      ++run_length;
    } else if (run_length > 0) {
      if (run_length >= config.min_burst_length) {
        windows.push_back(Window{requests[run_start], requests[run_start + run_length]});
      }
      run_length = 0;
    }
  }
  if (run_length >= config.min_burst_length && run_length > 0) {
    windows.push_back(Window{requests[run_start], requests[run_start + run_length]});
  }

  out.windows_detected = windows.size();

  const Duration slack = Duration::from_seconds(config.window_slack_s);
  const Duration extension = Duration::from_seconds(config.search_extension_s);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Window& window = windows[i];
    InferredQuestion question;
    question.index = i + 1;
    question.question_time = window.start;
    question.choice = story::Choice::kDefault;
    // The decision upload can land anywhere inside the UI's choice
    // window, which may outlast the observable prefetch burst (the
    // default branch can run out of chunks to prefetch). Search the
    // full window but never past the next question's own start.
    SimTime search_end = window.end + extension;
    if (i + 1 < windows.size() &&
        windows[i + 1].start - slack < search_end) {
      search_end = windows[i + 1].start - slack;
    }
    for (SimTime upload : uploads) {
      if (upload > window.start + slack && upload <= search_end + slack) {
        question.choice = story::Choice::kNonDefault;
        question.override_time = upload;
        break;
      }
    }
    out.session.questions.push_back(std::move(question));
  }
  return out;
}

TimingInference timing_attack(const std::vector<net::Packet>& packets,
                              const TimingAttackConfig& config) {
  return timing_attack(tls::extract_record_streams(packets), config);
}

}  // namespace wm::counter
