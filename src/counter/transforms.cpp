#include "wm/counter/transforms.hpp"

#include <cmath>
#include <stdexcept>

namespace wm::counter {

using sim::ClientMessageKind;

sim::ClientPayloadTransform identity_transform() {
  return [](ClientMessageKind, std::size_t size) {
    return std::vector<std::size_t>{size};
  };
}

sim::ClientPayloadTransform pad_to_bucket(std::size_t bucket) {
  if (bucket == 0) throw std::invalid_argument("pad_to_bucket: bucket must be > 0");
  return [bucket](ClientMessageKind, std::size_t size) {
    const std::size_t padded = (size + bucket - 1) / bucket * bucket;
    return std::vector<std::size_t>{padded == 0 ? bucket : padded};
  };
}

sim::ClientPayloadTransform split_records(std::size_t piece) {
  if (piece == 0) throw std::invalid_argument("split_records: piece must be > 0");
  return [piece](ClientMessageKind, std::size_t size) {
    std::vector<std::size_t> out;
    while (size > piece) {
      out.push_back(piece);
      size -= piece;
    }
    if (size > 0) out.push_back(size);  // leaky tail
    if (out.empty()) out.push_back(piece);
    return out;
  };
}

sim::ClientPayloadTransform split_and_pad(std::size_t piece) {
  if (piece == 0) throw std::invalid_argument("split_and_pad: piece must be > 0");
  return [piece](ClientMessageKind, std::size_t size) {
    const std::size_t pieces = size == 0 ? 1 : (size + piece - 1) / piece;
    return std::vector<std::size_t>(pieces, piece);
  };
}

sim::ClientPayloadTransform compress(double ratio, double jitter) {
  if (ratio <= 0.0 || ratio > 1.0) {
    throw std::invalid_argument("compress: ratio must be in (0, 1]");
  }
  return [ratio, jitter](ClientMessageKind, std::size_t size) {
    // Deterministic content-dependent wobble: hash the size into a
    // phase so equal-sized payloads compress identically but nearby
    // sizes do not collapse onto one value.
    const double phase =
        std::sin(static_cast<double>(size) * 2.399963) * 0.5 + 0.5;  // [0,1]
    const double effective = ratio * (1.0 - jitter / 2.0 + jitter * phase);
    const auto compressed =
        static_cast<std::size_t>(std::llround(static_cast<double>(size) * effective));
    return std::vector<std::size_t>{std::max<std::size_t>(compressed, 64)};
  };
}

}  // namespace wm::counter
