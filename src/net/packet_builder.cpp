#include "wm/net/packet_builder.hpp"

#include <stdexcept>

#include "wm/net/checksum.hpp"

namespace wm::net {

using util::ByteWriter;
using util::BytesView;

Packet build_tcp_packet(util::SimTime timestamp, MacAddress src_mac,
                        MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                        const TcpHeader& tcp, BytesView payload, std::uint16_t ip_id) {
  // Serialize TCP header + payload first so the pseudo-header checksum
  // can be computed, then patch it in.
  ByteWriter transport;
  tcp.serialize(transport);
  const std::size_t header_len = transport.size();
  transport.write_bytes(payload);
  const std::uint16_t checksum = transport_checksum_v4(
      src_ip, dst_ip, IpProtocolValue{static_cast<std::uint8_t>(IpProtocol::kTcp)},
      transport.view());
  transport.patch_u16_be(16, checksum);  // checksum at offset 16 of TCP header
  (void)header_len;

  EthernetHeader eth;
  eth.destination = dst_mac;
  eth.source = src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.identification = ip_id;
  ip.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  ip.source = src_ip;
  ip.destination = dst_ip;

  ByteWriter frame(EthernetHeader::kSize + Ipv4Header::kMinSize + transport.size());
  eth.serialize(frame);
  ip.serialize(frame, transport.size());
  frame.write_bytes(transport.view());
  return Packet(timestamp, frame.take());
}

Packet build_tcp_packet_v6(util::SimTime timestamp, MacAddress src_mac,
                           MacAddress dst_mac, const Ipv6Address& src_ip,
                           const Ipv6Address& dst_ip, const TcpHeader& tcp,
                           BytesView payload) {
  ByteWriter transport;
  tcp.serialize(transport);
  transport.write_bytes(payload);
  const std::uint16_t checksum = transport_checksum_v6(
      src_ip, dst_ip, IpProtocolValue{static_cast<std::uint8_t>(IpProtocol::kTcp)},
      transport.view());
  transport.patch_u16_be(16, checksum);

  EthernetHeader eth;
  eth.destination = dst_mac;
  eth.source = src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv6);

  Ipv6Header ip;
  ip.next_header = static_cast<std::uint8_t>(IpProtocol::kTcp);
  ip.source = src_ip;
  ip.destination = dst_ip;

  ByteWriter frame(EthernetHeader::kSize + Ipv6Header::kSize + transport.size());
  eth.serialize(frame);
  ip.serialize(frame, transport.size());
  frame.write_bytes(transport.view());
  return Packet(timestamp, frame.take());
}

Packet build_udp_packet(util::SimTime timestamp, MacAddress src_mac,
                        MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                        std::uint16_t src_port, std::uint16_t dst_port,
                        BytesView payload, std::uint16_t ip_id) {
  UdpHeader udp;
  udp.source_port = src_port;
  udp.destination_port = dst_port;

  ByteWriter transport;
  udp.serialize(transport, payload.size());
  transport.write_bytes(payload);
  const std::uint16_t checksum = transport_checksum_v4(
      src_ip, dst_ip, IpProtocolValue{static_cast<std::uint8_t>(IpProtocol::kUdp)},
      transport.view());
  transport.patch_u16_be(6, checksum == 0 ? 0xffff : checksum);

  EthernetHeader eth;
  eth.destination = dst_mac;
  eth.source = src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.identification = ip_id;
  ip.protocol = static_cast<std::uint8_t>(IpProtocol::kUdp);
  ip.source = src_ip;
  ip.destination = dst_ip;

  ByteWriter frame(EthernetHeader::kSize + Ipv4Header::kMinSize + transport.size());
  eth.serialize(frame);
  ip.serialize(frame, transport.size());
  frame.write_bytes(transport.view());
  return Packet(timestamp, frame.take());
}

TcpConnectionBuilder::TcpConnectionBuilder(TcpEndpointConfig client,
                                           TcpEndpointConfig server) {
  client_.config = client;
  client_.next_seq = client.initial_sequence;
  server_.config = server;
  server_.next_seq = server.initial_sequence;
}

TcpConnectionBuilder::Side& TcpConnectionBuilder::side(FlowDirection direction) {
  return direction == FlowDirection::kClientToServer ? client_ : server_;
}

TcpConnectionBuilder::Side& TcpConnectionBuilder::peer(FlowDirection direction) {
  return direction == FlowDirection::kClientToServer ? server_ : client_;
}

void TcpConnectionBuilder::emit_segment(FlowDirection direction,
                                        util::SimTime timestamp,
                                        const TcpHeader& header, BytesView payload) {
  const Side& from = side(direction);
  const Side& to = peer(direction);
  packets_.push_back(build_tcp_packet(timestamp, from.config.mac, to.config.mac,
                                      from.config.ip, to.config.ip, header, payload,
                                      next_ip_id_++));
}

void TcpConnectionBuilder::handshake(util::SimTime syn_time, util::Duration rtt) {
  const util::Duration half_rtt = rtt * 0.5;

  TcpHeader syn;
  syn.source_port = client_.config.port;
  syn.destination_port = server_.config.port;
  syn.sequence = client_.next_seq;
  syn.syn = true;
  syn.window = client_.config.window;
  emit_segment(FlowDirection::kClientToServer, syn_time, syn, {});
  client_.next_seq += 1;

  TcpHeader syn_ack;
  syn_ack.source_port = server_.config.port;
  syn_ack.destination_port = client_.config.port;
  syn_ack.sequence = server_.next_seq;
  syn_ack.ack_number = client_.next_seq;
  syn_ack.syn = true;
  syn_ack.ack = true;
  syn_ack.window = server_.config.window;
  emit_segment(FlowDirection::kServerToClient, syn_time + half_rtt, syn_ack, {});
  server_.next_seq += 1;

  TcpHeader final_ack;
  final_ack.source_port = client_.config.port;
  final_ack.destination_port = server_.config.port;
  final_ack.sequence = client_.next_seq;
  final_ack.ack_number = server_.next_seq;
  final_ack.ack = true;
  final_ack.window = client_.config.window;
  emit_segment(FlowDirection::kClientToServer, syn_time + rtt, final_ack, {});
}

void TcpConnectionBuilder::send(FlowDirection direction, util::SimTime timestamp,
                                BytesView data, util::Duration inter_packet_gap) {
  Side& from = side(direction);
  const Side& to = peer(direction);
  util::SimTime when = timestamp;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(from.config.mss, data.size() - offset);
    TcpHeader header;
    header.source_port = from.config.port;
    header.destination_port = to.config.port;
    header.sequence = from.next_seq;
    header.ack_number = to.next_seq;
    header.ack = true;
    header.psh = offset + take == data.size();
    header.window = from.config.window;
    emit_segment(direction, when, header, data.subspan(offset, take));
    from.next_seq += static_cast<std::uint32_t>(take);
    offset += take;
    when += inter_packet_gap;
  }
}

void TcpConnectionBuilder::ack(FlowDirection direction, util::SimTime timestamp) {
  Side& from = side(direction);
  const Side& to = peer(direction);
  TcpHeader header;
  header.source_port = from.config.port;
  header.destination_port = to.config.port;
  header.sequence = from.next_seq;
  header.ack_number = to.next_seq;
  header.ack = true;
  header.window = from.config.window;
  emit_segment(direction, timestamp, header, {});
}

void TcpConnectionBuilder::close(util::SimTime fin_time, util::Duration rtt) {
  const util::Duration half_rtt = rtt * 0.5;

  TcpHeader fin;
  fin.source_port = client_.config.port;
  fin.destination_port = server_.config.port;
  fin.sequence = client_.next_seq;
  fin.ack_number = server_.next_seq;
  fin.fin = true;
  fin.ack = true;
  fin.window = client_.config.window;
  emit_segment(FlowDirection::kClientToServer, fin_time, fin, {});
  client_.next_seq += 1;

  TcpHeader fin_ack;
  fin_ack.source_port = server_.config.port;
  fin_ack.destination_port = client_.config.port;
  fin_ack.sequence = server_.next_seq;
  fin_ack.ack_number = client_.next_seq;
  fin_ack.fin = true;
  fin_ack.ack = true;
  fin_ack.window = server_.config.window;
  emit_segment(FlowDirection::kServerToClient, fin_time + half_rtt, fin_ack, {});
  server_.next_seq += 1;

  TcpHeader final_ack;
  final_ack.source_port = client_.config.port;
  final_ack.destination_port = server_.config.port;
  final_ack.sequence = client_.next_seq;
  final_ack.ack_number = server_.next_seq;
  final_ack.ack = true;
  final_ack.window = client_.config.window;
  emit_segment(FlowDirection::kClientToServer, fin_time + rtt, final_ack, {});
}

void TcpConnectionBuilder::retransmit(std::size_t packet_index,
                                      util::SimTime timestamp) {
  if (packet_index >= packets_.size()) {
    throw std::out_of_range("TcpConnectionBuilder::retransmit: bad index");
  }
  Packet copy = packets_[packet_index];
  copy.timestamp = timestamp;
  packets_.push_back(std::move(copy));
}

std::vector<Packet> TcpConnectionBuilder::take_packets() {
  std::vector<Packet> out = std::move(packets_);
  packets_.clear();
  return out;
}

}  // namespace wm::net
