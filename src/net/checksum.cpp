#include "wm/net/checksum.hpp"

namespace wm::net {

void ChecksumAccumulator::add(util::BytesView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Pair the dangling high byte from the previous chunk with this
    // chunk's first byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += static_cast<std::uint64_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint64_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t value) {
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(value >> 8),
                                 static_cast<std::uint8_t>(value & 0xff)};
  add(util::BytesView(bytes, 2));
}

void ChecksumAccumulator::add_u32(std::uint32_t value) {
  add_u16(static_cast<std::uint16_t>(value >> 16));
  add_u16(static_cast<std::uint16_t>(value & 0xffff));
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t sum = sum_;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t internet_checksum(util::BytesView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum_v4(Ipv4Address source, Ipv4Address destination,
                                    IpProtocolValue protocol,
                                    util::BytesView transport_bytes) {
  ChecksumAccumulator acc;
  acc.add_u32(source.value());
  acc.add_u32(destination.value());
  acc.add_u16(protocol.value);  // zero byte + protocol
  acc.add_u16(static_cast<std::uint16_t>(transport_bytes.size()));
  acc.add(transport_bytes);
  return acc.finish();
}

std::uint16_t transport_checksum_v6(const Ipv6Address& source,
                                    const Ipv6Address& destination,
                                    IpProtocolValue protocol,
                                    util::BytesView transport_bytes) {
  ChecksumAccumulator acc;
  acc.add(source.octets());
  acc.add(destination.octets());
  acc.add_u32(static_cast<std::uint32_t>(transport_bytes.size()));
  acc.add_u32(protocol.value);  // 3 zero bytes + next header
  acc.add(transport_bytes);
  return acc.finish();
}

}  // namespace wm::net
