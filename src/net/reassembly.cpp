#include "wm/net/reassembly.hpp"

#include <algorithm>

namespace wm::net {

std::uint64_t TcpStreamReassembler::unwrap(std::uint32_t sequence) const {
  // Choose the 64-bit value congruent to `sequence` (mod 2^32) closest
  // to the current expectation.
  const std::uint64_t modulus = 1ull << 32;
  const std::uint64_t base_epoch = expected_ & ~(modulus - 1);
  std::uint64_t candidate = base_epoch | sequence;
  // Consider the neighbouring epochs and pick the closest to expected_.
  std::uint64_t best = candidate;
  std::uint64_t best_distance = candidate > expected_ ? candidate - expected_
                                                      : expected_ - candidate;
  for (const std::int64_t shift : {-1, +1}) {
    const std::int64_t shifted =
        static_cast<std::int64_t>(candidate) + shift * static_cast<std::int64_t>(modulus);
    if (shifted < 0) continue;
    const auto value = static_cast<std::uint64_t>(shifted);
    const std::uint64_t distance =
        value > expected_ ? value - expected_ : expected_ - value;
    if (distance < best_distance) {
      best = value;
      best_distance = distance;
    }
  }
  return best;
}

std::vector<StreamChunk> TcpStreamReassembler::on_segment(util::SimTime timestamp,
                                                          std::uint32_t sequence,
                                                          bool syn, bool fin,
                                                          util::BytesView payload) {
  std::vector<StreamChunk> out;

  if (!synchronized_) {
    // Establish the base sequence. A SYN consumes one sequence number;
    // for mid-stream captures we accept the first segment's sequence as
    // the base.
    base_ = sequence;
    if (syn) base_ += 1;
    expected_ = base_;
    synchronized_ = true;
  }

  std::uint64_t seg_start = unwrap(sequence);
  if (syn) seg_start += 1;  // payload begins after the SYN's sequence slot

  if (fin) {
    const std::uint64_t fin_pos = seg_start + payload.size();
    if (!fin_seen_ || fin_pos < fin_at_) {
      fin_seen_ = true;
      fin_at_ = fin_pos;
    }
  }

  if (!payload.empty()) {
    std::uint64_t start = seg_start;
    util::BytesView data = payload;

    // Trim the part we have already delivered (retransmission overlap).
    if (start < expected_) {
      const std::uint64_t overlap = expected_ - start;
      if (overlap >= data.size()) {
        data = {};
      } else {
        data = data.subspan(static_cast<std::size_t>(overlap));
        start = expected_;
      }
    }

    // Insert the pieces of [start, start+size) not already covered by a
    // buffered segment: first-arrival content wins, and data spanning
    // multiple buffered segments keeps all its uncovered pieces.
    std::uint64_t cursor = start;
    util::BytesView rest = data;
    while (!rest.empty()) {
      // Covered by the predecessor segment?
      const auto after = pending_.upper_bound(cursor);
      if (after != pending_.begin()) {
        const auto prev_it = std::prev(after);
        const std::uint64_t prev_end = prev_it->first + prev_it->second.size();
        if (prev_end > cursor) {
          const std::uint64_t overlap = prev_end - cursor;
          if (overlap >= rest.size()) {
            rest = {};
            break;
          }
          rest = rest.subspan(static_cast<std::size_t>(overlap));
          cursor += overlap;
          continue;  // re-evaluate neighbours at the new cursor
        }
      }
      // Free run until the next buffered segment (or the piece's end).
      std::size_t take = rest.size();
      const auto next_it = pending_.lower_bound(cursor);
      if (next_it != pending_.end() && next_it->first < cursor + rest.size()) {
        take = static_cast<std::size_t>(next_it->first - cursor);
      }
      if (take > 0) {
        const util::BytesView piece = rest.subspan(0, take);
        if (buffered_bytes_ + piece.size() > config_.max_buffered_bytes) {
          dropped_ += piece.size();
        } else {
          pending_.emplace(cursor, util::Bytes(piece.begin(), piece.end()));
          buffered_bytes_ += piece.size();
        }
        rest = rest.subspan(take);
        cursor += take;
      }
    }
  }

  out = drain(timestamp);
  if (fin_seen_ && expected_ >= fin_at_) finished_ = true;
  return out;
}

std::vector<StreamChunk> TcpStreamReassembler::drain(util::SimTime timestamp) {
  std::vector<StreamChunk> out;
  for (;;) {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first > expected_) break;

    const std::uint64_t start = it->first;
    util::Bytes data = std::move(it->second);
    buffered_bytes_ -= data.size();
    pending_.erase(it);

    // start <= expected_ is guaranteed; overlap was trimmed on entry,
    // but a defensive re-trim is cheap.
    if (start < expected_) {
      const std::uint64_t overlap = expected_ - start;
      if (overlap >= data.size()) continue;
      data.erase(data.begin(),
                 data.begin() + static_cast<std::ptrdiff_t>(overlap));
    }

    StreamChunk chunk;
    chunk.timestamp = timestamp;
    chunk.stream_offset = expected_ - base_;
    expected_ += data.size();
    delivered_ += data.size();
    chunk.data = std::move(data);
    out.push_back(std::move(chunk));
  }
  return out;
}

std::vector<TcpConnectionReassembler::DirectedChunk>
TcpConnectionReassembler::on_packet(const DecodedPacket& packet,
                                    FlowDirection direction) {
  std::vector<DirectedChunk> out;
  if (!packet.has_tcp()) return out;
  const TcpHeader& tcp = packet.tcp();
  if (tcp.rst) return out;  // no data delivery after reset

  TcpStreamReassembler& stream =
      direction == FlowDirection::kClientToServer ? client_ : server_;
  for (StreamChunk& chunk :
       stream.on_segment(packet.timestamp, tcp.sequence, tcp.syn, tcp.fin,
                         packet.transport_payload)) {
    out.push_back(DirectedChunk{direction, std::move(chunk)});
  }
  return out;
}

}  // namespace wm::net
