#include "wm/net/reassembly.hpp"

#include <algorithm>
#include <limits>

namespace wm::net {

std::uint64_t TcpStreamReassembler::unwrap(std::uint32_t sequence) const {
  // Choose the 64-bit value congruent to `sequence` (mod 2^32) closest
  // to the current expectation.
  const std::uint64_t modulus = 1ull << 32;
  const std::uint64_t base_epoch = expected_ & ~(modulus - 1);
  std::uint64_t candidate = base_epoch | sequence;
  // Consider the neighbouring epochs and pick the closest to expected_.
  std::uint64_t best = candidate;
  std::uint64_t best_distance = candidate > expected_ ? candidate - expected_
                                                      : expected_ - candidate;
  for (const std::int64_t shift : {-1, +1}) {
    const std::int64_t shifted =
        static_cast<std::int64_t>(candidate) + shift * static_cast<std::int64_t>(modulus);
    if (shifted < 0) continue;
    const auto value = static_cast<std::uint64_t>(shifted);
    const std::uint64_t distance =
        value > expected_ ? value - expected_ : expected_ - value;
    if (distance < best_distance) {
      best = value;
      best_distance = distance;
    }
  }
  return best;
}

bool TcpStreamReassembler::over_reorder_window() const {
  return buffered_bytes_ > config_.reorder_window_bytes ||
         pending_.size() > config_.reorder_window_segments;
}

std::vector<TcpStreamReassembler::Pending>::iterator
TcpStreamReassembler::pending_at_or_after(std::uint64_t cursor) {
  return std::lower_bound(
      pending_.begin(), pending_.end(), cursor,
      [](const Pending& piece, std::uint64_t c) { return piece.start < c; });
}

std::vector<TcpStreamReassembler::Pending>::iterator
TcpStreamReassembler::pending_covering(std::uint64_t cursor) {
  // Buffered pieces never overlap (insertion only fills uncovered
  // spans), so at most one piece can straddle `cursor`: the last one
  // starting at or before it.
  auto after = std::upper_bound(
      pending_.begin(), pending_.end(), cursor,
      [](std::uint64_t c, const Pending& piece) { return c < piece.start; });
  if (after != pending_.begin()) {
    const auto prev_it = std::prev(after);
    if (prev_it->end() > cursor) return prev_it;
  }
  return pending_.end();
}

void TcpStreamReassembler::add_dead_range(std::uint64_t start, std::uint64_t end,
                                          StreamGap::Cause cause) {
  start = std::max(start, expected_);
  if (end <= start) return;

  // Skip sub-spans already covered by buffered data: those bytes are
  // not lost. The remaining uncovered pieces become dead ranges.
  std::uint64_t cursor = start;
  while (cursor < end) {
    const auto covering = pending_covering(cursor);
    if (covering != pending_.end()) {
      cursor = covering->end();
      continue;
    }
    std::uint64_t span_end = end;
    const auto next_it = pending_at_or_after(cursor);
    if (next_it != pending_.end() && next_it->start < end) {
      span_end = next_it->start;
    }
    if (span_end > cursor) {
      // Insert [cursor, span_end), merging overlapping/adjacent dead
      // ranges. The earliest-recorded cause wins on merge.
      std::uint64_t m_start = cursor;
      std::uint64_t m_end = span_end;
      StreamGap::Cause m_cause = cause;
      const auto up = dead_.upper_bound(m_start);
      if (up != dead_.begin()) {
        const auto prev_dead = std::prev(up);
        if (prev_dead->second.end >= m_start) {
          m_start = prev_dead->first;
          m_end = std::max(m_end, prev_dead->second.end);
          m_cause = prev_dead->second.cause;
          dead_.erase(prev_dead);
        }
      }
      for (auto next_dead = dead_.lower_bound(m_start);
           next_dead != dead_.end() && next_dead->first <= m_end;
           next_dead = dead_.lower_bound(m_start)) {
        m_end = std::max(m_end, next_dead->second.end);
        dead_.erase(next_dead);
      }
      dead_[m_start] = DeadRange{m_end, m_cause};
    }
    cursor = span_end;
  }
}

void TcpStreamReassembler::resurrect(std::uint64_t start, std::uint64_t end) {
  if (end <= start || dead_.empty()) return;
  // A range straddling `start` is split; its tail may also straddle
  // `end` and is re-inserted past it.
  const auto up = dead_.upper_bound(start);
  if (up != dead_.begin()) {
    const auto prev_it = std::prev(up);
    if (prev_it->second.end > start) {
      const std::uint64_t p_start = prev_it->first;
      const DeadRange range = prev_it->second;
      dead_.erase(prev_it);
      if (p_start < start) dead_[p_start] = DeadRange{start, range.cause};
      if (range.end > end) dead_[end] = DeadRange{range.end, range.cause};
    }
  }
  // Ranges starting inside [start, end): drop, keeping any tail.
  for (auto it = dead_.lower_bound(start); it != dead_.end() && it->first < end;) {
    const DeadRange range = it->second;
    it = dead_.erase(it);
    if (range.end > end) {
      dead_[end] = DeadRange{range.end, range.cause};
      break;
    }
  }
}

std::vector<StreamItem> TcpStreamReassembler::on_segment(
    util::SimTime timestamp, std::uint32_t sequence, bool syn, bool fin,
    util::BytesView payload, std::size_t truncated_bytes) {
  std::vector<StreamItem> out;
  on_segment(timestamp, sequence, syn, fin, payload, truncated_bytes,
             /*stable_payload=*/false, out);
  return out;
}

void TcpStreamReassembler::on_segment(util::SimTime timestamp,
                                      std::uint32_t sequence, bool syn, bool fin,
                                      util::BytesView payload,
                                      std::size_t truncated_bytes,
                                      bool stable_payload,
                                      std::vector<StreamItem>& out) {
  if (!synchronized_) {
    // Establish the base sequence. A SYN consumes one sequence number;
    // for mid-stream captures we accept the first segment's sequence as
    // the base.
    base_ = sequence;
    if (syn) base_ += 1;
    expected_ = base_;
    synchronized_ = true;
  }

  std::uint64_t seg_start = unwrap(sequence);
  if (syn) seg_start += 1;  // payload begins after the SYN's sequence slot

  if (fin) {
    // The FIN sits after the segment's *wire* payload, including any
    // bytes the capture truncated away.
    const std::uint64_t fin_pos = seg_start + payload.size() + truncated_bytes;
    if (!fin_seen_ || fin_pos < fin_at_) {
      fin_seen_ = true;
      fin_at_ = fin_pos;
    }
  }

  if (!payload.empty()) {
    std::uint64_t start = seg_start;
    util::BytesView data = payload;

    // Trim the part we have already delivered (retransmission overlap).
    if (start < expected_) {
      const std::uint64_t overlap = expected_ - start;
      if (overlap >= data.size()) {
        data = {};
      } else {
        data = data.subspan(static_cast<std::size_t>(overlap));
        start = expected_;
      }
    }

    // Insert the pieces of [start, start+size) not already covered by a
    // buffered segment: first-arrival content wins, and data spanning
    // multiple buffered segments keeps all its uncovered pieces.
    std::uint64_t cursor = start;
    util::BytesView rest = data;
    while (!rest.empty()) {
      // Covered by the predecessor segment?
      const auto covering = pending_covering(cursor);
      if (covering != pending_.end()) {
        const std::uint64_t overlap = covering->end() - cursor;
        if (overlap >= rest.size()) {
          rest = {};
          break;
        }
        rest = rest.subspan(static_cast<std::size_t>(overlap));
        cursor += overlap;
        continue;  // re-evaluate neighbours at the new cursor
      }
      // Free run until the next buffered segment (or the piece's end).
      std::size_t take = rest.size();
      const auto next_it = pending_at_or_after(cursor);
      if (next_it != pending_.end() && next_it->start < cursor + rest.size()) {
        take = static_cast<std::size_t>(next_it->start - cursor);
      }
      if (take > 0) {
        const util::BytesView piece = rest.subspan(0, take);
        if (buffered_bytes_ + piece.size() > config_.max_buffered_bytes) {
          // Over budget: the bytes are gone, but not silently — record
          // a dead range so a StreamGap surfaces in the delivered
          // sequence when the stream reaches it.
          dropped_ += piece.size();
          add_dead_range(cursor, cursor + piece.size(),
                         StreamGap::Cause::kBufferCap);
        } else {
          resurrect(cursor, cursor + piece.size());
          Pending pending;
          pending.start = cursor;
          pending.arrived = timestamp;
          if (stable_payload) {
            // Zero-copy hold: the caller guaranteed the span outlives
            // this reassembler, so buffering borrows instead of copying.
            pending.view = piece;
          } else {
            pending.data.assign(piece.begin(), piece.end());
            pending.view = pending.data;
          }
          // next_it is the insertion point computed above; resurrect()
          // only touches dead_, so it is still valid.
          pending_.insert(next_it, std::move(pending));
          buffered_bytes_ += piece.size();
        }
        rest = rest.subspan(take);
        cursor += take;
      }
    }
  }

  if (truncated_bytes > 0) {
    // Snaplen truncation: the segment carried more bytes than the
    // capture retained. They may still arrive via retransmission, but
    // until then they are a known hole, not silence.
    const std::uint64_t tail_start = seg_start + payload.size();
    add_dead_range(tail_start, tail_start + truncated_bytes,
                   StreamGap::Cause::kTruncated);
  }

  drain(timestamp, /*condemn_all=*/false, out);
  if (fin_seen_ && expected_ >= fin_at_) finished_ = true;
}

std::optional<std::uint64_t> TcpStreamReassembler::accept_in_order(
    std::uint32_t sequence, std::size_t payload_size) {
  // Preconditions that make this equivalent to on_segment + drain with
  // nothing buffered: no pending pieces to merge against, no dead
  // ranges to prune or surface, no FIN position to re-check. SYN, FIN,
  // RST and truncation are the caller's responsibility to exclude.
  if (finished_ || fin_seen_ || !pending_.empty() || !dead_.empty()) {
    return std::nullopt;
  }
  if (!synchronized_) {
    // Mid-stream capture: first segment's sequence becomes the base,
    // exactly as on_segment does for a non-SYN first segment.
    base_ = sequence;
    expected_ = base_;
    synchronized_ = true;
  } else if (unwrap(sequence) != expected_) {
    return std::nullopt;  // retransmit or reorder: take the slow path
  }
  const std::uint64_t offset = expected_ - base_;
  expected_ += payload_size;
  delivered_ += payload_size;
  return offset;
}

std::vector<StreamItem> TcpStreamReassembler::flush(util::SimTime timestamp) {
  std::vector<StreamItem> out;
  flush(timestamp, out);
  return out;
}

void TcpStreamReassembler::flush(util::SimTime timestamp,
                                 std::vector<StreamItem>& out) {
  if (synchronized_) {
    drain(timestamp, /*condemn_all=*/true, out);
  }
  finished_ = true;
}

void TcpStreamReassembler::drain(util::SimTime timestamp, bool condemn_all,
                                 std::vector<StreamItem>& out) {
  for (;;) {
    // Prune dead ranges the stream has already moved past.
    while (!dead_.empty() && dead_.begin()->second.end <= expected_) {
      dead_.erase(dead_.begin());
    }
    // A dead range at the head surfaces as an explicit gap — but only
    // once waiting stops being useful: a retransmit may still resurrect
    // the bytes, so hold the range while nothing is deliverable behind
    // it. Condemn when flushing, when delivery can resume immediately
    // past the range, or when buffer pressure says the bytes are gone.
    if (!dead_.empty() && dead_.begin()->first <= expected_) {
      const std::uint64_t end = dead_.begin()->second.end;
      const bool resumable = !pending_.empty() && pending_.front().start <= end;
      if (!condemn_all && !resumable && !over_reorder_window()) break;
      StreamGap gap;
      gap.timestamp = timestamp;
      gap.stream_offset = expected_ - base_;
      gap.length = end - expected_;
      gap.cause = dead_.begin()->second.cause;
      dead_.erase(dead_.begin());
      expected_ = end;
      ++gaps_emitted_;
      gap_bytes_ += gap.length;
      out.push_back(StreamItem::make_gap(gap));
      continue;
    }

    if (!pending_.empty() && pending_.front().start <= expected_) {
      Pending piece = std::move(pending_.front());
      pending_.erase(pending_.begin());
      buffered_bytes_ -= piece.view.size();

      // start <= expected_ is guaranteed; overlap was trimmed on entry,
      // but a defensive re-trim is cheap.
      if (piece.start < expected_) {
        const std::uint64_t overlap = expected_ - piece.start;
        if (overlap >= piece.view.size()) continue;
        piece.view = piece.view.subspan(static_cast<std::size_t>(overlap));
      }

      StreamChunk chunk;
      // First-arrival stamp: buffering behind a reordered segment must
      // not shift the chunk's capture time (timing features depend on
      // when the bytes were seen, not when the hole filled).
      chunk.timestamp = piece.arrived;
      chunk.stream_offset = expected_ - base_;
      expected_ += piece.view.size();
      delivered_ += piece.view.size();
      if (!piece.data.empty()) {
        // Owned hold: hand the buffer itself to the chunk, dropping any
        // overlap-trimmed prefix first so data matches the view.
        if (piece.view.size() != piece.data.size()) {
          piece.data.erase(piece.data.begin(),
                           piece.data.begin() +
                               static_cast<std::ptrdiff_t>(piece.data.size() -
                                                           piece.view.size()));
        }
        chunk.data = std::move(piece.data);
      } else {
        // Borrowed hold (stable_payload): the chunk borrows too.
        chunk.borrowed = piece.view;
      }
      out.push_back(StreamItem::make_chunk(std::move(chunk)));
      continue;
    }

    // Head-of-line hole. Condemn it if the reorder window is exceeded
    // (the hole will not fill: anything this far behind the buffered
    // frontier was lost, not reordered) or if we are flushing.
    if (!condemn_all && !(!pending_.empty() && over_reorder_window())) break;

    std::uint64_t hole_end = std::numeric_limits<std::uint64_t>::max();
    if (!pending_.empty()) hole_end = pending_.front().start;
    if (!dead_.empty()) hole_end = std::min(hole_end, dead_.begin()->first);
    if (condemn_all && fin_seen_ && fin_at_ > expected_) {
      hole_end = std::min(hole_end, fin_at_);
    }
    if (hole_end == std::numeric_limits<std::uint64_t>::max() ||
        hole_end <= expected_) {
      break;
    }
    StreamGap gap;
    gap.timestamp = timestamp;
    gap.stream_offset = expected_ - base_;
    gap.length = hole_end - expected_;
    gap.cause = StreamGap::Cause::kReorderWindow;
    expected_ = hole_end;
    ++gaps_emitted_;
    gap_bytes_ += gap.length;
    out.push_back(StreamItem::make_gap(gap));
  }
}

void TcpConnectionReassembler::on_segment(
    FlowDirection direction, util::SimTime timestamp, std::uint32_t sequence,
    bool syn, bool fin, bool rst, util::BytesView payload,
    std::size_t truncated_bytes, std::vector<DirectedItem>& out,
    bool stable_payload) {
  if (reset_) return;  // no data delivery after reset
  if (rst) {
    reset_ = true;
    // A reset tears the connection down in both directions: deliver
    // what is buffered (holes become gaps) and mark the streams
    // finished so the flow can be retired immediately instead of
    // lingering until idle eviction.
    scratch_.clear();
    client_.flush(timestamp, scratch_);
    for (StreamItem& item : scratch_) {
      out.push_back(DirectedItem{FlowDirection::kClientToServer, std::move(item)});
    }
    scratch_.clear();
    server_.flush(timestamp, scratch_);
    for (StreamItem& item : scratch_) {
      out.push_back(DirectedItem{FlowDirection::kServerToClient, std::move(item)});
    }
    scratch_.clear();
    return;
  }

  TcpStreamReassembler& target =
      direction == FlowDirection::kClientToServer ? client_ : server_;
  scratch_.clear();
  target.on_segment(timestamp, sequence, syn, fin, payload, truncated_bytes,
                    stable_payload, scratch_);
  for (StreamItem& item : scratch_) {
    out.push_back(DirectedItem{direction, std::move(item)});
  }
  scratch_.clear();
}

std::vector<TcpConnectionReassembler::DirectedItem>
TcpConnectionReassembler::on_packet(const DecodedPacket& packet,
                                    FlowDirection direction) {
  std::vector<DirectedItem> out;
  if (!packet.has_tcp()) return out;
  const TcpHeader& tcp = packet.tcp();
  on_segment(direction, packet.timestamp, tcp.sequence, tcp.syn, tcp.fin,
             tcp.rst, packet.transport_payload,
             packet.transport_payload_missing, out);
  return out;
}

std::vector<TcpConnectionReassembler::DirectedItem>
TcpConnectionReassembler::flush(util::SimTime timestamp) {
  std::vector<DirectedItem> out;
  for (StreamItem& item : client_.flush(timestamp)) {
    out.push_back(DirectedItem{FlowDirection::kClientToServer, std::move(item)});
  }
  for (StreamItem& item : server_.flush(timestamp)) {
    out.push_back(DirectedItem{FlowDirection::kServerToClient, std::move(item)});
  }
  return out;
}

}  // namespace wm::net
