#include "wm/net/flow.hpp"

#include <algorithm>
#include <sstream>

namespace wm::net {

std::string to_string(FlowDirection direction) {
  return direction == FlowDirection::kClientToServer ? "client->server"
                                                     : "server->client";
}

std::string Endpoint::to_string() const {
  std::ostringstream out;
  if (is_v6) {
    out << '[' << v6.to_string() << "]:" << port;
  } else {
    out << v4.to_string() << ':' << port;
  }
  return out.str();
}

std::string FlowKey::to_string() const {
  std::ostringstream out;
  out << wm::net::to_string(protocol) << ' ' << client.to_string() << " <-> "
      << server.to_string();
  return out.str();
}

std::optional<PacketEndpoints> packet_endpoints(const DecodedPacket& packet) {
  PacketEndpoints out;
  if (packet.has_ipv4()) {
    out.source.v4 = packet.ipv4().source;
    out.destination.v4 = packet.ipv4().destination;
  } else if (packet.has_ipv6()) {
    out.source.is_v6 = true;
    out.destination.is_v6 = true;
    out.source.v6 = packet.ipv6().source;
    out.destination.v6 = packet.ipv6().destination;
  } else {
    return std::nullopt;
  }

  if (packet.has_tcp()) {
    out.protocol = IpProtocol::kTcp;
    out.source.port = packet.tcp().source_port;
    out.destination.port = packet.tcp().destination_port;
  } else if (packet.has_udp()) {
    out.protocol = IpProtocol::kUdp;
    out.source.port = packet.udp().source_port;
    out.destination.port = packet.udp().destination_port;
  } else {
    return std::nullopt;
  }
  return out;
}

std::optional<FlowTable::Assignment> FlowTable::add(const DecodedPacket& packet,
                                                    std::size_t packet_index) {
  const auto endpoints = packet_endpoints(packet);
  if (!endpoints) return std::nullopt;

  const bool is_tcp = endpoints->protocol == IpProtocol::kTcp;
  const bool is_syn_only = is_tcp && packet.tcp().syn && !packet.tcp().ack;

  // Try both orientations to find an existing flow.
  FlowKey forward{endpoints->source, endpoints->destination, endpoints->protocol};
  FlowKey reverse{endpoints->destination, endpoints->source, endpoints->protocol};

  auto it = flows_.find(forward);
  FlowDirection direction = FlowDirection::kClientToServer;
  if (it == flows_.end()) {
    const auto rev_it = flows_.find(reverse);
    if (rev_it != flows_.end()) {
      it = rev_it;
      direction = FlowDirection::kServerToClient;
    }
  }

  if (it == flows_.end()) {
    // New flow: decide orientation.
    FlowKey key = forward;
    direction = FlowDirection::kClientToServer;
    if (!is_syn_only) {
      // Mid-stream heuristic: a well-known source port suggests the
      // packet came *from* the server.
      const bool src_service = endpoints->source.port < 1024;
      const bool dst_service = endpoints->destination.port < 1024;
      if (src_service && !dst_service) {
        key = reverse;
        direction = FlowDirection::kServerToClient;
      }
    }
    FlowRecord record;
    record.key = key;
    record.first_seen = packet.timestamp;
    record.last_seen = packet.timestamp;
    it = flows_.emplace(key, std::move(record)).first;
  }

  FlowRecord& flow = it->second;
  flow.last_seen = packet.timestamp;

  FlowPacket member;
  member.packet_index = packet_index;
  member.timestamp = packet.timestamp;
  member.direction = direction;
  member.transport_payload_size = packet.transport_payload.size();
  if (is_tcp) {
    const TcpHeader& tcp = packet.tcp();
    member.sequence = tcp.sequence;
    member.syn = tcp.syn;
    member.fin = tcp.fin;
    member.rst = tcp.rst;
    if (tcp.syn) flow.saw_syn = true;
  }
  if (direction == FlowDirection::kClientToServer) {
    flow.client_bytes += member.transport_payload_size;
  } else {
    flow.server_bytes += member.transport_payload_size;
  }
  flow.packets.push_back(member);
  return Assignment{it->first, direction};
}

const FlowRecord* FlowTable::find(const FlowKey& key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<const FlowRecord*> FlowTable::by_volume() const {
  std::vector<const FlowRecord*> out;
  out.reserve(flows_.size());
  for (const auto& [key, record] : flows_) out.push_back(&record);
  std::sort(out.begin(), out.end(), [](const FlowRecord* a, const FlowRecord* b) {
    return a->total_bytes() > b->total_bytes();
  });
  return out;
}

}  // namespace wm::net
