#include "wm/net/flow.hpp"

#include <algorithm>
#include <sstream>

namespace wm::net {

std::string to_string(FlowDirection direction) {
  return direction == FlowDirection::kClientToServer ? "client->server"
                                                     : "server->client";
}

std::string Endpoint::to_string() const {
  std::ostringstream out;
  if (is_v6) {
    out << '[' << v6.to_string() << "]:" << port;
  } else {
    out << v4.to_string() << ':' << port;
  }
  return out.str();
}

std::string FlowKey::to_string() const {
  std::ostringstream out;
  out << wm::net::to_string(protocol) << ' ' << client.to_string() << " <-> "
      << server.to_string();
  return out.str();
}

std::optional<PacketEndpoints> packet_endpoints(const DecodedPacket& packet) {
  PacketEndpoints out;
  if (packet.has_ipv4()) {
    out.source.v4 = packet.ipv4().source;
    out.destination.v4 = packet.ipv4().destination;
  } else if (packet.has_ipv6()) {
    out.source.is_v6 = true;
    out.destination.is_v6 = true;
    out.source.v6 = packet.ipv6().source;
    out.destination.v6 = packet.ipv6().destination;
  } else {
    return std::nullopt;
  }

  if (packet.has_tcp()) {
    out.protocol = IpProtocol::kTcp;
    out.source.port = packet.tcp().source_port;
    out.destination.port = packet.tcp().destination_port;
  } else if (packet.has_udp()) {
    out.protocol = IpProtocol::kUdp;
    out.source.port = packet.udp().source_port;
    out.destination.port = packet.udp().destination_port;
  } else {
    return std::nullopt;
  }
  return out;
}

std::optional<FlowTable::Assignment> FlowTable::add(const DecodedPacket& packet,
                                                    std::size_t packet_index) {
  const auto endpoints = packet_endpoints(packet);
  if (!endpoints) return std::nullopt;

  const bool is_tcp = endpoints->protocol == IpProtocol::kTcp;
  const bool is_syn_only = is_tcp && packet.tcp().syn && !packet.tcp().ack;

  // Try both orientations to find an existing flow.
  FlowKey forward{endpoints->source, endpoints->destination, endpoints->protocol};
  FlowKey reverse{endpoints->destination, endpoints->source, endpoints->protocol};

  auto it = flows_.find(forward);
  FlowDirection direction = FlowDirection::kClientToServer;
  if (it == flows_.end()) {
    const auto rev_it = flows_.find(reverse);
    if (rev_it != flows_.end()) {
      it = rev_it;
      direction = FlowDirection::kServerToClient;
    }
  }

  if (it == flows_.end()) {
    // New flow: decide orientation.
    FlowKey key = forward;
    direction = FlowDirection::kClientToServer;
    if (!is_syn_only) {
      // Mid-stream heuristic: a well-known source port suggests the
      // packet came *from* the server.
      const bool src_service = endpoints->source.port < 1024;
      const bool dst_service = endpoints->destination.port < 1024;
      if (src_service && !dst_service) {
        key = reverse;
        direction = FlowDirection::kServerToClient;
      }
    }
    FlowRecord record;
    record.key = key;
    record.first_seen = packet.timestamp;
    record.last_seen = packet.timestamp;
    it = flows_.emplace(key, std::move(record)).first;
    obs::inc(config_.created_counter);
  }

  FlowRecord& flow = it->second;
  flow.last_seen = packet.timestamp;

  FlowPacket member;
  member.packet_index = packet_index;
  member.timestamp = packet.timestamp;
  member.direction = direction;
  member.transport_payload_size = packet.transport_payload.size();
  if (is_tcp) {
    const TcpHeader& tcp = packet.tcp();
    member.sequence = tcp.sequence;
    member.syn = tcp.syn;
    member.fin = tcp.fin;
    member.rst = tcp.rst;
    if (tcp.syn) flow.saw_syn = true;
  }
  if (direction == FlowDirection::kClientToServer) {
    flow.client_bytes += member.transport_payload_size;
  } else {
    flow.server_bytes += member.transport_payload_size;
  }
  if (config_.track_packets) flow.packets.push_back(member);
  return Assignment{it->first, direction};
}

std::vector<FlowKey> FlowTable::evict_idle(util::SimTime now) {
  std::vector<FlowKey> evicted;
  if (config_.idle_timeout == util::Duration{}) return evicted;
  const util::SimTime cutoff = now - config_.idle_timeout;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen < cutoff) {
      evicted.push_back(it->first);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  evicted_ += evicted.size();
  obs::inc(config_.evicted_counter, evicted.size());
  return evicted;
}

bool FlowTable::remove(const FlowKey& key) {
  return flows_.erase(key) != 0;
}

const FlowRecord* FlowTable::find(const FlowKey& key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : &it->second;
}

namespace {

// FNV-1a over a byte span; the seed lets the endpoint hash fold in the
// port after the address without a second pass.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t hash = 14695981039346656037ull) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer: spreads the commutative combine's bits.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The address/port/protocol fields of a raw frame, as pointers into
// the packet bytes — shared by the flow and viewer shard hashes so
// both parse the wire format exactly once, identically.
struct RawTuple {
  const std::uint8_t* addr_a = nullptr;  // source address bytes
  const std::uint8_t* addr_b = nullptr;  // destination address bytes
  std::size_t addr_len = 0;
  const std::uint8_t* ports = nullptr;   // src port at +0, dst at +2
  std::uint8_t protocol = 0;
};

std::optional<RawTuple> parse_raw_tuple(util::BytesView frame) {
  const std::uint8_t* p = frame.data();
  std::size_t size = frame.size();
  if (size < 14) return std::nullopt;
  std::size_t offset = 12;
  std::uint16_t ethertype = static_cast<std::uint16_t>((p[offset] << 8) | p[offset + 1]);
  offset += 2;
  if (ethertype == 0x8100) {  // 802.1Q tag
    if (size < offset + 4) return std::nullopt;
    ethertype = static_cast<std::uint16_t>((p[offset + 2] << 8) | p[offset + 3]);
    offset += 4;
  }

  RawTuple tuple;
  std::size_t transport = 0;
  if (ethertype == 0x0800) {  // IPv4
    if (size < offset + 20) return std::nullopt;
    const std::size_t header_len = static_cast<std::size_t>(p[offset] & 0x0f) * 4;
    if (header_len < 20 || size < offset + header_len) return std::nullopt;
    tuple.protocol = p[offset + 9];
    tuple.addr_a = p + offset + 12;
    tuple.addr_b = p + offset + 16;
    tuple.addr_len = 4;
    transport = offset + header_len;
  } else if (ethertype == 0x86dd) {  // IPv6 (no extension-header walk)
    if (size < offset + 40) return std::nullopt;
    tuple.protocol = p[offset + 6];
    tuple.addr_a = p + offset + 8;
    tuple.addr_b = p + offset + 24;
    tuple.addr_len = 16;
    transport = offset + 40;
  } else {
    return std::nullopt;
  }
  if (tuple.protocol != 6 && tuple.protocol != 17) return std::nullopt;  // TCP/UDP only
  if (size < transport + 4) return std::nullopt;
  tuple.ports = p + transport;
  return tuple;
}

std::uint16_t port_at(const std::uint8_t* ports, std::size_t index) {
  return static_cast<std::uint16_t>((ports[index * 2] << 8) | ports[index * 2 + 1]);
}

// One endpoint's contribution: FNV over the address wire bytes, then
// the two big-endian port bytes — byte-for-byte what flow_shard_hash
// feeds fnv1a from the raw frame.
std::uint64_t endpoint_hash(const Endpoint& endpoint) {
  std::uint64_t hash;
  if (endpoint.is_v6) {
    hash = fnv1a(endpoint.v6.octets().data(), 16);
  } else {
    const std::uint32_t v = endpoint.v4.value();
    const std::uint8_t wire[4] = {
        static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    hash = fnv1a(wire, 4);
  }
  const std::uint8_t port[2] = {static_cast<std::uint8_t>(endpoint.port >> 8),
                                static_cast<std::uint8_t>(endpoint.port)};
  return fnv1a(port, 2, hash);
}

}  // namespace

std::uint64_t endpoint_pair_hash(const Endpoint& a, const Endpoint& b,
                                 IpProtocol protocol) {
  const std::uint64_t ha = endpoint_hash(a);
  const std::uint64_t hb = endpoint_hash(b);
  return mix((ha + hb) ^ static_cast<std::uint8_t>(protocol)) ^ mix(ha ^ hb);
}

std::optional<std::uint64_t> flow_shard_hash(const Packet& packet) {
  return flow_shard_hash(util::BytesView(packet.data));
}

std::optional<std::uint64_t> flow_shard_hash(util::BytesView frame) {
  const auto tuple = parse_raw_tuple(frame);
  if (!tuple) return std::nullopt;
  // Endpoint hash = fnv(address bytes, then port bytes); combining the
  // two endpoints commutatively makes the result direction-symmetric.
  const std::uint64_t ha =
      fnv1a(tuple->ports, 2, fnv1a(tuple->addr_a, tuple->addr_len));
  const std::uint64_t hb =
      fnv1a(tuple->ports + 2, 2, fnv1a(tuple->addr_b, tuple->addr_len));
  return mix((ha + hb) ^ tuple->protocol) ^ mix(ha ^ hb);
}

std::optional<std::uint64_t> viewer_shard_hash(const Packet& packet) {
  const auto tuple = parse_raw_tuple(util::BytesView(packet.data));
  if (!tuple) return std::nullopt;
  // Same orientation heuristic FlowTable uses for SYN-less flows: a
  // well-known port (< 1024) on exactly one endpoint marks the server,
  // so the other endpoint's address is the viewer. Hashing the address
  // alone (no port) keeps every flow of one client — CDN, API, and any
  // parallel connections — on the same shard, matching the monitor's
  // per-viewer keying.
  const bool a_service = port_at(tuple->ports, 0) < 1024;
  const bool b_service = port_at(tuple->ports, 1) < 1024;
  if (a_service != b_service) {
    const std::uint8_t* viewer = a_service ? tuple->addr_b : tuple->addr_a;
    return mix(fnv1a(viewer, tuple->addr_len));
  }
  // Undecidable orientation (both or neither side on a well-known
  // port): fall back to the direction-symmetric flow hash so the flow
  // at least stays whole. Viewer affinity may split in this case.
  return flow_shard_hash(packet);
}

std::vector<const FlowRecord*> FlowTable::by_volume() const {
  std::vector<const FlowRecord*> out;
  out.reserve(flows_.size());
  for (const auto& [key, record] : flows_) out.push_back(&record);
  std::sort(out.begin(), out.end(), [](const FlowRecord* a, const FlowRecord* b) {
    return a->total_bytes() > b->total_bytes();
  });
  return out;
}

}  // namespace wm::net
