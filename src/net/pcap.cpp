#include "wm/net/pcap.hpp"

#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "wm/util/bytes.hpp"

namespace wm::net {

namespace {

void write_u16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void write_u32(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out.write(bytes, 4);
}

std::uint32_t load_u32_le(const std::uint8_t* bytes) {
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

}  // namespace

PcapWriter::PcapWriter(const std::filesystem::path& path, bool nanosecond_resolution,
                       std::uint32_t snaplen)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::binary)),
      out_(owned_.get()),
      nanos_(nanosecond_resolution),
      snaplen_(snaplen) {
  if (!*out_) {
    throw std::runtime_error("PcapWriter: cannot open " + path.string());
  }
  write_file_header(snaplen);
}

PcapWriter::PcapWriter(std::ostream& out, bool nanosecond_resolution,
                       std::uint32_t snaplen)
    : out_(&out), nanos_(nanosecond_resolution), snaplen_(snaplen) {
  write_file_header(snaplen);
}

PcapWriter::~PcapWriter() {
  if (out_) out_->flush();
}

void PcapWriter::write_file_header(std::uint32_t snaplen) {
  write_u32(*out_, nanos_ ? PcapFileHeader::kMagicNanos : PcapFileHeader::kMagicMicros);
  write_u16(*out_, 2);  // version major
  write_u16(*out_, 4);  // version minor
  write_u32(*out_, 0);  // thiszone
  write_u32(*out_, 0);  // sigfigs
  write_u32(*out_, snaplen);
  write_u32(*out_, static_cast<std::uint32_t>(LinkType::kEthernet));
}

void PcapWriter::write(const Packet& packet) {
  const std::int64_t total_ns = packet.timestamp.nanos();
  if (total_ns < 0) {
    throw std::invalid_argument("PcapWriter: negative timestamp");
  }
  const auto seconds = static_cast<std::uint32_t>(total_ns / 1'000'000'000);
  const auto subsec = static_cast<std::uint32_t>(total_ns % 1'000'000'000);
  const std::uint32_t fraction = nanos_ ? subsec : subsec / 1'000;

  const std::size_t captured = std::min<std::size_t>(packet.data.size(), snaplen_);
  const std::size_t original = std::max(packet.original_length, packet.data.size());

  write_u32(*out_, seconds);
  write_u32(*out_, fraction);
  write_u32(*out_, static_cast<std::uint32_t>(captured));
  write_u32(*out_, static_cast<std::uint32_t>(original));
  util::write_all(*out_, util::BytesView(packet.data).first(captured));
  if (!*out_) throw std::runtime_error("PcapWriter: write failed");
  ++packets_written_;
}

void PcapWriter::flush() { out_->flush(); }

PcapReader::PcapReader(const std::filesystem::path& path)
    : map_(util::MappedFile::open(path)) {
  if (map_.valid()) {
    // Fast path: the whole capture is addressable; records are parsed
    // in place and next_view() borrows straight from the mapping.
    if (map_.size() < PcapFileHeader::kSize) {
      throw std::runtime_error("pcap: unexpected end of file");
    }
    parse_file_header(map_.view().data());
    map_pos_ = PcapFileHeader::kSize;
    return;
  }
  owned_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  in_ = owned_.get();
  if (!*in_) {
    throw std::runtime_error("PcapReader: cannot open " + path.string());
  }
  read_file_header();
}

PcapReader::PcapReader(std::istream& in) : in_(&in) { read_file_header(); }

PcapReader::~PcapReader() = default;

std::uint32_t PcapReader::convert(std::uint32_t value) const {
  return header_.byte_swapped ? byteswap32(value) : value;
}

void PcapReader::parse_file_header(const std::uint8_t* bytes) {
  std::uint32_t magic = load_u32_le(bytes);
  if (magic == byteswap32(PcapFileHeader::kMagicMicros) ||
      magic == byteswap32(PcapFileHeader::kMagicNanos)) {
    header_.byte_swapped = true;
    magic = byteswap32(magic);
  }
  if (magic == PcapFileHeader::kMagicMicros) {
    header_.nanosecond_resolution = false;
  } else if (magic == PcapFileHeader::kMagicNanos) {
    header_.nanosecond_resolution = true;
  } else {
    throw std::runtime_error("PcapReader: bad magic number");
  }

  const std::uint32_t versions = convert(load_u32_le(bytes + 4));
  header_.version_major = static_cast<std::uint16_t>(versions & 0xffff);
  header_.version_minor = static_cast<std::uint16_t>(versions >> 16);
  if (header_.byte_swapped) {
    // convert() flipped all four bytes; the two u16s are themselves
    // stored in the file's native order, so swap halves back.
    header_.version_major = static_cast<std::uint16_t>(versions >> 16);
    header_.version_minor = static_cast<std::uint16_t>(versions & 0xffff);
  }
  // bytes + 8: thiszone, bytes + 12: sigfigs — both ignored.
  header_.snaplen = convert(load_u32_le(bytes + 16));
  header_.link_type = static_cast<LinkType>(convert(load_u32_le(bytes + 20)));
  if (header_.link_type != LinkType::kEthernet) {
    throw std::runtime_error("PcapReader: unsupported link type");
  }
}

void PcapReader::read_file_header() {
  std::uint8_t bytes[PcapFileHeader::kSize];
  if (util::read_exact(*in_, bytes, PcapFileHeader::kSize) !=
      PcapFileHeader::kSize) {
    throw std::runtime_error("pcap: unexpected end of file");
  }
  parse_file_header(bytes);
}

PcapReader::RecordHeader PcapReader::parse_record_header(
    const std::uint8_t* bytes) const {
  const std::uint32_t seconds = convert(load_u32_le(bytes));
  const std::uint32_t fraction = convert(load_u32_le(bytes + 4));
  RecordHeader record;
  record.captured = convert(load_u32_le(bytes + 8));
  record.original = convert(load_u32_le(bytes + 12));
  if (record.captured > header_.snaplen + 65536) {
    throw std::runtime_error(
        "PcapReader: implausible captured length (corrupt file?)");
  }
  const std::uint64_t nanos =
      static_cast<std::uint64_t>(seconds) * 1'000'000'000ull +
      (header_.nanosecond_resolution
           ? fraction
           : static_cast<std::uint64_t>(fraction) * 1'000ull);
  record.timestamp = util::SimTime::from_nanos(static_cast<std::int64_t>(nanos));
  return record;
}

bool PcapReader::read_record_header(RecordHeader& out) {
  // Probe for EOF before committing to a record, then take the whole
  // 16-byte header in one buffered read instead of four field reads.
  if (in_->peek() == std::char_traits<char>::eof()) return false;
  std::uint8_t bytes[16];
  if (util::read_exact(*in_, bytes, 16) != 16) {
    throw std::runtime_error("pcap: unexpected end of file");
  }
  out = parse_record_header(bytes);
  return true;
}

std::optional<PacketView> PcapReader::next_view() {
  if (map_.valid()) {
    const util::BytesView file = map_.view();
    if (map_pos_ == file.size()) return std::nullopt;
    if (file.size() - map_pos_ < 16) {
      throw std::runtime_error("pcap: unexpected end of file");
    }
    const RecordHeader record = parse_record_header(file.data() + map_pos_);
    map_pos_ += 16;
    if (file.size() - map_pos_ < record.captured) {
      throw std::runtime_error("PcapReader: truncated packet record");
    }
    const PacketView view(record.timestamp,
                          file.subspan(map_pos_, record.captured),
                          record.original);
    map_pos_ += record.captured;
    // Start pulling the next record header now: its cache miss (the
    // record stride defeats the hardware prefetcher) overlaps whatever
    // the caller does with this view, instead of stalling the next call.
    if (map_pos_ < file.size()) __builtin_prefetch(file.data() + map_pos_);
    return view;
  }

  RecordHeader record;
  if (!read_record_header(record)) return std::nullopt;
  scratch_.resize(record.captured);
  if (util::read_exact(*in_, scratch_.data(), record.captured) !=
      record.captured) {
    throw std::runtime_error("PcapReader: truncated packet record");
  }
  return PacketView(record.timestamp, scratch_, record.original);
}

std::optional<Packet> PcapReader::next() {
  if (map_.valid()) {
    const auto view = next_view();
    if (!view) return std::nullopt;
    return view->to_packet();
  }
  // Streaming path reads straight into the packet's buffer — one copy,
  // no staging detour.
  RecordHeader record;
  if (!read_record_header(record)) return std::nullopt;
  Packet packet;
  packet.timestamp = record.timestamp;
  packet.data.resize(record.captured);
  if (util::read_exact(*in_, packet.data.data(), record.captured) !=
      record.captured) {
    throw std::runtime_error("PcapReader: truncated packet record");
  }
  packet.original_length = record.original;
  return packet;
}

std::vector<Packet> PcapReader::read_all() {
  std::vector<Packet> out;
  while (auto packet = next()) {
    out.push_back(std::move(*packet));
  }
  return out;
}

void write_pcap(const std::filesystem::path& path, const std::vector<Packet>& packets) {
  PcapWriter writer(path);
  for (const Packet& packet : packets) writer.write(packet);
}

std::vector<Packet> read_pcap(const std::filesystem::path& path) {
  PcapReader reader(path);
  return reader.read_all();
}

}  // namespace wm::net
