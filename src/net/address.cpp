#include "wm/net/address.hpp"

#include <cstdio>
#include <vector>

#include "wm/util/strings.hpp"

namespace wm::net {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    const int high = hex_nibble(text[pos]);
    const int low = hex_nibble(text[pos + 1]);
    if (high < 0 || low < 0) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>((high << 4) | low);
    pos += 2;
    if (i < 5) {
      if (pos >= text.size() || (text[pos] != ':' && text[pos] != '-')) {
        return std::nullopt;
      }
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

bool MacAddress::is_broadcast() const {
  for (std::uint8_t b : octets_) {
    if (b != 0xff) return false;
  }
  return true;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

bool Ipv4Address::is_private() const {
  const std::uint32_t v = value_;
  if ((v >> 24) == 10) return true;                       // 10.0.0.0/8
  if ((v >> 20) == (172u << 4 | 1)) return true;          // 172.16.0.0/12
  if ((v >> 16) == ((192u << 8) | 168)) return true;      // 192.168.0.0/16
  return false;
}

bool Ipv4Address::is_loopback() const { return (value_ >> 24) == 127; }

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Split on "::" first (at most one allowed).
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool has_gap = false;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    for (const auto& group : util::split(part, ':')) {
      if (group.empty() || group.size() > 4) return false;
      unsigned value = 0;
      for (char c : group) {
        const int nibble = hex_nibble(c);
        if (nibble < 0) return false;
        value = (value << 4) | static_cast<unsigned>(nibble);
      }
      out.push_back(static_cast<std::uint16_t>(value));
    }
    return true;
  };

  const auto gap = text.find("::");
  if (gap != std::string_view::npos) {
    has_gap = true;
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!parse_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail)) return std::nullopt;
  } else {
    if (!parse_groups(text, head)) return std::nullopt;
  }

  const std::size_t groups = head.size() + tail.size();
  if (has_gap ? groups >= 8 : groups != 8) return std::nullopt;

  std::array<std::uint8_t, 16> octets{};
  std::size_t idx = 0;
  for (std::uint16_t g : head) {
    octets[idx++] = static_cast<std::uint8_t>(g >> 8);
    octets[idx++] = static_cast<std::uint8_t>(g & 0xff);
  }
  idx = 16 - tail.size() * 2;
  for (std::uint16_t g : tail) {
    octets[idx++] = static_cast<std::uint8_t>(g >> 8);
    octets[idx++] = static_cast<std::uint8_t>(g & 0xff);
  }
  return Ipv6Address(octets);
}

std::string Ipv6Address::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((octets_[2 * i] << 8) | octets_[2 * i + 1]);
  }

  // Find the longest run of zero groups (length >= 2) for compression.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    char buf[8];
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

bool Ipv6Address::is_loopback() const {
  for (std::size_t i = 0; i < 15; ++i) {
    if (octets_[i] != 0) return false;
  }
  return octets_[15] == 1;
}

}  // namespace wm::net
