#include "wm/net/headers.hpp"

#include <algorithm>

#include "wm/net/checksum.hpp"
#include "wm/net/packet.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {

using util::ByteReader;
using util::ByteWriter;
using util::BytesView;

std::string to_string(EtherType type) {
  switch (type) {
    case EtherType::kIpv4: return "IPv4";
    case EtherType::kArp: return "ARP";
    case EtherType::kIpv6: return "IPv6";
    case EtherType::kVlan: return "VLAN";
  }
  return "EtherType(0x" + util::to_hex({}) + ")";
}

std::string to_string(IpProtocol protocol) {
  switch (protocol) {
    case IpProtocol::kIcmp: return "ICMP";
    case IpProtocol::kTcp: return "TCP";
    case IpProtocol::kUdp: return "UDP";
  }
  return "proto(" + std::to_string(static_cast<int>(protocol)) + ")";
}

std::optional<ParsedEthernet> parse_ethernet(BytesView frame) {
  if (frame.size() < EthernetHeader::kSize) return std::nullopt;
  ByteReader reader(frame);
  ParsedEthernet out;
  std::array<std::uint8_t, 6> mac{};
  auto read_mac = [&reader, &mac] {
    const BytesView view = reader.read_view(6);
    std::copy(view.begin(), view.end(), mac.begin());
    return MacAddress(mac);
  };
  out.header.destination = read_mac();
  out.header.source = read_mac();
  out.header.ether_type = reader.read_u16_be();
  out.payload = frame.subspan(EthernetHeader::kSize);
  return out;
}

void EthernetHeader::serialize(ByteWriter& out) const {
  out.write_bytes(destination.octets());
  out.write_bytes(source.octets());
  out.write_u16_be(ether_type);
}

std::optional<ParsedIpv4> parse_ipv4(BytesView packet, bool allow_truncated) {
  if (packet.size() < Ipv4Header::kMinSize) return std::nullopt;
  ByteReader reader(packet);
  const std::uint8_t version_ihl = reader.read_u8();
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t header_len = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (header_len < Ipv4Header::kMinSize || header_len > packet.size()) return std::nullopt;

  ParsedIpv4 out;
  Ipv4Header& h = out.header;
  h.dscp_ecn = reader.read_u8();
  h.total_length = reader.read_u16_be();
  if (h.total_length < header_len) return std::nullopt;
  if (h.total_length > packet.size()) {
    if (!allow_truncated) return std::nullopt;
    out.truncated_bytes = h.total_length - packet.size();
  }
  h.identification = reader.read_u16_be();
  const std::uint16_t flags_frag = reader.read_u16_be();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = reader.read_u8();
  h.protocol = reader.read_u8();
  h.header_checksum = reader.read_u16_be();
  h.source = Ipv4Address(reader.read_u32_be());
  h.destination = Ipv4Address(reader.read_u32_be());
  if (header_len > Ipv4Header::kMinSize) {
    h.options = reader.read_bytes(header_len - Ipv4Header::kMinSize);
  }
  out.checksum_valid = internet_checksum(packet.subspan(0, header_len)) == 0;
  const std::size_t available =
      std::min<std::size_t>(h.total_length, packet.size()) - header_len;
  out.payload = packet.subspan(header_len, available);
  return out;
}

void Ipv4Header::serialize(ByteWriter& out, std::size_t payload_length) const {
  const std::size_t header_len = header_length();
  const std::size_t start = out.size();
  out.write_u8(static_cast<std::uint8_t>(0x40 | (header_len / 4)));
  out.write_u8(dscp_ecn);
  out.write_u16_be(static_cast<std::uint16_t>(header_len + payload_length));
  out.write_u16_be(identification);
  std::uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) flags_frag |= 0x4000;
  if (more_fragments) flags_frag |= 0x2000;
  out.write_u16_be(flags_frag);
  out.write_u8(ttl);
  out.write_u8(protocol);
  out.write_u16_be(0);  // checksum placeholder
  out.write_u32_be(source.value());
  out.write_u32_be(destination.value());
  out.write_bytes(options);
  const std::uint16_t checksum =
      internet_checksum(out.view().subspan(start, header_len));
  out.patch_u16_be(start + 10, checksum);
}

std::optional<ParsedIpv6> parse_ipv6(BytesView packet, bool allow_truncated) {
  if (packet.size() < Ipv6Header::kSize) return std::nullopt;
  ByteReader reader(packet);
  const std::uint32_t first = reader.read_u32_be();
  if ((first >> 28) != 6) return std::nullopt;

  ParsedIpv6 out;
  Ipv6Header& h = out.header;
  h.traffic_class = static_cast<std::uint8_t>((first >> 20) & 0xff);
  h.flow_label = first & 0xfffff;
  h.payload_length = reader.read_u16_be();
  h.next_header = reader.read_u8();
  h.hop_limit = reader.read_u8();
  std::array<std::uint8_t, 16> addr{};
  auto read_addr = [&reader, &addr] {
    const BytesView view = reader.read_view(16);
    std::copy(view.begin(), view.end(), addr.begin());
    return Ipv6Address(addr);
  };
  h.source = read_addr();
  h.destination = read_addr();
  if (Ipv6Header::kSize + h.payload_length > packet.size()) {
    if (!allow_truncated) return std::nullopt;
    out.truncated_bytes = Ipv6Header::kSize + h.payload_length - packet.size();
  }
  out.payload = packet.subspan(
      Ipv6Header::kSize,
      std::min<std::size_t>(h.payload_length, packet.size() - Ipv6Header::kSize));
  return out;
}

void Ipv6Header::serialize(ByteWriter& out, std::size_t body_length) const {
  const std::uint32_t first = (6u << 28) |
                              (static_cast<std::uint32_t>(traffic_class) << 20) |
                              (flow_label & 0xfffff);
  out.write_u32_be(first);
  out.write_u16_be(static_cast<std::uint16_t>(body_length));
  out.write_u8(next_header);
  out.write_u8(hop_limit);
  out.write_bytes(source.octets());
  out.write_bytes(destination.octets());
}

std::string TcpHeader::flags_string() const {
  std::string out;
  auto append = [&out](bool set, const char* name) {
    if (!set) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  append(syn, "SYN");
  append(fin, "FIN");
  append(rst, "RST");
  append(psh, "PSH");
  append(ack, "ACK");
  append(urg, "URG");
  return out.empty() ? "-" : out;
}

std::optional<ParsedTcp> parse_tcp(BytesView segment) {
  if (segment.size() < TcpHeader::kMinSize) return std::nullopt;
  ByteReader reader(segment);
  ParsedTcp out;
  TcpHeader& h = out.header;
  h.source_port = reader.read_u16_be();
  h.destination_port = reader.read_u16_be();
  h.sequence = reader.read_u32_be();
  h.ack_number = reader.read_u32_be();
  const std::uint16_t offset_flags = reader.read_u16_be();
  const std::size_t header_len = static_cast<std::size_t>(offset_flags >> 12) * 4;
  if (header_len < TcpHeader::kMinSize || header_len > segment.size()) return std::nullopt;
  h.urg = (offset_flags & 0x020) != 0;
  h.ack = (offset_flags & 0x010) != 0;
  h.psh = (offset_flags & 0x008) != 0;
  h.rst = (offset_flags & 0x004) != 0;
  h.syn = (offset_flags & 0x002) != 0;
  h.fin = (offset_flags & 0x001) != 0;
  h.window = reader.read_u16_be();
  h.checksum = reader.read_u16_be();
  h.urgent_pointer = reader.read_u16_be();
  if (header_len > TcpHeader::kMinSize) {
    h.options = reader.read_bytes(header_len - TcpHeader::kMinSize);
  }
  out.payload = segment.subspan(header_len);
  return out;
}

void TcpHeader::serialize(ByteWriter& out) const {
  // Options must keep the header a multiple of 4 bytes.
  const std::size_t option_len = options.size();
  const std::size_t padded_options = (option_len + 3) / 4 * 4;
  const std::size_t header_len = kMinSize + padded_options;

  out.write_u16_be(source_port);
  out.write_u16_be(destination_port);
  out.write_u32_be(sequence);
  out.write_u32_be(ack_number);
  std::uint16_t offset_flags = static_cast<std::uint16_t>((header_len / 4) << 12);
  if (urg) offset_flags |= 0x020;
  if (ack) offset_flags |= 0x010;
  if (psh) offset_flags |= 0x008;
  if (rst) offset_flags |= 0x004;
  if (syn) offset_flags |= 0x002;
  if (fin) offset_flags |= 0x001;
  out.write_u16_be(offset_flags);
  out.write_u16_be(window);
  out.write_u16_be(checksum);
  out.write_u16_be(urgent_pointer);
  out.write_bytes(options);
  out.write_repeated(0, padded_options - option_len);
}

std::optional<ParsedUdp> parse_udp(BytesView datagram) {
  if (datagram.size() < UdpHeader::kSize) return std::nullopt;
  ByteReader reader(datagram);
  ParsedUdp out;
  UdpHeader& h = out.header;
  h.source_port = reader.read_u16_be();
  h.destination_port = reader.read_u16_be();
  h.length = reader.read_u16_be();
  h.checksum = reader.read_u16_be();
  if (h.length < UdpHeader::kSize || h.length > datagram.size()) return std::nullopt;
  out.payload = datagram.subspan(UdpHeader::kSize, h.length - UdpHeader::kSize);
  return out;
}

void UdpHeader::serialize(ByteWriter& out, std::size_t payload_length) const {
  out.write_u16_be(source_port);
  out.write_u16_be(destination_port);
  out.write_u16_be(static_cast<std::uint16_t>(kSize + payload_length));
  out.write_u16_be(checksum);
}

// --- Slab-batched hot-path decode -----------------------------------
//
// These decoders must classify every frame exactly like decode_packet:
// each rejection below corresponds one-to-one to a nullopt return in
// parse_ethernet / parse_ipv4 / parse_ipv6 / parse_tcp / parse_udp or
// the VLAN/EtherType switch in decode_packet. Keep them in lockstep —
// the slab differential tests (test_slab_decode) enforce it over the
// golden fixtures and the fuzz corpus.

namespace {

inline std::uint16_t load_u16_be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t load_u32_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

/// IHL nibble -> IPv4 header length in bytes (table-driven option
/// skip; entries below 20 are rejected by the validity check).
constexpr std::uint8_t kIhlBytes[16] = {0,  4,  8,  12, 16, 20, 24, 28,
                                        32, 36, 40, 44, 48, 52, 56, 60};
/// Data-offset nibble -> TCP header length in bytes.
constexpr std::uint8_t kTcpOffsetBytes[16] = {0,  4,  8,  12, 16, 20, 24, 28,
                                              32, 36, 40, 44, 48, 52, 56, 60};

/// Link-layer pass result: where the L3 packet starts and which stack
/// parses it. `ether_type` is 0 for frames already rejected.
struct L2Row {
  std::uint32_t l3_offset = 0;
  std::uint16_t ether_type = 0;
};

inline L2Row decode_l2(const std::uint8_t* frame, std::size_t size) {
  L2Row row;
  if (size < EthernetHeader::kSize) return row;  // parse_ethernet nullopt
  std::uint32_t offset = EthernetHeader::kSize;
  std::uint16_t ether_type = load_u16_be(frame + 12);
  if (ether_type == 0x8100) {  // 802.1Q: TCI (2) + inner type (2)
    if (size - offset < 4) return row;
    ether_type = load_u16_be(frame + offset + 2);
    offset += 4;
  }
  if (ether_type != 0x0800 && ether_type != 0x86dd) return row;
  row.l3_offset = offset;
  row.ether_type = ether_type;
  return row;
}

/// IP pass result. `protocol` 0 marks a rejected packet (0 is IPv6
/// hop-by-hop, which the transport switch treats as "other" anyway —
/// but rejection is signalled by `valid`, not the protocol value).
struct L3Row {
  bool valid = false;
  bool is_v6 = false;
  std::uint8_t protocol = 0;
  std::uint32_t address_offset = 0;
  std::uint32_t payload_offset = 0;
  std::uint32_t payload_length = 0;
  std::uint32_t truncated_bytes = 0;
};

inline L3Row decode_l3(const std::uint8_t* frame, std::size_t size,
                       const L2Row& l2, bool allow_truncated) {
  L3Row row;
  if (l2.ether_type == 0) return row;
  const std::uint8_t* p = frame + l2.l3_offset;
  const std::size_t avail = size - l2.l3_offset;
  if (l2.ether_type == 0x0800) {
    if (avail < Ipv4Header::kMinSize) return row;
    if ((p[0] >> 4) != 4) return row;
    const std::size_t header_len = kIhlBytes[p[0] & 0x0f];
    if (header_len < Ipv4Header::kMinSize || header_len > avail) return row;
    const std::uint16_t total_length = load_u16_be(p + 2);
    if (total_length < header_len) return row;
    if (total_length > avail) {
      if (!allow_truncated) return row;
      row.truncated_bytes = static_cast<std::uint32_t>(total_length - avail);
    }
    row.protocol = p[9];
    row.address_offset = l2.l3_offset + 12;
    row.payload_offset = l2.l3_offset + static_cast<std::uint32_t>(header_len);
    row.payload_length = static_cast<std::uint32_t>(
        std::min<std::size_t>(total_length, avail) - header_len);
  } else {  // 0x86dd
    if (avail < Ipv6Header::kSize) return row;
    if ((p[0] >> 4) != 6) return row;
    const std::uint16_t payload_length = load_u16_be(p + 4);
    if (Ipv6Header::kSize + static_cast<std::size_t>(payload_length) > avail) {
      if (!allow_truncated) return row;
      row.truncated_bytes = static_cast<std::uint32_t>(
          Ipv6Header::kSize + payload_length - avail);
    }
    row.is_v6 = true;
    row.protocol = p[6];
    row.address_offset = l2.l3_offset + 8;
    row.payload_offset = l2.l3_offset + Ipv6Header::kSize;
    row.payload_length = static_cast<std::uint32_t>(std::min<std::size_t>(
        payload_length, avail - Ipv6Header::kSize));
  }
  row.valid = true;
  return row;
}

/// Transport pass: classify and fill the TCP columns.
inline void decode_l4(const std::uint8_t* frame, const L3Row& l3,
                      PacketLens& lens) {
  lens.status = LensStatus::kUndecodable;
  if (!l3.valid) return;
  lens.is_v6 = l3.is_v6;
  lens.address_offset = l3.address_offset;
  const std::uint8_t* p = frame + l3.payload_offset;
  const std::uint32_t avail = l3.payload_length;
  if (l3.protocol == 6) {  // TCP
    if (avail < TcpHeader::kMinSize) return;
    const std::size_t header_len = kTcpOffsetBytes[p[12] >> 4];
    if (header_len < TcpHeader::kMinSize || header_len > avail) return;
    lens.status = LensStatus::kTcp;
    lens.tcp_flags = static_cast<std::uint8_t>(p[13] & 0x3f);
    lens.source_port = load_u16_be(p);
    lens.destination_port = load_u16_be(p + 2);
    lens.sequence = load_u32_be(p + 4);
    lens.payload_offset =
        l3.payload_offset + static_cast<std::uint32_t>(header_len);
    lens.payload_length = avail - static_cast<std::uint32_t>(header_len);
    lens.truncated_bytes = l3.truncated_bytes;
  } else if (l3.protocol == 17) {  // UDP
    if (avail < UdpHeader::kSize) return;
    const std::uint16_t length = load_u16_be(p + 4);
    if (length < UdpHeader::kSize || length > avail) return;
    lens.status = LensStatus::kNonTcp;
  } else {
    // IP packet with a transport we don't parse — decodable, non-TCP.
    lens.status = LensStatus::kNonTcp;
  }
}

/// Works over owned Packets and borrowed PacketViews alike: both expose
/// the same three facts the decoder needs (frame bytes, captured size,
/// original length), so one template keeps the paths byte-identical.
template <typename PacketLike>
inline void decode_lens_impl(const PacketLike& packet, PacketLens& out) {
  out = PacketLens{};
  const std::uint8_t* frame = packet.data.data();
  const std::size_t size = packet.data.size();
  const bool allow_truncated = packet.original_length > size;
  const L2Row l2 = decode_l2(frame, size);
  const L3Row l3 = decode_l3(frame, size, l2, allow_truncated);
  decode_l4(frame, l3, out);
}

template <typename PacketLike>
inline void decode_slab_impl(const PacketLike* packets, std::size_t count,
                             DecodedSlab& out) {
  count = std::min(count, DecodedSlab::kCapacity);
  out.count = count;
  // Column passes: the link, IP and transport layers each sweep the
  // whole slab before the next layer starts, so each pass runs one
  // small loop body with a stable branch pattern and the header bytes
  // it touches stay hot across adjacent packets.
  L2Row l2[DecodedSlab::kCapacity];
  for (std::size_t i = 0; i < count; ++i) {
    l2[i] = decode_l2(packets[i].data.data(), packets[i].data.size());
  }
  L3Row l3[DecodedSlab::kCapacity];
  for (std::size_t i = 0; i < count; ++i) {
    const PacketLike& packet = packets[i];
    l3[i] = decode_l3(packet.data.data(), packet.data.size(), l2[i],
                      packet.original_length > packet.data.size());
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.lens[i] = PacketLens{};
    decode_l4(packets[i].data.data(), l3[i], out.lens[i]);
  }
}

}  // namespace

void decode_lens(const Packet& packet, PacketLens& out) {
  decode_lens_impl(packet, out);
}

void decode_lens(const PacketView& packet, PacketLens& out) {
  decode_lens_impl(packet, out);
}

void decode_slab(const Packet* packets, std::size_t count, DecodedSlab& out) {
  decode_slab_impl(packets, count, out);
}

void decode_slab(const PacketView* packets, std::size_t count,
                 DecodedSlab& out) {
  decode_slab_impl(packets, count, out);
}

}  // namespace wm::net
