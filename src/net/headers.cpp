#include "wm/net/headers.hpp"

#include <algorithm>

#include "wm/net/checksum.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {

using util::ByteReader;
using util::ByteWriter;
using util::BytesView;

std::string to_string(EtherType type) {
  switch (type) {
    case EtherType::kIpv4: return "IPv4";
    case EtherType::kArp: return "ARP";
    case EtherType::kIpv6: return "IPv6";
    case EtherType::kVlan: return "VLAN";
  }
  return "EtherType(0x" + util::to_hex({}) + ")";
}

std::string to_string(IpProtocol protocol) {
  switch (protocol) {
    case IpProtocol::kIcmp: return "ICMP";
    case IpProtocol::kTcp: return "TCP";
    case IpProtocol::kUdp: return "UDP";
  }
  return "proto(" + std::to_string(static_cast<int>(protocol)) + ")";
}

std::optional<ParsedEthernet> parse_ethernet(BytesView frame) {
  if (frame.size() < EthernetHeader::kSize) return std::nullopt;
  ByteReader reader(frame);
  ParsedEthernet out;
  std::array<std::uint8_t, 6> mac{};
  auto read_mac = [&reader, &mac] {
    const BytesView view = reader.read_view(6);
    std::copy(view.begin(), view.end(), mac.begin());
    return MacAddress(mac);
  };
  out.header.destination = read_mac();
  out.header.source = read_mac();
  out.header.ether_type = reader.read_u16_be();
  out.payload = frame.subspan(EthernetHeader::kSize);
  return out;
}

void EthernetHeader::serialize(ByteWriter& out) const {
  out.write_bytes(destination.octets());
  out.write_bytes(source.octets());
  out.write_u16_be(ether_type);
}

std::optional<ParsedIpv4> parse_ipv4(BytesView packet, bool allow_truncated) {
  if (packet.size() < Ipv4Header::kMinSize) return std::nullopt;
  ByteReader reader(packet);
  const std::uint8_t version_ihl = reader.read_u8();
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t header_len = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (header_len < Ipv4Header::kMinSize || header_len > packet.size()) return std::nullopt;

  ParsedIpv4 out;
  Ipv4Header& h = out.header;
  h.dscp_ecn = reader.read_u8();
  h.total_length = reader.read_u16_be();
  if (h.total_length < header_len) return std::nullopt;
  if (h.total_length > packet.size()) {
    if (!allow_truncated) return std::nullopt;
    out.truncated_bytes = h.total_length - packet.size();
  }
  h.identification = reader.read_u16_be();
  const std::uint16_t flags_frag = reader.read_u16_be();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = reader.read_u8();
  h.protocol = reader.read_u8();
  h.header_checksum = reader.read_u16_be();
  h.source = Ipv4Address(reader.read_u32_be());
  h.destination = Ipv4Address(reader.read_u32_be());
  if (header_len > Ipv4Header::kMinSize) {
    h.options = reader.read_bytes(header_len - Ipv4Header::kMinSize);
  }
  out.checksum_valid = internet_checksum(packet.subspan(0, header_len)) == 0;
  const std::size_t available =
      std::min<std::size_t>(h.total_length, packet.size()) - header_len;
  out.payload = packet.subspan(header_len, available);
  return out;
}

void Ipv4Header::serialize(ByteWriter& out, std::size_t payload_length) const {
  const std::size_t header_len = header_length();
  const std::size_t start = out.size();
  out.write_u8(static_cast<std::uint8_t>(0x40 | (header_len / 4)));
  out.write_u8(dscp_ecn);
  out.write_u16_be(static_cast<std::uint16_t>(header_len + payload_length));
  out.write_u16_be(identification);
  std::uint16_t flags_frag = fragment_offset & 0x1fff;
  if (dont_fragment) flags_frag |= 0x4000;
  if (more_fragments) flags_frag |= 0x2000;
  out.write_u16_be(flags_frag);
  out.write_u8(ttl);
  out.write_u8(protocol);
  out.write_u16_be(0);  // checksum placeholder
  out.write_u32_be(source.value());
  out.write_u32_be(destination.value());
  out.write_bytes(options);
  const std::uint16_t checksum =
      internet_checksum(out.view().subspan(start, header_len));
  out.patch_u16_be(start + 10, checksum);
}

std::optional<ParsedIpv6> parse_ipv6(BytesView packet, bool allow_truncated) {
  if (packet.size() < Ipv6Header::kSize) return std::nullopt;
  ByteReader reader(packet);
  const std::uint32_t first = reader.read_u32_be();
  if ((first >> 28) != 6) return std::nullopt;

  ParsedIpv6 out;
  Ipv6Header& h = out.header;
  h.traffic_class = static_cast<std::uint8_t>((first >> 20) & 0xff);
  h.flow_label = first & 0xfffff;
  h.payload_length = reader.read_u16_be();
  h.next_header = reader.read_u8();
  h.hop_limit = reader.read_u8();
  std::array<std::uint8_t, 16> addr{};
  auto read_addr = [&reader, &addr] {
    const BytesView view = reader.read_view(16);
    std::copy(view.begin(), view.end(), addr.begin());
    return Ipv6Address(addr);
  };
  h.source = read_addr();
  h.destination = read_addr();
  if (Ipv6Header::kSize + h.payload_length > packet.size()) {
    if (!allow_truncated) return std::nullopt;
    out.truncated_bytes = Ipv6Header::kSize + h.payload_length - packet.size();
  }
  out.payload = packet.subspan(
      Ipv6Header::kSize,
      std::min<std::size_t>(h.payload_length, packet.size() - Ipv6Header::kSize));
  return out;
}

void Ipv6Header::serialize(ByteWriter& out, std::size_t body_length) const {
  const std::uint32_t first = (6u << 28) |
                              (static_cast<std::uint32_t>(traffic_class) << 20) |
                              (flow_label & 0xfffff);
  out.write_u32_be(first);
  out.write_u16_be(static_cast<std::uint16_t>(body_length));
  out.write_u8(next_header);
  out.write_u8(hop_limit);
  out.write_bytes(source.octets());
  out.write_bytes(destination.octets());
}

std::string TcpHeader::flags_string() const {
  std::string out;
  auto append = [&out](bool set, const char* name) {
    if (!set) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  append(syn, "SYN");
  append(fin, "FIN");
  append(rst, "RST");
  append(psh, "PSH");
  append(ack, "ACK");
  append(urg, "URG");
  return out.empty() ? "-" : out;
}

std::optional<ParsedTcp> parse_tcp(BytesView segment) {
  if (segment.size() < TcpHeader::kMinSize) return std::nullopt;
  ByteReader reader(segment);
  ParsedTcp out;
  TcpHeader& h = out.header;
  h.source_port = reader.read_u16_be();
  h.destination_port = reader.read_u16_be();
  h.sequence = reader.read_u32_be();
  h.ack_number = reader.read_u32_be();
  const std::uint16_t offset_flags = reader.read_u16_be();
  const std::size_t header_len = static_cast<std::size_t>(offset_flags >> 12) * 4;
  if (header_len < TcpHeader::kMinSize || header_len > segment.size()) return std::nullopt;
  h.urg = (offset_flags & 0x020) != 0;
  h.ack = (offset_flags & 0x010) != 0;
  h.psh = (offset_flags & 0x008) != 0;
  h.rst = (offset_flags & 0x004) != 0;
  h.syn = (offset_flags & 0x002) != 0;
  h.fin = (offset_flags & 0x001) != 0;
  h.window = reader.read_u16_be();
  h.checksum = reader.read_u16_be();
  h.urgent_pointer = reader.read_u16_be();
  if (header_len > TcpHeader::kMinSize) {
    h.options = reader.read_bytes(header_len - TcpHeader::kMinSize);
  }
  out.payload = segment.subspan(header_len);
  return out;
}

void TcpHeader::serialize(ByteWriter& out) const {
  // Options must keep the header a multiple of 4 bytes.
  const std::size_t option_len = options.size();
  const std::size_t padded_options = (option_len + 3) / 4 * 4;
  const std::size_t header_len = kMinSize + padded_options;

  out.write_u16_be(source_port);
  out.write_u16_be(destination_port);
  out.write_u32_be(sequence);
  out.write_u32_be(ack_number);
  std::uint16_t offset_flags = static_cast<std::uint16_t>((header_len / 4) << 12);
  if (urg) offset_flags |= 0x020;
  if (ack) offset_flags |= 0x010;
  if (psh) offset_flags |= 0x008;
  if (rst) offset_flags |= 0x004;
  if (syn) offset_flags |= 0x002;
  if (fin) offset_flags |= 0x001;
  out.write_u16_be(offset_flags);
  out.write_u16_be(window);
  out.write_u16_be(checksum);
  out.write_u16_be(urgent_pointer);
  out.write_bytes(options);
  out.write_repeated(0, padded_options - option_len);
}

std::optional<ParsedUdp> parse_udp(BytesView datagram) {
  if (datagram.size() < UdpHeader::kSize) return std::nullopt;
  ByteReader reader(datagram);
  ParsedUdp out;
  UdpHeader& h = out.header;
  h.source_port = reader.read_u16_be();
  h.destination_port = reader.read_u16_be();
  h.length = reader.read_u16_be();
  h.checksum = reader.read_u16_be();
  if (h.length < UdpHeader::kSize || h.length > datagram.size()) return std::nullopt;
  out.payload = datagram.subspan(UdpHeader::kSize, h.length - UdpHeader::kSize);
  return out;
}

void UdpHeader::serialize(ByteWriter& out, std::size_t payload_length) const {
  out.write_u16_be(source_port);
  out.write_u16_be(destination_port);
  out.write_u16_be(static_cast<std::uint16_t>(kSize + payload_length));
  out.write_u16_be(checksum);
}

}  // namespace wm::net
