#include "wm/net/packet.hpp"

#include <sstream>

#include "wm/util/strings.hpp"

namespace wm::net {

std::optional<DecodedPacket> decode_packet(const Packet& packet) {
  const auto eth = parse_ethernet(packet.data);
  if (!eth) return std::nullopt;

  DecodedPacket out;
  out.timestamp = packet.timestamp;
  out.ethernet = eth->header;

  // Unwrap an optional 802.1Q VLAN tag: TCI (2 bytes) + inner type.
  util::BytesView l3 = eth->payload;
  std::uint16_t ether_type = eth->header.ether_type;
  if (static_cast<EtherType>(ether_type) == EtherType::kVlan) {
    if (l3.size() < 4) return std::nullopt;
    out.vlan_id = static_cast<std::uint16_t>(((l3[0] << 8) | l3[1]) & 0x0fff);
    ether_type = static_cast<std::uint16_t>((l3[2] << 8) | l3[3]);
    l3 = l3.subspan(4);
  }

  // A frame shorter than its wire length (snaplen truncation) is still
  // decodable as long as the headers survived: the missing payload tail
  // is counted so reassembly can record it as an explicit gap.
  const bool allow_truncated = packet.original_length > packet.data.size();

  util::BytesView ip_payload;
  std::size_t ip_truncated = 0;
  std::uint8_t protocol = 0;
  switch (static_cast<EtherType>(ether_type)) {
    case EtherType::kIpv4: {
      const auto ip = parse_ipv4(l3, allow_truncated);
      if (!ip) return std::nullopt;
      out.ip = ip->header;
      ip_payload = ip->payload;
      ip_truncated = ip->truncated_bytes;
      protocol = ip->header.protocol;
      break;
    }
    case EtherType::kIpv6: {
      const auto ip = parse_ipv6(l3, allow_truncated);
      if (!ip) return std::nullopt;
      out.ip = ip->header;
      ip_payload = ip->payload;
      ip_truncated = ip->truncated_bytes;
      protocol = ip->header.next_header;
      break;
    }
    default:
      return std::nullopt;
  }

  switch (static_cast<IpProtocol>(protocol)) {
    case IpProtocol::kTcp: {
      const auto tcp = parse_tcp(ip_payload);
      if (!tcp) return std::nullopt;
      out.transport = tcp->header;
      out.transport_payload = tcp->payload;
      out.transport_payload_missing = ip_truncated;
      break;
    }
    case IpProtocol::kUdp: {
      const auto udp = parse_udp(ip_payload);
      if (!udp) return std::nullopt;
      out.transport = udp->header;
      out.transport_payload = udp->payload;
      break;
    }
    default:
      // IP packet with a transport we don't parse; still useful for
      // volume statistics.
      out.transport_payload = ip_payload;
      break;
  }
  return out;
}

std::string DecodedPacket::summary() const {
  std::ostringstream out;
  out << timestamp.to_string() << ' ';

  std::string src_ip = "?";
  std::string dst_ip = "?";
  if (has_ipv4()) {
    src_ip = ipv4().source.to_string();
    dst_ip = ipv4().destination.to_string();
  } else if (has_ipv6()) {
    src_ip = ipv6().source.to_string();
    dst_ip = ipv6().destination.to_string();
  }

  if (has_tcp()) {
    const TcpHeader& h = tcp();
    out << src_ip << ':' << h.source_port << " -> " << dst_ip << ':'
        << h.destination_port << " TCP " << h.flags_string() << " len="
        << transport_payload.size();
  } else if (has_udp()) {
    const UdpHeader& h = udp();
    out << src_ip << ':' << h.source_port << " -> " << dst_ip << ':'
        << h.destination_port << " UDP len=" << transport_payload.size();
  } else {
    out << src_ip << " -> " << dst_ip << " len=" << transport_payload.size();
  }
  return out.str();
}

}  // namespace wm::net
