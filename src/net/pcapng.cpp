#include "wm/net/pcapng.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "wm/net/pcap.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {

namespace {

constexpr std::uint32_t kByteOrderMagic = 0x1a2b3c4d;

void put_u16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Append an option (code, value) with pcapng 4-byte padding.
void put_option(util::Bytes& out, std::uint16_t code, util::BytesView value) {
  put_u16(out, code);
  put_u16(out, static_cast<std::uint16_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
  while (out.size() % 4 != 0) out.push_back(0);
}

void put_end_of_options(util::Bytes& out) {
  put_u16(out, 0);  // opt_endofopt
  put_u16(out, 0);
}

/// Wrap a block body in the type/length framing and write it.
void write_block(std::ostream& out, std::uint32_t type, const util::Bytes& body) {
  const std::uint32_t total =
      static_cast<std::uint32_t>(12 + (body.size() + 3) / 4 * 4);
  util::Bytes frame;
  frame.reserve(total);
  put_u32(frame, type);
  put_u32(frame, total);
  frame.insert(frame.end(), body.begin(), body.end());
  while ((frame.size() + 4) % 4 != 0) frame.push_back(0);
  put_u32(frame, total);
  util::write_all(out, frame);
  if (!out) throw std::runtime_error("pcapng: write failed");
}

std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

}  // namespace

PcapngWriter::PcapngWriter(const std::filesystem::path& path, std::string application)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::binary)),
      out_(owned_.get()) {
  if (!*out_) {
    throw std::runtime_error("PcapngWriter: cannot open " + path.string());
  }
  write_preamble(application);
}

PcapngWriter::PcapngWriter(std::ostream& out, std::string application) : out_(&out) {
  write_preamble(application);
}

PcapngWriter::~PcapngWriter() {
  if (out_) out_->flush();
}

void PcapngWriter::write_preamble(const std::string& application) {
  // Section Header Block.
  util::Bytes shb;
  put_u32(shb, kByteOrderMagic);
  put_u16(shb, 1);  // major
  put_u16(shb, 0);  // minor
  put_u64(shb, 0xffffffffffffffffull);  // section length unknown
  put_option(shb, 4 /*shb_userappl*/, util::as_bytes(application));
  put_end_of_options(shb);
  write_block(*out_, static_cast<std::uint32_t>(PcapngBlockType::kSectionHeader), shb);

  // Interface Description Block: Ethernet, nanosecond timestamps.
  util::Bytes idb;
  put_u16(idb, 1);  // LINKTYPE_ETHERNET
  put_u16(idb, 0);  // reserved
  put_u32(idb, 0);  // snaplen unlimited
  const std::uint8_t tsresol = 9;  // 10^-9
  put_option(idb, 9 /*if_tsresol*/, util::BytesView(&tsresol, 1));
  put_end_of_options(idb);
  write_block(*out_,
              static_cast<std::uint32_t>(PcapngBlockType::kInterfaceDescription),
              idb);
}

void PcapngWriter::write(const Packet& packet) {
  if (packet.timestamp.nanos() < 0) {
    throw std::invalid_argument("PcapngWriter: negative timestamp");
  }
  const auto ticks = static_cast<std::uint64_t>(packet.timestamp.nanos());

  util::Bytes epb;
  put_u32(epb, 0);  // interface id
  put_u32(epb, static_cast<std::uint32_t>(ticks >> 32));
  put_u32(epb, static_cast<std::uint32_t>(ticks & 0xffffffffu));
  put_u32(epb, static_cast<std::uint32_t>(packet.data.size()));
  put_u32(epb, static_cast<std::uint32_t>(
                   std::max(packet.original_length, packet.data.size())));
  epb.insert(epb.end(), packet.data.begin(), packet.data.end());
  while (epb.size() % 4 != 0) epb.push_back(0);
  write_block(*out_, static_cast<std::uint32_t>(PcapngBlockType::kEnhancedPacket),
              epb);
  ++packets_written_;
}

void PcapngWriter::flush() { out_->flush(); }

PcapngReader::PcapngReader(const std::filesystem::path& path)
    : map_(util::MappedFile::open(path)) {
  if (map_.valid()) return;  // fast path: blocks parsed in place
  owned_ = std::make_unique<std::ifstream>(path, std::ios::binary);
  in_ = owned_.get();
  if (!*in_) {
    throw std::runtime_error("PcapngReader: cannot open " + path.string());
  }
}

PcapngReader::PcapngReader(std::istream& in) : in_(&in) {}

PcapngReader::~PcapngReader() = default;

bool PcapngReader::read_block_mapped(std::uint32_t& type, util::BytesView& body) {
  const util::BytesView file = map_.view();
  if (map_pos_ == file.size()) return false;  // clean EOF
  if (file.size() - map_pos_ < 12) {
    throw std::runtime_error("pcapng: truncated block header");
  }
  const std::uint8_t* base = file.data() + map_pos_;
  std::uint32_t length = 0;
  std::memcpy(&type, base, 4);
  std::memcpy(&length, base + 4, 4);
  // The SHB announces byte order; other blocks use the section's order.
  if (type == static_cast<std::uint32_t>(PcapngBlockType::kSectionHeader)) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, base + 8, 4);
    byte_swapped_ = magic != kByteOrderMagic;
    if (byte_swapped_ && byteswap32(magic) != kByteOrderMagic) {
      throw std::runtime_error("pcapng: bad byte-order magic");
    }
  }
  if (byte_swapped_) length = byteswap32(length);
  if (length < 12 || length % 4 != 0) {
    throw std::runtime_error("pcapng: implausible block length");
  }
  if (file.size() - map_pos_ < length) {
    throw std::runtime_error("pcapng: truncated block body");
  }
  std::uint32_t trailing = 0;
  std::memcpy(&trailing, base + length - 4, 4);
  if ((byte_swapped_ ? byteswap32(trailing) : trailing) != length) {
    throw std::runtime_error("pcapng: trailer length mismatch");
  }
  body = file.subspan(map_pos_ + 8, length - 12);
  map_pos_ += length;
  // Overlap the next block header's cache miss with the caller's work
  // on this block (the block stride defeats the hardware prefetcher).
  if (map_pos_ < file.size()) __builtin_prefetch(file.data() + map_pos_);
  return true;
}

bool PcapngReader::read_block_streamed(std::uint32_t& type, util::BytesView& body) {
  std::uint8_t header[8];
  const std::size_t header_read = util::read_exact(*in_, header, 8);
  if (header_read == 0) return false;  // clean EOF
  if (header_read != 8) throw std::runtime_error("pcapng: truncated block header");
  std::uint32_t length = 0;
  std::memcpy(&type, header, 4);
  std::memcpy(&length, header + 4, 4);
  // The SHB announces byte order; other blocks use the section's order.
  // Its byte-order magic (first body word) must be consumed before the
  // length can be interpreted, so stage it ahead of the bulk body read.
  std::size_t prefix = 0;
  std::uint8_t magic_bytes[4];
  if (type == static_cast<std::uint32_t>(PcapngBlockType::kSectionHeader)) {
    if (util::read_exact(*in_, magic_bytes, 4) != 4) {
      throw std::runtime_error("pcapng: truncated SHB");
    }
    std::uint32_t magic = 0;
    std::memcpy(&magic, magic_bytes, 4);
    byte_swapped_ = magic != kByteOrderMagic;
    if (byte_swapped_ && byteswap32(magic) != kByteOrderMagic) {
      throw std::runtime_error("pcapng: bad byte-order magic");
    }
    prefix = 4;
  }
  if (byte_swapped_) length = byteswap32(length);
  if (length < 12 || length % 4 != 0 || length - 12 < prefix) {
    throw std::runtime_error("pcapng: implausible block length");
  }
  const std::size_t body_size = length - 12;
  // Body and trailer land in the recycled staging buffer with one bulk
  // read; steady state re-uses the buffer's capacity (no per-block
  // allocation).
  body_scratch_.resize(body_size + 4);
  std::memcpy(body_scratch_.data(), magic_bytes, prefix);
  const std::size_t want = body_size + 4 - prefix;
  if (util::read_exact(*in_, body_scratch_.data() + prefix, want) != want) {
    throw std::runtime_error("pcapng: truncated block body");
  }
  std::uint32_t trailing = 0;
  std::memcpy(&trailing, body_scratch_.data() + body_size, 4);
  if ((byte_swapped_ ? byteswap32(trailing) : trailing) != length) {
    throw std::runtime_error("pcapng: trailer length mismatch");
  }
  body = util::BytesView(body_scratch_.data(), body_size);
  return true;
}

void PcapngReader::start_section(util::BytesView body) {
  interfaces_.clear();
  if (body.size() < 4) throw std::runtime_error("pcapng: SHB too short");
  // Byte order was already established from the magic while framing the
  // block; nothing else needed here.
}

void PcapngReader::add_interface(util::BytesView body) {
  if (body.size() < 8) throw std::runtime_error("pcapng: IDB too short");
  Interface iface;
  std::uint16_t link = 0;
  std::memcpy(&link, body.data(), 2);
  iface.link_type = byte_swapped_ ? byteswap16(link) : link;

  // Walk options for if_tsresol (code 9).
  std::size_t pos = 8;
  while (pos + 4 <= body.size()) {
    std::uint16_t code = 0;
    std::uint16_t len = 0;
    std::memcpy(&code, body.data() + pos, 2);
    std::memcpy(&len, body.data() + pos + 2, 2);
    if (byte_swapped_) {
      code = byteswap16(code);
      len = byteswap16(len);
    }
    pos += 4;
    if (code == 0) break;  // end of options
    if (code == 9 && len >= 1 && pos < body.size()) {
      const std::uint8_t tsresol = body[pos];
      const std::uint8_t exponent = tsresol & 0x7f;
      // A resolution finer than 2^63 (or 10^19) ticks/second cannot be
      // represented in the 64-bit tick counter — the file is lying.
      // (Found by fuzzing: 1ull << 89 is undefined behaviour.)
      if ((tsresol & 0x80) ? exponent > 63 : exponent > 19) {
        throw std::runtime_error("pcapng: unrepresentable if_tsresol");
      }
      if (tsresol & 0x80) {
        iface.ticks_per_second = 1ull << exponent;
      } else {
        iface.ticks_per_second = 1;
        for (int i = 0; i < exponent; ++i) iface.ticks_per_second *= 10;
      }
    }
    pos += (len + 3u) / 4u * 4u;
  }
  interfaces_.push_back(iface);
}

std::optional<PacketView> PcapngReader::parse_enhanced(util::BytesView body) {
  if (body.size() < 20) throw std::runtime_error("pcapng: EPB too short");
  auto read_u32_at = [&](std::size_t offset) {
    std::uint32_t v = 0;
    std::memcpy(&v, body.data() + offset, 4);
    return byte_swapped_ ? byteswap32(v) : v;
  };
  const std::uint32_t interface_id = read_u32_at(0);
  const std::uint64_t ticks =
      (static_cast<std::uint64_t>(read_u32_at(4)) << 32) | read_u32_at(8);
  const std::uint32_t captured = read_u32_at(12);
  const std::uint32_t original = read_u32_at(16);
  if (20 + captured > body.size()) {
    throw std::runtime_error("pcapng: EPB captured length exceeds block");
  }
  if (interface_id >= interfaces_.size()) {
    throw std::runtime_error("pcapng: EPB references unknown interface");
  }
  const Interface& iface = interfaces_[interface_id];
  if (iface.link_type != 1) return std::nullopt;  // non-Ethernet: skip

  PacketView view;
  const double seconds =
      static_cast<double>(ticks) / static_cast<double>(iface.ticks_per_second);
  // Exact when ticks_per_second divides 1e9 (the common cases).
  if (1'000'000'000ull % iface.ticks_per_second == 0) {
    const std::uint64_t scale = 1'000'000'000ull / iface.ticks_per_second;
    view.timestamp =
        util::SimTime::from_nanos(static_cast<std::int64_t>(ticks * scale));
  } else {
    view.timestamp = util::SimTime::from_seconds(seconds);
  }
  view.data = body.subspan(20, captured);
  view.original_length = original;
  return view;
}

std::optional<PacketView> PcapngReader::next_view() {
  for (;;) {
    std::uint32_t type = 0;
    util::BytesView body;
    const bool have_block = map_.valid() ? read_block_mapped(type, body)
                                         : read_block_streamed(type, body);
    if (!have_block) return std::nullopt;

    switch (static_cast<PcapngBlockType>(type)) {
      case PcapngBlockType::kSectionHeader:
        start_section(body);
        break;
      case PcapngBlockType::kInterfaceDescription:
        add_interface(body);
        break;
      case PcapngBlockType::kEnhancedPacket: {
        auto view = parse_enhanced(body);
        if (view) return view;
        break;
      }
      default:
        ++blocks_skipped_;
        break;
    }
  }
}

std::optional<Packet> PcapngReader::next() {
  const auto view = next_view();
  if (!view) return std::nullopt;
  return view->to_packet();
}

std::vector<Packet> PcapngReader::read_all() {
  std::vector<Packet> out;
  while (auto packet = next()) out.push_back(std::move(*packet));
  return out;
}

void write_pcapng(const std::filesystem::path& path,
                  const std::vector<Packet>& packets) {
  PcapngWriter writer(path);
  for (const Packet& packet : packets) writer.write(packet);
}

std::vector<Packet> read_pcapng(const std::filesystem::path& path) {
  PcapngReader reader(path);
  return reader.read_all();
}

std::vector<Packet> read_any_capture(const std::filesystem::path& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    throw std::runtime_error("read_any_capture: cannot open " + path.string());
  }
  std::uint32_t magic = 0;
  std::uint8_t magic_bytes[4] = {};
  if (util::read_exact(probe, magic_bytes, 4) == 4) {
    std::memcpy(&magic, magic_bytes, 4);
  }
  probe.close();
  if (magic == static_cast<std::uint32_t>(PcapngBlockType::kSectionHeader)) {
    return read_pcapng(path);
  }
  return read_pcap(path);
}

}  // namespace wm::net
