#include "wm/tls/cipher.hpp"

#include <stdexcept>

namespace wm::tls {

namespace {

constexpr std::size_t kGcmTag = 16;
constexpr std::size_t kGcmExplicitNonce = 8;  // TLS 1.2 GCM only
constexpr std::size_t kCbcBlock = 16;
constexpr std::size_t kCbcIv = 16;
constexpr std::size_t kHmacSha1 = 20;

}  // namespace

std::string to_string(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kTlsEcdheRsaAes128GcmSha256:
      return "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256";
    case CipherSuite::kTlsEcdheRsaAes256GcmSha384:
      return "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384";
    case CipherSuite::kTlsEcdheRsaChacha20Poly1305:
      return "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256";
    case CipherSuite::kTlsRsaAes128CbcSha:
      return "TLS_RSA_WITH_AES_128_CBC_SHA";
    case CipherSuite::kTlsAes128GcmSha256:
      return "TLS_AES_128_GCM_SHA256";
    case CipherSuite::kTlsAes256GcmSha384:
      return "TLS_AES_256_GCM_SHA384";
    case CipherSuite::kTlsChacha20Poly1305Sha256:
      return "TLS_CHACHA20_POLY1305_SHA256";
  }
  return "cipher_suite(unknown)";
}

bool is_tls13_suite(CipherSuite suite) {
  const auto value = static_cast<std::uint16_t>(suite);
  return value >= 0x1301 && value <= 0x1305;
}

CipherModel::CipherModel(CipherSuite suite, std::size_t tls13_pad_to)
    : suite_(suite), tls13_pad_to_(tls13_pad_to) {}

std::size_t CipherModel::seal_size(std::size_t plaintext_size) const {
  if (is_tls13_suite(suite_)) {
    // TLSInnerPlaintext = plaintext || content_type (1 byte) || zero pad
    std::size_t inner = plaintext_size + 1;
    if (tls13_pad_to_ > 0) {
      inner = (inner + tls13_pad_to_ - 1) / tls13_pad_to_ * tls13_pad_to_;
    }
    return inner + kGcmTag;
  }
  switch (suite_) {
    case CipherSuite::kTlsEcdheRsaAes128GcmSha256:
    case CipherSuite::kTlsEcdheRsaAes256GcmSha384:
      return kGcmExplicitNonce + plaintext_size + kGcmTag;
    case CipherSuite::kTlsEcdheRsaChacha20Poly1305:
      return plaintext_size + kGcmTag;
    case CipherSuite::kTlsRsaAes128CbcSha: {
      // IV || pad(plaintext || HMAC) — pad to block, always >= 1 byte.
      const std::size_t macced = plaintext_size + kHmacSha1;
      const std::size_t padded = (macced / kCbcBlock + 1) * kCbcBlock;
      return kCbcIv + padded;
    }
    default:
      throw std::logic_error("CipherModel: unhandled suite");
  }
}

std::size_t CipherModel::open_size(std::size_t ciphertext_size) const {
  if (is_tls13_suite(suite_)) {
    if (ciphertext_size < kGcmTag + 1) return 0;
    return ciphertext_size - kGcmTag - 1;  // maximum (pad unknown)
  }
  switch (suite_) {
    case CipherSuite::kTlsEcdheRsaAes128GcmSha256:
    case CipherSuite::kTlsEcdheRsaAes256GcmSha384:
      if (ciphertext_size < kGcmExplicitNonce + kGcmTag) return 0;
      return ciphertext_size - kGcmExplicitNonce - kGcmTag;
    case CipherSuite::kTlsEcdheRsaChacha20Poly1305:
      if (ciphertext_size < kGcmTag) return 0;
      return ciphertext_size - kGcmTag;
    case CipherSuite::kTlsRsaAes128CbcSha:
      if (ciphertext_size < kCbcIv + kCbcBlock) return 0;
      // Max plaintext: strip IV, minimum 1 pad byte, MAC.
      return ciphertext_size - kCbcIv - 1 - kHmacSha1;
    default:
      throw std::logic_error("CipherModel: unhandled suite");
  }
}

std::size_t CipherModel::overhead() const { return seal_size(0); }

}  // namespace wm::tls
