#include "wm/tls/record.hpp"

namespace wm::tls {

std::string to_string(ContentType type) {
  switch (type) {
    case ContentType::kChangeCipherSpec: return "change_cipher_spec";
    case ContentType::kAlert: return "alert";
    case ContentType::kHandshake: return "handshake";
    case ContentType::kApplicationData: return "application_data";
    case ContentType::kHeartbeat: return "heartbeat";
  }
  return "content_type(" + std::to_string(static_cast<int>(type)) + ")";
}

bool is_known_content_type(std::uint8_t value) {
  return value >= 20 && value <= 24;
}

std::string to_string(ProtocolVersion version) {
  switch (version) {
    case ProtocolVersion::kSsl30: return "SSLv3.0";
    case ProtocolVersion::kTls10: return "TLSv1.0";
    case ProtocolVersion::kTls11: return "TLSv1.1";
    case ProtocolVersion::kTls12: return "TLSv1.2";
    case ProtocolVersion::kTls13: return "TLSv1.3";
  }
  return "version(0x" + std::to_string(static_cast<int>(version)) + ")";
}

void serialize_record(const TlsRecord& record, util::ByteWriter& out) {
  out.write_u8(static_cast<std::uint8_t>(record.content_type));
  out.write_u16_be(record.version_raw);
  out.write_u16_be(record.length());
  out.write_bytes(record.payload);
}

util::Bytes serialize_records(const std::vector<TlsRecord>& records) {
  std::size_t total = 0;
  for (const TlsRecord& record : records) total += record.wire_size();
  util::ByteWriter out(total);
  for (const TlsRecord& record : records) serialize_record(record, out);
  return out.take();
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::feed(
    util::SimTime timestamp, util::BytesView data) {
  std::vector<ParsedRecord> out;
  if (desynchronized_) {
    consumed_ += data.size();
    return out;
  }

  buffer_.insert(buffer_.end(), data.begin(), data.end());
  consumed_ += data.size();

  std::size_t pos = 0;
  while (buffer_.size() - pos >= kRecordHeaderSize) {
    const std::uint8_t type = buffer_[pos];
    const std::uint16_t version =
        static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
    const std::uint16_t length =
        static_cast<std::uint16_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);

    // Sanity-check the header. A bad content type or version byte means
    // we are looking at ciphertext or a gapped stream.
    const bool plausible_version = (version >= 0x0300 && version <= 0x0304);
    if (!is_known_content_type(type) || !plausible_version ||
        length > kMaxCiphertextLength) {
      desynchronized_ = true;
      break;
    }

    if (buffer_.size() - pos - kRecordHeaderSize <
        static_cast<std::size_t>(length)) {
      break;  // incomplete record; wait for more bytes
    }

    ParsedRecord parsed;
    parsed.timestamp = timestamp;
    parsed.stream_offset = buffer_start_ + pos;
    parsed.record.content_type = static_cast<ContentType>(type);
    parsed.record.version_raw = version;
    parsed.record.payload.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + kRecordHeaderSize),
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + kRecordHeaderSize + length));
    out.push_back(std::move(parsed));
    ++records_parsed_;
    pos += kRecordHeaderSize + length;
  }

  if (pos > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
    buffer_start_ += pos;
  }
  return out;
}

}  // namespace wm::tls
