#include "wm/tls/record.hpp"

namespace wm::tls {

std::string to_string(ContentType type) {
  switch (type) {
    case ContentType::kChangeCipherSpec: return "change_cipher_spec";
    case ContentType::kAlert: return "alert";
    case ContentType::kHandshake: return "handshake";
    case ContentType::kApplicationData: return "application_data";
    case ContentType::kHeartbeat: return "heartbeat";
  }
  return "content_type(" + std::to_string(static_cast<int>(type)) + ")";
}

bool is_known_content_type(std::uint8_t value) {
  return value >= 20 && value <= 24;
}

std::string to_string(ProtocolVersion version) {
  switch (version) {
    case ProtocolVersion::kSsl30: return "SSLv3.0";
    case ProtocolVersion::kTls10: return "TLSv1.0";
    case ProtocolVersion::kTls11: return "TLSv1.1";
    case ProtocolVersion::kTls12: return "TLSv1.2";
    case ProtocolVersion::kTls13: return "TLSv1.3";
  }
  return "version(0x" + std::to_string(static_cast<int>(version)) + ")";
}

void serialize_record(const TlsRecord& record, util::ByteWriter& out) {
  out.write_u8(static_cast<std::uint8_t>(record.content_type));
  out.write_u16_be(record.version_raw);
  out.write_u16_be(record.length());
  out.write_bytes(record.payload);
}

util::Bytes serialize_records(const std::vector<TlsRecord>& records) {
  std::size_t total = 0;
  for (const TlsRecord& record : records) total += record.wire_size();
  util::ByteWriter out(total);
  for (const TlsRecord& record : records) serialize_record(record, out);
  return out.take();
}

bool TlsRecordParser::plausible_header(std::size_t pos) const {
  if (buffer_.size() - pos < kRecordHeaderSize) return false;
  const std::uint8_t type = buffer_[pos];
  const std::uint16_t version =
      static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
  const std::uint16_t length =
      static_cast<std::uint16_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);
  const bool plausible_version = (version >= 0x0300 && version <= 0x0304);
  return is_known_content_type(type) && plausible_version &&
         length <= kMaxCiphertextLength;
}

util::SimTime TlsRecordParser::time_for(std::uint64_t end_offset,
                                        util::SimTime fallback) const {
  // The record is completed by the first chunk whose end reaches the
  // record's last byte; marks are in ascending end order.
  for (const ChunkMark& mark : marks_) {
    if (mark.end >= end_offset) return mark.time;
  }
  return fallback;
}

bool TlsRecordParser::try_resync(std::size_t& pos, bool relaxed) {
  std::size_t c = pos;
  while (c < buffer_.size()) {
    // Candidate headers start with a known content type byte — skip to
    // the next one.
    if (!is_known_content_type(buffer_[c])) {
      ++c;
      continue;
    }
    if (buffer_.size() - c < kRecordHeaderSize) {
      // A header may be straddling the buffer end: keep the tail and
      // wait for more bytes.
      skipped_ += c - pos;
      pos = c;
      return false;
    }
    if (!plausible_header(c)) {
      ++c;
      continue;
    }
    // Chain-validate: each header's length field must land exactly on
    // the next plausible header. Ciphertext almost never passes this
    // kResyncChain times in a row.
    std::size_t k = c;
    std::size_t chained = 0;
    bool failed = false;
    bool incomplete = false;
    while (chained < kResyncChain) {
      if (buffer_.size() - k < kRecordHeaderSize) {
        // Ran past the buffered data (a chained record ending exactly
        // at the buffer end counts too): the evidence is consistent but
        // not yet conclusive.
        incomplete = true;
        break;
      }
      if (!plausible_header(k)) {
        failed = true;
        break;
      }
      const std::size_t length =
          static_cast<std::size_t>((buffer_[k + 3] << 8) | buffer_[k + 4]);
      ++chained;
      k += kRecordHeaderSize + length;
      if (k > buffer_.size()) {
        incomplete = true;
        break;
      }
    }
    if (failed) {
      ++c;
      continue;
    }
    if (incomplete && chained < kResyncChain && !relaxed) {
      // Not enough evidence yet: discard up to the candidate and wait.
      skipped_ += c - pos;
      pos = c;
      return false;
    }
    // Re-locked (full chain, or relaxed end-of-stream validation).
    skipped_ += c - pos;
    pos = c;
    scanning_ = false;
    ++resyncs_;
    pending_after_gap_ = true;
    return true;
  }
  // No candidate byte anywhere: everything in the window is garbage.
  skipped_ += c - pos;
  pos = c;
  return false;
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::parse(
    util::SimTime timestamp, bool relaxed) {
  std::vector<ParsedRecord> out;
  std::size_t pos = 0;
  for (;;) {
    if (scanning_) {
      if (!try_resync(pos, relaxed)) break;
    }
    if (buffer_.size() - pos < kRecordHeaderSize) break;
    if (!plausible_header(pos)) {
      // Implausible header mid-stream: ciphertext or a silent gap.
      // Enter the scanning state instead of wedging permanently.
      scanning_ = true;
      pending_after_gap_ = true;
      continue;
    }
    const std::uint8_t type = buffer_[pos];
    const std::uint16_t version =
        static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
    const std::uint16_t length =
        static_cast<std::uint16_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);

    if (buffer_.size() - pos - kRecordHeaderSize <
        static_cast<std::size_t>(length)) {
      break;  // incomplete record; wait for more bytes
    }

    ParsedRecord parsed;
    const std::uint64_t record_end =
        buffer_start_ + pos + kRecordHeaderSize + length;
    parsed.timestamp = time_for(record_end, timestamp);
    parsed.stream_offset = buffer_start_ + pos;
    parsed.record.content_type = static_cast<ContentType>(type);
    parsed.record.version_raw = version;
    parsed.record.payload.assign(
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + kRecordHeaderSize),
        buffer_.begin() + static_cast<std::ptrdiff_t>(pos + kRecordHeaderSize + length));
    parsed.after_gap = pending_after_gap_;
    pending_after_gap_ = false;
    out.push_back(std::move(parsed));
    ++records_parsed_;
    pos += kRecordHeaderSize + length;
  }

  if (pos > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
    buffer_start_ += pos;
    while (!marks_.empty() && marks_.front().end <= buffer_start_) {
      marks_.erase(marks_.begin());
    }
  }
  return out;
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::feed(
    util::SimTime timestamp, util::BytesView data) {
  if (!data.empty()) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    consumed_ += data.size();
    marks_.push_back(ChunkMark{buffer_start_ + buffer_.size(), timestamp});
  }
  return parse(timestamp, /*relaxed=*/false);
}

void TlsRecordParser::on_gap(util::SimTime, std::uint64_t length) {
  // A partial record in the buffer can never complete across the hole:
  // its bytes are lost to the parse. Advance the stream cursor past
  // both the stale buffer and the gap so offsets stay aligned with the
  // reassembled stream, and hunt for the next record boundary.
  skipped_ += buffer_.size();
  buffer_start_ += buffer_.size() + length;
  buffer_.clear();
  marks_.clear();
  scanning_ = true;
  pending_after_gap_ = true;
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::flush(
    util::SimTime timestamp) {
  return parse(timestamp, /*relaxed=*/true);
}

}  // namespace wm::tls
