#include "wm/tls/record.hpp"

#include <cstring>

namespace wm::tls {

std::string to_string(ContentType type) {
  switch (type) {
    case ContentType::kChangeCipherSpec: return "change_cipher_spec";
    case ContentType::kAlert: return "alert";
    case ContentType::kHandshake: return "handshake";
    case ContentType::kApplicationData: return "application_data";
    case ContentType::kHeartbeat: return "heartbeat";
  }
  return "content_type(" + std::to_string(static_cast<int>(type)) + ")";
}

bool is_known_content_type(std::uint8_t value) {
  return value >= 20 && value <= 24;
}

std::string to_string(ProtocolVersion version) {
  switch (version) {
    case ProtocolVersion::kSsl30: return "SSLv3.0";
    case ProtocolVersion::kTls10: return "TLSv1.0";
    case ProtocolVersion::kTls11: return "TLSv1.1";
    case ProtocolVersion::kTls12: return "TLSv1.2";
    case ProtocolVersion::kTls13: return "TLSv1.3";
  }
  return "version(0x" + std::to_string(static_cast<int>(version)) + ")";
}

void serialize_record(const TlsRecord& record, util::ByteWriter& out) {
  out.write_u8(static_cast<std::uint8_t>(record.content_type));
  out.write_u16_be(record.version_raw);
  out.write_u16_be(record.length());
  out.write_bytes(record.payload);
}

util::Bytes serialize_records(const std::vector<TlsRecord>& records) {
  std::size_t total = 0;
  for (const TlsRecord& record : records) total += record.wire_size();
  util::ByteWriter out(total);
  for (const TlsRecord& record : records) serialize_record(record, out);
  return out.take();
}

bool TlsRecordParser::plausible_header(std::size_t pos) const {
  if (buffer_.size() - pos < kRecordHeaderSize) return false;
  const std::uint8_t type = buffer_[pos];
  const std::uint16_t version =
      static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
  const std::uint16_t length =
      static_cast<std::uint16_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);
  const bool plausible_version = (version >= 0x0300 && version <= 0x0304);
  return is_known_content_type(type) && plausible_version &&
         length <= kMaxCiphertextLength;
}

util::SimTime TlsRecordParser::time_for(std::uint64_t end_offset,
                                        util::SimTime fallback) const {
  // The record is completed by the first chunk whose end reaches the
  // record's last byte; marks are in ascending end order.
  for (const ChunkMark& mark : marks_) {
    if (mark.end >= end_offset) return mark.time;
  }
  return fallback;
}

namespace {

/// Word-at-a-time candidate skip for the resync scanner: returns the
/// lowest index >= pos of a byte in [20, 24] (a known TLS content
/// type), or size if none. Eight bytes are tested per iteration with
/// the classic SWAR zero-byte trick (haszero(x) = (x - 0x01…01) & ~x &
/// 0x80…80), one XOR-broadcast per candidate type; the trick has no
/// false negatives, so a nonzero mask just narrows to a byte scan of
/// that word. Ciphertext is mostly non-candidate bytes, so the scanner
/// spends its time in the 8-byte stride, not the per-byte loop.
std::size_t next_candidate(const std::uint8_t* data, std::size_t pos,
                           std::size_t size) {
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  constexpr std::uint64_t kHighs = 0x8080808080808080ull;
  while (pos + 8 <= size) {
    std::uint64_t word;
    std::memcpy(&word, data + pos, 8);
    std::uint64_t mask = 0;
    for (std::uint8_t type = 20; type <= 24; ++type) {
      const std::uint64_t x = word ^ (kOnes * type);
      mask |= (x - kOnes) & ~x & kHighs;
    }
    if (mask != 0) {
      for (std::size_t i = 0; i < 8; ++i) {
        if (is_known_content_type(data[pos + i])) return pos + i;
      }
    }
    pos += 8;
  }
  while (pos < size && !is_known_content_type(data[pos])) ++pos;
  return pos;
}

}  // namespace

bool TlsRecordParser::try_resync(std::size_t& pos, bool relaxed) {
  std::size_t c = pos;
  while (c < buffer_.size()) {
    // Candidate headers start with a known content type byte — skip to
    // the next one.
    c = next_candidate(buffer_.data(), c, buffer_.size());
    if (c >= buffer_.size()) break;
    if (buffer_.size() - c < kRecordHeaderSize) {
      // A header may be straddling the buffer end: keep the tail and
      // wait for more bytes.
      skipped_ += c - pos;
      pos = c;
      return false;
    }
    if (!plausible_header(c)) {
      ++c;
      continue;
    }
    // Chain-validate: each header's length field must land exactly on
    // the next plausible header. Ciphertext almost never passes this
    // kResyncChain times in a row.
    std::size_t k = c;
    std::size_t chained = 0;
    bool failed = false;
    bool incomplete = false;
    while (chained < kResyncChain) {
      if (buffer_.size() - k < kRecordHeaderSize) {
        // Ran past the buffered data (a chained record ending exactly
        // at the buffer end counts too): the evidence is consistent but
        // not yet conclusive.
        incomplete = true;
        break;
      }
      if (!plausible_header(k)) {
        failed = true;
        break;
      }
      const std::size_t length =
          static_cast<std::size_t>((buffer_[k + 3] << 8) | buffer_[k + 4]);
      ++chained;
      k += kRecordHeaderSize + length;
      if (k > buffer_.size()) {
        incomplete = true;
        break;
      }
    }
    if (failed) {
      ++c;
      continue;
    }
    if (incomplete && chained < kResyncChain && !relaxed) {
      // Not enough evidence yet: discard up to the candidate and wait.
      skipped_ += c - pos;
      pos = c;
      return false;
    }
    // Re-locked (full chain, or relaxed end-of-stream validation).
    skipped_ += c - pos;
    pos = c;
    scanning_ = false;
    ++resyncs_;
    pending_after_gap_ = true;
    return true;
  }
  // No candidate byte anywhere: everything in the window is garbage.
  skipped_ += c - pos;
  pos = c;
  return false;
}

void TlsRecordParser::compact() {
  if (buffer_pos_ == 0) return;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_pos_));
  buffer_start_ += buffer_pos_;
  buffer_pos_ = 0;
  while (!marks_.empty() && marks_.front().end <= buffer_start_) {
    marks_.erase(marks_.begin());
  }
}

void TlsRecordParser::parse(util::SimTime timestamp, bool relaxed,
                            std::vector<ParsedRecord>& out) {
  std::size_t pos = buffer_pos_;
  for (;;) {
    if (scanning_) {
      if (!try_resync(pos, relaxed)) break;
    }
    if (buffer_.size() - pos < kRecordHeaderSize) break;
    if (!plausible_header(pos)) {
      // Implausible header mid-stream: ciphertext or a silent gap.
      // Enter the scanning state instead of wedging permanently.
      scanning_ = true;
      pending_after_gap_ = true;
      continue;
    }
    const std::uint8_t type = buffer_[pos];
    const std::uint16_t version =
        static_cast<std::uint16_t>((buffer_[pos + 1] << 8) | buffer_[pos + 2]);
    const std::uint16_t length =
        static_cast<std::uint16_t>((buffer_[pos + 3] << 8) | buffer_[pos + 4]);

    if (buffer_.size() - pos - kRecordHeaderSize <
        static_cast<std::size_t>(length)) {
      break;  // incomplete record; wait for more bytes
    }

    ParsedRecord parsed;
    const std::uint64_t record_end =
        buffer_start_ + pos + kRecordHeaderSize + length;
    parsed.timestamp = time_for(record_end, timestamp);
    parsed.stream_offset = buffer_start_ + pos;
    parsed.content_type = static_cast<ContentType>(type);
    parsed.version_raw = version;
    parsed.length = length;
    parsed.payload =
        util::BytesView(buffer_).subspan(pos + kRecordHeaderSize, length);
    parsed.after_gap = pending_after_gap_;
    pending_after_gap_ = false;
    out.push_back(parsed);
    ++records_parsed_;
    pos += kRecordHeaderSize + length;
  }

  // Deferred compaction: consumed bytes stay in place so the payload
  // views just handed out survive until the next parser call.
  buffer_pos_ = pos;
  while (!marks_.empty() && marks_.front().end <= buffer_start_ + buffer_pos_) {
    marks_.erase(marks_.begin());
  }
}

void TlsRecordParser::feed(util::SimTime timestamp, util::BytesView data,
                           std::vector<ParsedRecord>& out) {
  compact();
  if (skip_remaining_ > 0 && !data.empty()) {
    // Mid-body of a skipped application-data record: stream past the
    // ciphertext without touching the buffer.
    const std::size_t take =
        std::min<std::size_t>(data.size(), skip_remaining_);
    consumed_ += take;
    skip_consumed_ += take;
    skip_remaining_ -= take;
    buffer_start_ += take;
    data = data.subspan(take);
    if (skip_remaining_ > 0) return;
    // Body complete: stamped with the chunk that delivered its last
    // byte — exactly what time_for() returns on the buffered path.
    skip_record_.timestamp = timestamp;
    out.push_back(skip_record_);
    ++records_parsed_;
    skip_consumed_ = 0;
    if (data.empty()) return;
  }
  if (!data.empty() && buffer_.empty() && !scanning_) {
    // Common case: the previous feed consumed everything it buffered
    // (buffer empty implies no marks either) and the stream is in
    // lock. Parse straight from the chunk.
    feed_contiguous(timestamp, data, out);
    return;
  }
  if (!data.empty()) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    consumed_ += data.size();
    marks_.push_back(ChunkMark{buffer_start_ + buffer_.size(), timestamp});
  }
  parse(timestamp, /*relaxed=*/false, out);
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::feed(
    util::SimTime timestamp, util::BytesView data) {
  std::vector<ParsedRecord> out;
  feed(timestamp, data, out);
  return out;
}

void TlsRecordParser::feed_contiguous(util::SimTime timestamp,
                                      util::BytesView data,
                                      std::vector<ParsedRecord>& out) {
  consumed_ += data.size();
  std::size_t pos = 0;
  const std::size_t size = data.size();
  while (size - pos >= kRecordHeaderSize) {
    if (!is_known_content_type(data[pos])) {
      scanning_ = true;  // same transition parse() makes mid-buffer
      pending_after_gap_ = true;
      break;
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>((data[pos + 1] << 8) | data[pos + 2]);
    const std::uint16_t length =
        static_cast<std::uint16_t>((data[pos + 3] << 8) | data[pos + 4]);
    if (version < 0x0300 || version > 0x0304 || length > kMaxCiphertextLength) {
      scanning_ = true;
      pending_after_gap_ = true;
      break;
    }
    if (size - pos - kRecordHeaderSize < static_cast<std::size_t>(length)) {
      if (static_cast<ContentType>(data[pos]) == ContentType::kApplicationData) {
        // Body-skip fast path: the header is plausible and locked-on,
        // and an application-data body is opaque ciphertext nobody
        // downstream reads — so stream past it instead of buffering.
        // The hot workload (TLS records larger than a TCP segment) hits
        // this on nearly every record, which is what keeps the parser
        // copy-free end to end.
        skip_record_ = ParsedRecord{};
        skip_record_.stream_offset = buffer_start_ + pos;
        skip_record_.content_type = ContentType::kApplicationData;
        skip_record_.version_raw = version;
        skip_record_.length = length;
        skip_record_.after_gap = pending_after_gap_;
        pending_after_gap_ = false;
        const std::size_t body_available = size - pos - kRecordHeaderSize;
        skip_remaining_ = length - body_available;
        skip_consumed_ = kRecordHeaderSize + body_available;
        pos = size;  // the whole remainder of this chunk is the body
      }
      break;  // incomplete record; the tail is buffered below
    }
    ParsedRecord parsed;
    // Every record completed by this chunk is stamped with the chunk's
    // own time — exactly what time_for() returns on the buffered path.
    parsed.timestamp = timestamp;
    parsed.stream_offset = buffer_start_ + pos;
    parsed.content_type = static_cast<ContentType>(data[pos]);
    parsed.version_raw = version;
    parsed.length = length;
    // Borrows the caller's chunk — valid until the next parser call,
    // like every ParsedRecord payload.
    parsed.payload = data.subspan(pos + kRecordHeaderSize, length);
    parsed.after_gap = pending_after_gap_;
    pending_after_gap_ = false;
    out.push_back(parsed);
    ++records_parsed_;
    pos += kRecordHeaderSize + length;
  }

  buffer_start_ += pos;
  if (pos < size) {
    // Partial record (or bytes the resync scanner needs): only this
    // tail is copied into the buffer.
    buffer_.assign(data.begin() + static_cast<std::ptrdiff_t>(pos), data.end());
    marks_.push_back(ChunkMark{buffer_start_ + buffer_.size(), timestamp});
    if (scanning_) {
      parse(timestamp, /*relaxed=*/false, out);
    }
  }
}

void TlsRecordParser::reset() {
  buffer_.clear();
  buffer_pos_ = 0;
  skip_remaining_ = 0;
  skip_consumed_ = 0;
  marks_.clear();
  consumed_ = 0;
  buffer_start_ = 0;
  skipped_ = 0;
  records_parsed_ = 0;
  resyncs_ = 0;
  scanning_ = false;
  pending_after_gap_ = false;
}

void TlsRecordParser::on_gap(util::SimTime, std::uint64_t length) {
  // A partial record — buffered or mid-skip — can never complete
  // across the hole: its bytes are lost to the parse. Advance the
  // stream cursor past both the stale buffer and the gap so offsets
  // stay aligned with the reassembled stream, and hunt for the next
  // record boundary. (A skipped body's consumed bytes already advanced
  // buffer_start_, so they only need the skipped_ accounting.)
  skipped_ += buffer_.size() - buffer_pos_ + skip_consumed_;
  skip_remaining_ = 0;
  skip_consumed_ = 0;
  buffer_start_ += buffer_.size() + length;
  buffer_.clear();
  buffer_pos_ = 0;
  marks_.clear();
  scanning_ = true;
  pending_after_gap_ = true;
}

void TlsRecordParser::flush(util::SimTime timestamp,
                            std::vector<ParsedRecord>& out) {
  parse(timestamp, /*relaxed=*/true, out);
}

std::vector<TlsRecordParser::ParsedRecord> TlsRecordParser::flush(
    util::SimTime timestamp) {
  std::vector<ParsedRecord> out;
  flush(timestamp, out);
  return out;
}

}  // namespace wm::tls
