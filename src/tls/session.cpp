#include "wm/tls/session.hpp"

#include <algorithm>

#include "wm/tls/handshake.hpp"

namespace wm::tls {

using util::Bytes;
using util::BytesView;

TlsSession::TlsSession(TlsSessionConfig config, util::Rng rng)
    : config_(std::move(config)),
      cipher_(config_.suite, config_.tls13_pad_to),
      rng_(rng) {
  if (config_.max_plaintext_fragment == 0 ||
      config_.max_plaintext_fragment > kMaxFragmentLength) {
    config_.max_plaintext_fragment = kMaxFragmentLength;
  }
}

Bytes TlsSession::random_payload(std::size_t size) {
  Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(rng_.next_u64() & 0xff);
  }
  return out;
}

TlsRecord TlsSession::make_record(ContentType type, std::size_t payload_size) {
  TlsRecord record;
  record.content_type = type;
  record.version_raw = config_.record_version;
  record.payload = random_payload(payload_size);
  return record;
}

std::vector<TlsRecord> TlsSession::client_hello_flight() {
  ClientHello hello;
  for (std::size_t i = 0; i < hello.random.size(); ++i) {
    hello.random[i] = static_cast<std::uint8_t>(rng_.next_u64() & 0xff);
  }
  hello.session_id = random_payload(32);
  hello.cipher_suites = {
      static_cast<std::uint16_t>(CipherSuite::kTlsAes128GcmSha256),
      static_cast<std::uint16_t>(CipherSuite::kTlsAes256GcmSha384),
      static_cast<std::uint16_t>(CipherSuite::kTlsChacha20Poly1305Sha256),
      static_cast<std::uint16_t>(CipherSuite::kTlsEcdheRsaAes256GcmSha384),
      static_cast<std::uint16_t>(CipherSuite::kTlsEcdheRsaAes128GcmSha256),
      static_cast<std::uint16_t>(config_.suite),
  };
  if (!config_.sni.empty()) hello.set_sni(config_.sni);
  if (!config_.alpn.empty()) hello.set_alpn(config_.alpn);
  // key_share-sized filler extension so the hello has a realistic size.
  hello.extensions.push_back(Extension{
      static_cast<std::uint16_t>(ExtensionType::kKeyShare), random_payload(38)});

  TlsRecord record;
  record.content_type = ContentType::kHandshake;
  record.version_raw = 0x0301;  // first flight traditionally uses TLS1.0
  record.payload = hello.serialize();
  return {record};
}

std::vector<TlsRecord> TlsSession::server_hello_flight() {
  std::vector<TlsRecord> out;

  ServerHello hello;
  for (std::size_t i = 0; i < hello.random.size(); ++i) {
    hello.random[i] = static_cast<std::uint8_t>(rng_.next_u64() & 0xff);
  }
  hello.session_id = random_payload(32);
  hello.cipher_suite = static_cast<std::uint16_t>(config_.suite);

  if (is_tls13_suite(config_.suite)) {
    TlsRecord sh;
    sh.content_type = ContentType::kHandshake;
    sh.version_raw = config_.record_version;
    sh.payload = hello.serialize();
    out.push_back(std::move(sh));

    // Middlebox-compat CCS, then the encrypted extensions/cert/finished
    // blob as application-data-typed ciphertext (TLS 1.3 disguise).
    out.push_back(make_record(ContentType::kChangeCipherSpec, 1));
    const std::size_t encrypted_flight =
        cipher_.seal_size(config_.certificate_chain_size + 600);
    out.push_back(make_record(ContentType::kApplicationData, encrypted_flight));
    return out;
  }

  // TLS 1.2: ServerHello, Certificate, ServerKeyExchange,
  // ServerHelloDone — typically coalesced into one or two records.
  util::ByteWriter flight;
  const Bytes sh_bytes = hello.serialize();
  flight.write_bytes(sh_bytes);
  flight.write_bytes(opaque_handshake_message(HandshakeType::kCertificate,
                                              config_.certificate_chain_size));
  flight.write_bytes(
      opaque_handshake_message(HandshakeType::kServerKeyExchange, 300));
  flight.write_bytes(opaque_handshake_message(HandshakeType::kServerHelloDone, 4));

  // Fragment the flight at the record limit.
  Bytes bytes = flight.take();
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t take =
        std::min(config_.max_plaintext_fragment, bytes.size() - offset);
    TlsRecord record;
    record.content_type = ContentType::kHandshake;
    record.version_raw = config_.record_version;
    record.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                          bytes.begin() + static_cast<std::ptrdiff_t>(offset + take));
    out.push_back(std::move(record));
    offset += take;
  }
  return out;
}

std::vector<TlsRecord> TlsSession::client_finished_flight() {
  std::vector<TlsRecord> out;
  if (is_tls13_suite(config_.suite)) {
    out.push_back(make_record(ContentType::kChangeCipherSpec, 1));
    // Encrypted Finished.
    out.push_back(
        make_record(ContentType::kApplicationData, cipher_.seal_size(36)));
    return out;
  }
  // TLS 1.2: ClientKeyExchange, CCS, encrypted Finished.
  TlsRecord cke;
  cke.content_type = ContentType::kHandshake;
  cke.version_raw = config_.record_version;
  cke.payload = opaque_handshake_message(HandshakeType::kClientKeyExchange, 70);
  out.push_back(std::move(cke));
  out.push_back(make_record(ContentType::kChangeCipherSpec, 1));
  out.push_back(make_record(ContentType::kHandshake, cipher_.seal_size(16)));
  return out;
}

std::vector<TlsRecord> TlsSession::seal_application_data(std::size_t plaintext_size) {
  std::vector<TlsRecord> out;
  std::size_t remaining = plaintext_size;
  do {
    const std::size_t take = std::min(config_.max_plaintext_fragment, remaining);
    out.push_back(
        make_record(ContentType::kApplicationData, cipher_.seal_size(take)));
    remaining -= take;
    ++records_sealed_;
  } while (remaining > 0);
  return out;
}

std::vector<TlsRecord> TlsSession::seal_application_data(BytesView plaintext) {
  // Wire lengths are what matter; delegate to the size-based variant.
  return seal_application_data(plaintext.size());
}

TlsRecord TlsSession::close_notify() {
  return make_record(ContentType::kAlert, cipher_.seal_size(2));
}

}  // namespace wm::tls
