#include "wm/tls/record_stream.hpp"

#include <algorithm>

#include "wm/tls/handshake.hpp"

namespace wm::tls {

std::size_t FlowRecordStream::count(net::FlowDirection direction,
                                    ContentType type) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [&](const RecordEvent& event) {
        return event.direction == direction && event.content_type == type;
      }));
}

RecordStreamExtractor::RecordStreamExtractor(Config config)
    : config_(std::move(config)) {
  // The extractor keeps its own per-flow state; the flow table is
  // only consulted for keying/orientation, so per-packet membership
  // lists would be dead weight.
  net::FlowTable::Config table_config;
  table_config.idle_timeout = config_.idle_timeout;
  table_config.track_packets = false;

  if (config_.registry != nullptr) {
    const auto resolve = [this](const std::string& suffix,
                                obs::Stability rollup_stability =
                                    obs::Stability::kStable) {
      const std::string name = config_.metrics_scope + suffix;
      if (config_.metrics_rollup.empty()) {
        return config_.registry->counter(name, config_.metrics_stability);
      }
      return config_.registry->counter(name, config_.metrics_stability,
                                       config_.metrics_rollup + suffix,
                                       rollup_stability);
    };
    metrics_.packets = resolve(".packets");
    metrics_.packets_undecodable = resolve(".packets.undecodable");
    metrics_.tcp_segments = resolve(".tcp.segments");
    metrics_.tcp_segments_buffered = resolve(".tcp.segments.buffered");
    metrics_.tcp_chunks = resolve(".tcp.chunks");
    metrics_.tcp_bytes = resolve(".tcp.bytes");
    metrics_.tcp_dropped_bytes = resolve(".tcp.bytes.dropped");
    // Loss tolerance: gap/resync behaviour is a pure function of each
    // flow's own segment sequence, so the rollups stay shard-invariant.
    metrics_.tcp_gaps = resolve(".tcp.gaps");
    metrics_.tcp_gap_bytes = resolve(".tcp.gap_bytes");
    metrics_.tls_resyncs = resolve(".tls.resyncs");
    metrics_.tls_skipped_bytes = resolve(".tls.skipped_bytes");
    metrics_.records_after_gap = resolve(".records.after_gap");
    metrics_.records = resolve(".records");
    metrics_.records_handshake = resolve(".records.handshake");
    metrics_.records_application = resolve(".records.application");
    metrics_.records_alert = resolve(".records.alert");
    metrics_.records_other = resolve(".records.other");
    metrics_.client_app_records = resolve(".records.client_app");
    // Client-upload record lengths, binned around the paper's Fig. 2
    // range: the type-1/type-2 JSON bands live in the few-hundred-byte
    // region; video/API traffic fills the tails.
    const std::vector<std::uint64_t> bounds{128,  192,  256,  320,   384,  512,
                                            768,  1024, 2048, 4096, 16384};
    const std::string histogram_name =
        config_.metrics_scope + ".record_length.client_app";
    if (config_.metrics_rollup.empty()) {
      metrics_.client_record_lengths = config_.registry->histogram(
          histogram_name, bounds, config_.metrics_stability);
    } else {
      metrics_.client_record_lengths = config_.registry->histogram(
          histogram_name, bounds, config_.metrics_stability,
          config_.metrics_rollup + ".record_length.client_app",
          obs::Stability::kStable);
    }
    table_config.created_counter = resolve(".flows.opened");
    // Eviction totals depend on per-shard sweep cadence, so their
    // cross-shard sum is only deterministic for a fixed shard count.
    table_config.evicted_counter =
        resolve(".flows.evicted", obs::Stability::kSharded);
  }
  flow_table_ = net::FlowTable(table_config);
}

std::vector<StreamEvent> RecordStreamExtractor::feed(const net::Packet& packet) {
  std::vector<StreamEvent> out;
  const std::size_t index = packets_seen_++;
  obs::inc(metrics_.packets);
  const auto decoded = net::decode_packet(packet);
  if (!decoded || !decoded->has_tcp()) {
    if (!decoded) {
      ++packets_undecodable_;
      obs::inc(metrics_.packets_undecodable);
    }
    return out;
  }

  const auto assignment = flow_table_.add(*decoded, index);
  if (!assignment) return out;

  auto [it, inserted] = flows_.try_emplace(assignment->key);
  PerFlow& state = it->second;
  if (inserted) {
    state.reassembler = net::TcpConnectionReassembler(config_.reassembly);
    state.first_seen = packet.timestamp;
    ++flows_opened_;
  }
  state.last_seen = packet.timestamp;

  const bool has_payload = !decoded->transport_payload.empty();
  if (has_payload) obs::inc(metrics_.tcp_segments);
  const std::uint64_t dropped_before =
      state.reassembler.client_stream().dropped_bytes() +
      state.reassembler.server_stream().dropped_bytes();

  auto items = state.reassembler.on_packet(*decoded, assignment->direction);
  if (has_payload && items.empty()) obs::inc(metrics_.tcp_segments_buffered);
  const std::uint64_t dropped_after =
      state.reassembler.client_stream().dropped_bytes() +
      state.reassembler.server_stream().dropped_bytes();
  obs::inc(metrics_.tcp_dropped_bytes, dropped_after - dropped_before);

  process_items(assignment->key, state, items, out);
  sync_tls_counters(state);

  if (state.reassembler.reset()) {
    // RST teardown: the connection is over in both directions. Retire
    // the flow now instead of letting it linger until idle eviction.
    complete_flow(it, out);
  }

  if (config_.idle_timeout != util::Duration{}) evict_idle(packet.timestamp);
  return out;
}

void RecordStreamExtractor::process_items(
    const net::FlowKey& key, PerFlow& state,
    std::vector<net::TcpConnectionReassembler::DirectedItem>& items,
    std::vector<StreamEvent>& out) {
  for (auto& directed : items) {
    TlsRecordParser& parser =
        directed.direction == net::FlowDirection::kClientToServer
            ? state.client_parser
            : state.server_parser;
    if (directed.item.kind == net::StreamItem::Kind::kGap) {
      const net::StreamGap& gap = directed.item.gap;
      parser.on_gap(gap.timestamp, gap.length);
      ++state.gaps;
      state.gap_bytes += gap.length;
      ++gaps_total_;
      gap_bytes_total_ += gap.length;
      obs::inc(metrics_.tcp_gaps);
      obs::inc(metrics_.tcp_gap_bytes, gap.length);
      StreamEvent event;
      event.flow = key;
      event.kind = StreamEvent::Kind::kGap;
      event.gap = StreamGapEvent{gap.timestamp, directed.direction,
                                 gap.stream_offset, gap.length};
      out.push_back(std::move(event));
      continue;
    }
    net::StreamChunk& chunk = directed.item.chunk;
    obs::inc(metrics_.tcp_chunks);
    obs::inc(metrics_.tcp_bytes, chunk.data.size());
    for (auto& parsed : parser.feed(chunk.timestamp, chunk.data)) {
      emit_record(key, state, directed.direction, parsed, out);
    }
  }
}

void RecordStreamExtractor::emit_record(const net::FlowKey& key, PerFlow& state,
                                        net::FlowDirection direction,
                                        TlsRecordParser::ParsedRecord& parsed,
                                        std::vector<StreamEvent>& out) {
  // Opportunistic SNI capture from client handshake records.
  if (!state.sni_searched && direction == net::FlowDirection::kClientToServer &&
      parsed.record.content_type == ContentType::kHandshake) {
    state.sni = extract_sni(parsed.record.payload);
    state.sni_searched = true;
  }
  RecordEvent event;
  event.timestamp = parsed.timestamp;
  event.direction = direction;
  event.content_type = parsed.record.content_type;
  event.record_length = parsed.record.length();
  event.stream_offset = parsed.stream_offset;
  event.after_gap = parsed.after_gap;
  obs::inc(metrics_.records);
  if (event.after_gap) obs::inc(metrics_.records_after_gap);
  switch (event.content_type) {
    case ContentType::kHandshake:
      obs::inc(metrics_.records_handshake);
      break;
    case ContentType::kApplicationData:
      obs::inc(metrics_.records_application);
      break;
    case ContentType::kAlert:
      obs::inc(metrics_.records_alert);
      break;
    default:
      obs::inc(metrics_.records_other);
      break;
  }
  if (event.is_client_application_data()) {
    obs::inc(metrics_.client_app_records);
    obs::observe(metrics_.client_record_lengths, event.record_length);
  }
  if (config_.retain_events) state.events.push_back(event);
  out.push_back(StreamEvent{key, StreamEvent::Kind::kRecord, event, {}});
}

void RecordStreamExtractor::sync_tls_counters(PerFlow& state) {
  const std::uint64_t skipped = state.client_parser.bytes_skipped() +
                                state.server_parser.bytes_skipped();
  const std::uint64_t resyncs =
      state.client_parser.resyncs() + state.server_parser.resyncs();
  obs::inc(metrics_.tls_skipped_bytes, skipped - state.tls_skipped_accounted);
  obs::inc(metrics_.tls_resyncs, resyncs - state.tls_resyncs_accounted);
  tls_skipped_total_ += skipped - state.tls_skipped_accounted;
  tls_resyncs_total_ += resyncs - state.tls_resyncs_accounted;
  state.tls_skipped_accounted = skipped;
  state.tls_resyncs_accounted = resyncs;
}

void RecordStreamExtractor::complete_flow(
    std::map<net::FlowKey, PerFlow>::iterator it, std::vector<StreamEvent>& out) {
  const net::FlowKey key = it->first;
  PerFlow& state = it->second;
  // The stream is over: give the parsers their end-of-stream chance to
  // re-lock with relaxed validation and emit trailing records.
  for (auto& parsed : state.client_parser.flush(state.last_seen)) {
    emit_record(key, state, net::FlowDirection::kClientToServer, parsed, out);
  }
  for (auto& parsed : state.server_parser.flush(state.last_seen)) {
    emit_record(key, state, net::FlowDirection::kServerToClient, parsed, out);
  }
  sync_tls_counters(state);
  if (config_.retain_events) completed_.push_back(snapshot(key, state));
  flows_.erase(it);
  flow_table_.remove(key);
  ++flows_completed_;
}

std::vector<StreamEvent> RecordStreamExtractor::flush() {
  std::vector<StreamEvent> out;
  while (!flows_.empty()) {
    const auto it = flows_.begin();
    PerFlow& state = it->second;
    auto items = state.reassembler.flush(state.last_seen);
    process_items(it->first, state, items, out);
    complete_flow(it, out);
  }
  return out;
}

std::size_t RecordStreamExtractor::sweep_idle(util::SimTime now) {
  if (config_.idle_timeout == util::Duration{}) return 0;
  const std::uint64_t before = flows_evicted_;
  // Reset the cadence gate: a timer-driven sweep is authoritative.
  sweep_armed_ = false;
  evict_idle(now);
  return static_cast<std::size_t>(flows_evicted_ - before);
}

void RecordStreamExtractor::evict_idle(util::SimTime now) {
  // Sweep at a fraction of the timeout so the scan cost amortizes to
  // O(1) per packet while flows still leave within ~1.25x the timeout.
  const util::Duration cadence =
      util::Duration::nanos(config_.idle_timeout.total_nanos() / 4);
  if (sweep_armed_ && now - last_sweep_ < cadence) return;
  sweep_armed_ = true;
  last_sweep_ = now;

  for (const net::FlowKey& key : flow_table_.evict_idle(now)) {
    const auto it = flows_.find(key);
    if (it == flows_.end()) continue;
    if (config_.retain_events) completed_.push_back(snapshot(key, it->second));
    flows_.erase(it);
    ++flows_evicted_;
  }
}

FlowRecordStream RecordStreamExtractor::snapshot(const net::FlowKey& key,
                                                 const PerFlow& state) const {
  FlowRecordStream stream;
  stream.flow = key;
  stream.sni = state.sni;
  stream.events = state.events;
  stream.client_stream_bytes = state.reassembler.client_stream().delivered_bytes();
  stream.server_stream_bytes = state.reassembler.server_stream().delivered_bytes();
  stream.client_desynchronized = state.client_parser.desynchronized();
  stream.server_desynchronized = state.server_parser.desynchronized();
  stream.gaps = state.reassembler.client_stream().gaps_emitted() +
                state.reassembler.server_stream().gaps_emitted();
  stream.gap_bytes = state.reassembler.client_stream().gap_bytes() +
                     state.reassembler.server_stream().gap_bytes();
  stream.tls_bytes_skipped =
      state.client_parser.bytes_skipped() + state.server_parser.bytes_skipped();
  stream.tls_resyncs =
      state.client_parser.resyncs() + state.server_parser.resyncs();
  return stream;
}

std::vector<FlowRecordStream> RecordStreamExtractor::finish() {
  flush();
  std::vector<FlowRecordStream> out = completed_;
  // Order by first event time (completed_ holds retirement order).
  std::sort(out.begin(), out.end(),
            [](const FlowRecordStream& a, const FlowRecordStream& b) {
              const util::SimTime ta =
                  a.events.empty() ? util::SimTime() : a.events.front().timestamp;
              const util::SimTime tb =
                  b.events.empty() ? util::SimTime() : b.events.front().timestamp;
              return ta < tb;
            });
  return out;
}

std::size_t RecordStreamExtractor::buffered_reassembly_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, state] : flows_) total += state.reassembler.buffered_bytes();
  return total;
}

std::optional<std::string> RecordStreamExtractor::sni_of(
    const net::FlowKey& flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? std::nullopt : it->second.sni;
}

std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets) {
  RecordStreamExtractor extractor;
  for (const net::Packet& packet : packets) extractor.add_packet(packet);
  return extractor.finish();
}

}  // namespace wm::tls
