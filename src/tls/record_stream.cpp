#include "wm/tls/record_stream.hpp"

#include <algorithm>

#include "wm/tls/handshake.hpp"

namespace wm::tls {

std::size_t FlowRecordStream::count(net::FlowDirection direction,
                                    ContentType type) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [&](const RecordEvent& event) {
        return event.direction == direction && event.content_type == type;
      }));
}

void RecordStreamExtractor::add_packet(const net::Packet& packet) {
  const std::size_t index = packets_seen_++;
  const auto decoded = net::decode_packet(packet);
  if (!decoded || !decoded->has_tcp()) {
    if (!decoded) ++packets_undecodable_;
    return;
  }

  const auto assignment = flow_table_.add(*decoded, index);
  if (!assignment) return;

  auto [it, inserted] = flows_.try_emplace(assignment->key);
  PerFlow& state = it->second;
  if (inserted) state.first_seen = packet.timestamp;

  for (auto& directed : state.reassembler.on_packet(*decoded, assignment->direction)) {
    TlsRecordParser& parser = directed.direction == net::FlowDirection::kClientToServer
                                  ? state.client_parser
                                  : state.server_parser;
    for (auto& parsed : parser.feed(directed.chunk.timestamp, directed.chunk.data)) {
      // Opportunistic SNI capture from client handshake records.
      if (!state.sni_searched &&
          directed.direction == net::FlowDirection::kClientToServer &&
          parsed.record.content_type == ContentType::kHandshake) {
        state.sni = extract_sni(parsed.record.payload);
        state.sni_searched = true;
      }
      RecordEvent event;
      event.timestamp = parsed.timestamp;
      event.direction = directed.direction;
      event.content_type = parsed.record.content_type;
      event.record_length = parsed.record.length();
      event.stream_offset = parsed.stream_offset;
      state.events.push_back(event);
    }
  }
}

std::vector<FlowRecordStream> RecordStreamExtractor::finish() const {
  std::vector<FlowRecordStream> out;
  out.reserve(flows_.size());
  for (const auto& [key, state] : flows_) {
    FlowRecordStream stream;
    stream.flow = key;
    stream.sni = state.sni;
    stream.events = state.events;
    stream.client_stream_bytes = state.reassembler.client_stream().delivered_bytes();
    stream.server_stream_bytes = state.reassembler.server_stream().delivered_bytes();
    stream.client_desynchronized = state.client_parser.desynchronized();
    stream.server_desynchronized = state.server_parser.desynchronized();
    out.push_back(std::move(stream));
  }
  // Order by first event time (flows_ map order is key order).
  std::sort(out.begin(), out.end(),
            [](const FlowRecordStream& a, const FlowRecordStream& b) {
              const util::SimTime ta =
                  a.events.empty() ? util::SimTime() : a.events.front().timestamp;
              const util::SimTime tb =
                  b.events.empty() ? util::SimTime() : b.events.front().timestamp;
              return ta < tb;
            });
  return out;
}

std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets) {
  RecordStreamExtractor extractor;
  for (const net::Packet& packet : packets) extractor.add_packet(packet);
  return extractor.finish();
}

}  // namespace wm::tls
