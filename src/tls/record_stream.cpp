#include "wm/tls/record_stream.hpp"

#include <algorithm>

#include "wm/tls/handshake.hpp"

namespace wm::tls {

std::size_t FlowRecordStream::count(net::FlowDirection direction,
                                    ContentType type) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [&](const RecordEvent& event) {
        return event.direction == direction && event.content_type == type;
      }));
}

RecordStreamExtractor::RecordStreamExtractor(Config config)
    : config_(config),
      // The extractor keeps its own per-flow state; the flow table is
      // only consulted for keying/orientation, so per-packet membership
      // lists would be dead weight.
      flow_table_(net::FlowTable::Config{config.idle_timeout,
                                         /*track_packets=*/false}) {}

std::vector<StreamEvent> RecordStreamExtractor::feed(const net::Packet& packet) {
  std::vector<StreamEvent> out;
  const std::size_t index = packets_seen_++;
  const auto decoded = net::decode_packet(packet);
  if (!decoded || !decoded->has_tcp()) {
    if (!decoded) ++packets_undecodable_;
    return out;
  }

  const auto assignment = flow_table_.add(*decoded, index);
  if (!assignment) return out;

  auto [it, inserted] = flows_.try_emplace(assignment->key);
  PerFlow& state = it->second;
  if (inserted) {
    state.first_seen = packet.timestamp;
    ++flows_opened_;
  }
  state.last_seen = packet.timestamp;

  for (auto& directed : state.reassembler.on_packet(*decoded, assignment->direction)) {
    TlsRecordParser& parser = directed.direction == net::FlowDirection::kClientToServer
                                  ? state.client_parser
                                  : state.server_parser;
    for (auto& parsed : parser.feed(directed.chunk.timestamp, directed.chunk.data)) {
      // Opportunistic SNI capture from client handshake records.
      if (!state.sni_searched &&
          directed.direction == net::FlowDirection::kClientToServer &&
          parsed.record.content_type == ContentType::kHandshake) {
        state.sni = extract_sni(parsed.record.payload);
        state.sni_searched = true;
      }
      RecordEvent event;
      event.timestamp = parsed.timestamp;
      event.direction = directed.direction;
      event.content_type = parsed.record.content_type;
      event.record_length = parsed.record.length();
      event.stream_offset = parsed.stream_offset;
      if (config_.retain_events) state.events.push_back(event);
      out.push_back(StreamEvent{assignment->key, event});
    }
  }

  if (config_.idle_timeout != util::Duration{}) evict_idle(packet.timestamp);
  return out;
}

void RecordStreamExtractor::evict_idle(util::SimTime now) {
  // Sweep at a fraction of the timeout so the scan cost amortizes to
  // O(1) per packet while flows still leave within ~1.25x the timeout.
  const util::Duration cadence =
      util::Duration::nanos(config_.idle_timeout.total_nanos() / 4);
  if (sweep_armed_ && now - last_sweep_ < cadence) return;
  sweep_armed_ = true;
  last_sweep_ = now;

  for (const net::FlowKey& key : flow_table_.evict_idle(now)) {
    const auto it = flows_.find(key);
    if (it == flows_.end()) continue;
    if (config_.retain_events) completed_.push_back(snapshot(key, it->second));
    flows_.erase(it);
    ++flows_evicted_;
  }
}

FlowRecordStream RecordStreamExtractor::snapshot(const net::FlowKey& key,
                                                 const PerFlow& state) const {
  FlowRecordStream stream;
  stream.flow = key;
  stream.sni = state.sni;
  stream.events = state.events;
  stream.client_stream_bytes = state.reassembler.client_stream().delivered_bytes();
  stream.server_stream_bytes = state.reassembler.server_stream().delivered_bytes();
  stream.client_desynchronized = state.client_parser.desynchronized();
  stream.server_desynchronized = state.server_parser.desynchronized();
  return stream;
}

std::vector<FlowRecordStream> RecordStreamExtractor::finish() const {
  std::vector<FlowRecordStream> out = completed_;
  out.reserve(completed_.size() + flows_.size());
  for (const auto& [key, state] : flows_) {
    out.push_back(snapshot(key, state));
  }
  // Order by first event time (flows_ map order is key order).
  std::sort(out.begin(), out.end(),
            [](const FlowRecordStream& a, const FlowRecordStream& b) {
              const util::SimTime ta =
                  a.events.empty() ? util::SimTime() : a.events.front().timestamp;
              const util::SimTime tb =
                  b.events.empty() ? util::SimTime() : b.events.front().timestamp;
              return ta < tb;
            });
  return out;
}

std::size_t RecordStreamExtractor::buffered_reassembly_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, state] : flows_) total += state.reassembler.buffered_bytes();
  return total;
}

std::optional<std::string> RecordStreamExtractor::sni_of(
    const net::FlowKey& flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? std::nullopt : it->second.sni;
}

std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets) {
  RecordStreamExtractor extractor;
  for (const net::Packet& packet : packets) extractor.add_packet(packet);
  return extractor.finish();
}

}  // namespace wm::tls
