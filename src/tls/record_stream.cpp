#include "wm/tls/record_stream.hpp"

#include <algorithm>
#include <cstring>

#include "wm/tls/handshake.hpp"

namespace wm::tls {

namespace {

/// Retired PerFlow shells kept for reuse; beyond this the shells are
/// simply destroyed (flow churn above this is long-tail, not steady
/// state, so unbounded pooling would just hoard capacity).
constexpr std::size_t kFlowPoolCap = 1024;
/// Initial index capacity (power of two).
constexpr std::size_t kIndexInitialSlots = 1024;

}  // namespace

std::size_t FlowRecordStream::count(net::FlowDirection direction,
                                    ContentType type) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [&](const RecordEvent& event) {
        return event.direction == direction && event.content_type == type;
      }));
}

RecordStreamExtractor::RecordStreamExtractor(Config config)
    : config_(std::move(config)),
      arena_(std::make_unique<util::Arena>()),
      flows_(std::less<net::FlowKey>(),
             util::ArenaAllocator<std::pair<const net::FlowKey, PerFlow>>(
                 arena_.get())) {
  if (config_.registry != nullptr) {
    const auto resolve = [this](const std::string& suffix,
                                obs::Stability rollup_stability =
                                    obs::Stability::kStable) {
      const std::string name = config_.metrics_scope + suffix;
      if (config_.metrics_rollup.empty()) {
        return config_.registry->counter(name, config_.metrics_stability);
      }
      return config_.registry->counter(name, config_.metrics_stability,
                                       config_.metrics_rollup + suffix,
                                       rollup_stability);
    };
    metrics_.packets = resolve(".packets");
    metrics_.packets_undecodable = resolve(".packets.undecodable");
    metrics_.tcp_segments = resolve(".tcp.segments");
    metrics_.tcp_segments_buffered = resolve(".tcp.segments.buffered");
    metrics_.tcp_chunks = resolve(".tcp.chunks");
    metrics_.tcp_bytes = resolve(".tcp.bytes");
    metrics_.tcp_dropped_bytes = resolve(".tcp.bytes.dropped");
    // Loss tolerance: gap/resync behaviour is a pure function of each
    // flow's own segment sequence, so the rollups stay shard-invariant.
    metrics_.tcp_gaps = resolve(".tcp.gaps");
    metrics_.tcp_gap_bytes = resolve(".tcp.gap_bytes");
    metrics_.tls_resyncs = resolve(".tls.resyncs");
    metrics_.tls_skipped_bytes = resolve(".tls.skipped_bytes");
    metrics_.records_after_gap = resolve(".records.after_gap");
    metrics_.records = resolve(".records");
    metrics_.records_handshake = resolve(".records.handshake");
    metrics_.records_application = resolve(".records.application");
    metrics_.records_alert = resolve(".records.alert");
    metrics_.records_other = resolve(".records.other");
    metrics_.client_app_records = resolve(".records.client_app");
    // Client-upload record lengths, binned around the paper's Fig. 2
    // range: the type-1/type-2 JSON bands live in the few-hundred-byte
    // region; video/API traffic fills the tails.
    const std::vector<std::uint64_t> bounds{128,  192,  256,  320,   384,  512,
                                            768,  1024, 2048, 4096, 16384};
    const std::string histogram_name =
        config_.metrics_scope + ".record_length.client_app";
    if (config_.metrics_rollup.empty()) {
      metrics_.client_record_lengths = config_.registry->histogram(
          histogram_name, bounds, config_.metrics_stability);
    } else {
      metrics_.client_record_lengths = config_.registry->histogram(
          histogram_name, bounds, config_.metrics_stability,
          config_.metrics_rollup + ".record_length.client_app",
          obs::Stability::kStable);
    }
    metrics_.flows_opened = resolve(".flows.opened");
    // Eviction totals depend on per-shard sweep cadence, so their
    // cross-shard sum is only deterministic for a fixed shard count.
    metrics_.flows_evicted =
        resolve(".flows.evicted", obs::Stability::kSharded);
  }
}

std::vector<StreamEvent> RecordStreamExtractor::feed(const net::Packet& packet) {
  std::vector<StreamEvent> out;
  ++packets_seen_;
  obs::inc(metrics_.packets);
  const auto decoded = net::decode_packet(packet);
  if (!decoded || !decoded->has_tcp()) {
    if (!decoded) {
      ++packets_undecodable_;
      obs::inc(metrics_.packets_undecodable);
    }
    return out;
  }

  const auto endpoints = net::packet_endpoints(*decoded);
  if (!endpoints) return out;
  const net::TcpHeader& tcp = decoded->tcp();
  const auto flags = static_cast<std::uint8_t>(
      (tcp.fin ? 0x01 : 0) | (tcp.syn ? 0x02 : 0) | (tcp.rst ? 0x04 : 0) |
      (tcp.psh ? 0x08 : 0) | (tcp.ack ? 0x10 : 0) | (tcp.urg ? 0x20 : 0));
  feed_tcp(packet.timestamp, endpoints->source, endpoints->destination, flags,
           tcp.sequence, decoded->transport_payload,
           decoded->transport_payload_missing, /*stable_payload=*/false, out);
  if (config_.idle_timeout != util::Duration{}) evict_idle(packet.timestamp);
  return out;
}

void RecordStreamExtractor::feed_lens(util::SimTime timestamp,
                                      util::BytesView frame,
                                      const net::PacketLens& lens,
                                      bool stable_payload,
                                      std::vector<StreamEvent>& out) {
  ++packets_seen_;
  obs::inc(metrics_.packets);
  if (lens.status != net::LensStatus::kTcp) {
    if (lens.status == net::LensStatus::kUndecodable) {
      ++packets_undecodable_;
      obs::inc(metrics_.packets_undecodable);
    }
    return;
  }

  net::Endpoint source;
  net::Endpoint destination;
  const std::uint8_t* addresses = frame.data() + lens.address_offset;
  if (lens.is_v6) {
    std::array<std::uint8_t, 16> octets{};
    source.is_v6 = true;
    destination.is_v6 = true;
    std::memcpy(octets.data(), addresses, 16);
    source.v6 = net::Ipv6Address(octets);
    std::memcpy(octets.data(), addresses + 16, 16);
    destination.v6 = net::Ipv6Address(octets);
  } else {
    source.v4 = net::Ipv4Address(addresses[0], addresses[1], addresses[2],
                                 addresses[3]);
    destination.v4 = net::Ipv4Address(addresses[4], addresses[5], addresses[6],
                                      addresses[7]);
  }
  source.port = lens.source_port;
  destination.port = lens.destination_port;

  feed_tcp(timestamp, source, destination, lens.tcp_flags, lens.sequence,
           frame.subspan(lens.payload_offset, lens.payload_length),
           lens.truncated_bytes, stable_payload, out);
  if (config_.idle_timeout != util::Duration{}) evict_idle(timestamp);
}

void RecordStreamExtractor::feed_batch(const net::Packet* packets,
                                       std::size_t count,
                                       std::vector<StreamEvent>& out) {
  while (count > 0) {
    const std::size_t n = std::min(count, net::DecodedSlab::kCapacity);
    net::decode_slab(packets, n, slab_);
    for (std::size_t i = 0; i < n; ++i) {
      feed_lens(packets[i].timestamp, packets[i].data, slab_.lens[i],
                /*stable_payload=*/false, out);
    }
    packets += n;
    count -= n;
  }
}

void RecordStreamExtractor::feed_batch(const net::PacketView* packets,
                                       std::size_t count,
                                       std::vector<StreamEvent>& out,
                                       bool stable_payload) {
  while (count > 0) {
    const std::size_t n = std::min(count, net::DecodedSlab::kCapacity);
    net::decode_slab(packets, n, slab_);
    for (std::size_t i = 0; i < n; ++i) {
      feed_lens(packets[i].timestamp, packets[i].data, slab_.lens[i],
                stable_payload, out);
    }
    packets += n;
    count -= n;
  }
}

void RecordStreamExtractor::feed_tcp(util::SimTime timestamp,
                                     const net::Endpoint& source,
                                     const net::Endpoint& destination,
                                     std::uint8_t tcp_flags,
                                     std::uint32_t sequence,
                                     util::BytesView payload,
                                     std::size_t truncated_bytes,
                                     bool stable_payload,
                                     std::vector<StreamEvent>& out) {
  std::uint64_t hash =
      net::endpoint_pair_hash(source, destination, net::IpProtocol::kTcp);
  if (hash < 2) hash += 2;  // 0 and 1 are the index's empty/tombstone marks

  net::FlowDirection direction = net::FlowDirection::kClientToServer;
  FlowMap::iterator it = find_flow(hash, source, destination, direction);
  if (it == flows_.end()) {
    // New flow: decide orientation. The sender of a pure SYN is the
    // client; otherwise the well-known-port heuristic — a source port
    // below 1024 (and a peer's that is not) suggests the packet came
    // *from* the server.
    const bool is_syn_only =
        (tcp_flags & 0x02) != 0 && (tcp_flags & 0x10) == 0;
    net::FlowKey key{source, destination, net::IpProtocol::kTcp};
    if (!is_syn_only && source.port < 1024 && !(destination.port < 1024)) {
      key = net::FlowKey{destination, source, net::IpProtocol::kTcp};
      direction = net::FlowDirection::kServerToClient;
    }
    it = insert_flow(hash, key);
    it->second.first_seen = timestamp;
    ++flows_opened_;
    obs::inc(metrics_.flows_opened);
  }
  PerFlow& state = it->second;
  state.last_seen = timestamp;

  const bool has_payload = !payload.empty();
  if (has_payload) obs::inc(metrics_.tcp_segments);

  // SYN/FIN/RST and truncated segments always take the buffered path;
  // so does anything the in-order fast path rejects (reorder,
  // retransmit, pending data behind a hole) — the rejection mutates
  // nothing, so the slow path sees pristine state.
  if ((tcp_flags & 0x07) != 0 || truncated_bytes != 0) {
    feed_tcp_slow(it, direction, timestamp, sequence, tcp_flags, payload,
                  truncated_bytes, has_payload, stable_payload, out);
    return;
  }
  const std::optional<std::uint64_t> offset =
      state.reassembler.stream(direction).accept_in_order(sequence,
                                                          payload.size());
  if (!offset) {
    feed_tcp_slow(it, direction, timestamp, sequence, tcp_flags, payload,
                  truncated_bytes, has_payload, stable_payload, out);
    return;
  }
  if (!has_payload) return;  // in-order pure ACK: nothing to deliver

  // The segment is the next contiguous chunk: hand its bytes straight
  // to the TLS parser, skipping the reassembler's buffer-and-drain
  // machinery (and its per-segment copy) entirely.
  obs::inc(metrics_.tcp_chunks);
  obs::inc(metrics_.tcp_bytes, payload.size());
  TlsRecordParser& parser = direction == net::FlowDirection::kClientToServer
                                ? state.client_parser
                                : state.server_parser;
  parsed_scratch_.clear();
  parser.feed(timestamp, payload, parsed_scratch_);
  for (TlsRecordParser::ParsedRecord& parsed : parsed_scratch_) {
    emit_record(it->first, state, direction, parsed, out);
  }
  sync_tls_counters(state);
}

void RecordStreamExtractor::feed_tcp_slow(
    FlowMap::iterator it, net::FlowDirection direction, util::SimTime timestamp,
    std::uint32_t sequence, std::uint8_t tcp_flags, util::BytesView payload,
    std::size_t truncated_bytes, bool has_payload, bool stable_payload,
    std::vector<StreamEvent>& out) {
  PerFlow& state = it->second;
  const std::uint64_t dropped_before =
      state.reassembler.client_stream().dropped_bytes() +
      state.reassembler.server_stream().dropped_bytes();

  items_scratch_.clear();
  state.reassembler.on_segment(direction, timestamp, sequence,
                               (tcp_flags & 0x02) != 0, (tcp_flags & 0x01) != 0,
                               (tcp_flags & 0x04) != 0, payload,
                               truncated_bytes, items_scratch_, stable_payload);
  if (has_payload && items_scratch_.empty()) {
    obs::inc(metrics_.tcp_segments_buffered);
  }
  const std::uint64_t dropped_after =
      state.reassembler.client_stream().dropped_bytes() +
      state.reassembler.server_stream().dropped_bytes();
  obs::inc(metrics_.tcp_dropped_bytes, dropped_after - dropped_before);

  process_items(it->first, state, items_scratch_, out);
  sync_tls_counters(state);

  if (state.reassembler.reset()) {
    // RST teardown: the connection is over in both directions. Retire
    // the flow now instead of letting it linger until idle eviction.
    complete_flow(it, out);
  }
}

RecordStreamExtractor::FlowMap::iterator RecordStreamExtractor::find_flow(
    std::uint64_t hash, const net::Endpoint& source,
    const net::Endpoint& destination, net::FlowDirection& direction) {
  if (index_.empty()) return flows_.end();
  const std::size_t mask = index_.size() - 1;
  for (std::size_t pos = hash & mask;; pos = (pos + 1) & mask) {
    const IndexSlot& slot = index_[pos];
    if (slot.hash == 0) return flows_.end();
    if (slot.hash != hash) continue;  // tombstones (hash 1) land here too
    const net::FlowKey& key = slot.it->first;
    if (key.client == source && key.server == destination) {
      direction = net::FlowDirection::kClientToServer;
      return slot.it;
    }
    if (key.client == destination && key.server == source) {
      direction = net::FlowDirection::kServerToClient;
      return slot.it;
    }
  }
}

RecordStreamExtractor::FlowMap::iterator RecordStreamExtractor::insert_flow(
    std::uint64_t hash, const net::FlowKey& key) {
  PerFlow fresh;
  if (!pool_.empty()) {
    fresh = std::move(pool_.back());
    pool_.pop_back();
  } else {
    fresh.reassembler = net::TcpConnectionReassembler(config_.reassembly);
  }
  fresh.index_hash = hash;
  const FlowMap::iterator it = flows_.emplace(key, std::move(fresh)).first;
  index_insert(hash, it);
  if (flows_.size() > peak_active_flows_) peak_active_flows_ = flows_.size();
  return it;
}

RecordStreamExtractor::FlowMap::iterator RecordStreamExtractor::erase_flow(
    FlowMap::iterator it) {
  if (!index_.empty()) {
    const std::uint64_t hash = it->second.index_hash;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t pos = hash & mask;; pos = (pos + 1) & mask) {
      IndexSlot& slot = index_[pos];
      if (slot.hash == 0) break;  // defensive: entry was not indexed
      if (slot.hash == hash && slot.it == it) {
        slot.hash = 1;  // tombstone: probes continue across it
        slot.it = FlowMap::iterator{};
        --index_live_;
        ++index_tombstones_;
        break;
      }
    }
  }
  // Recycle the shell: content dropped, buffer capacities retained.
  PerFlow shell = std::move(it->second);
  if (pool_.size() < kFlowPoolCap) {
    shell.reassembler = net::TcpConnectionReassembler(config_.reassembly);
    shell.client_parser.reset();
    shell.server_parser.reset();
    shell.events.clear();
    shell.sni.reset();
    shell.sni_searched = false;
    shell.gaps = 0;
    shell.gap_bytes = 0;
    shell.tls_skipped_accounted = 0;
    shell.tls_resyncs_accounted = 0;
    shell.index_hash = 0;
    pool_.push_back(std::move(shell));
  }
  return flows_.erase(it);
}

void RecordStreamExtractor::index_insert(std::uint64_t hash,
                                         FlowMap::iterator it) {
  // Grow (or purge tombstones) at 3/4 occupancy so probes stay short.
  if (index_.empty() ||
      (index_live_ + index_tombstones_ + 1) * 4 > index_.size() * 3) {
    index_grow();
  }
  const std::size_t mask = index_.size() - 1;
  std::size_t pos = hash & mask;
  while (index_[pos].hash >= 2) pos = (pos + 1) & mask;
  if (index_[pos].hash == 1) --index_tombstones_;
  index_[pos] = IndexSlot{hash, it};
  ++index_live_;
}

void RecordStreamExtractor::index_grow() {
  std::size_t capacity = index_.empty() ? kIndexInitialSlots : index_.size();
  while ((index_live_ + 1) * 4 > capacity * 3) capacity *= 2;
  index_.assign(capacity, IndexSlot{});
  index_tombstones_ = 0;
  index_live_ = 0;
  const std::size_t mask = capacity - 1;
  for (FlowMap::iterator it = flows_.begin(); it != flows_.end(); ++it) {
    std::size_t pos = it->second.index_hash & mask;
    while (index_[pos].hash != 0) pos = (pos + 1) & mask;
    index_[pos] = IndexSlot{it->second.index_hash, it};
    ++index_live_;
  }
}

void RecordStreamExtractor::process_items(
    const net::FlowKey& key, PerFlow& state,
    std::vector<net::TcpConnectionReassembler::DirectedItem>& items,
    std::vector<StreamEvent>& out) {
  for (auto& directed : items) {
    TlsRecordParser& parser =
        directed.direction == net::FlowDirection::kClientToServer
            ? state.client_parser
            : state.server_parser;
    if (directed.item.kind == net::StreamItem::Kind::kGap) {
      const net::StreamGap& gap = directed.item.gap;
      parser.on_gap(gap.timestamp, gap.length);
      ++state.gaps;
      state.gap_bytes += gap.length;
      ++gaps_total_;
      gap_bytes_total_ += gap.length;
      obs::inc(metrics_.tcp_gaps);
      obs::inc(metrics_.tcp_gap_bytes, gap.length);
      StreamEvent event;
      event.flow = key;
      event.kind = StreamEvent::Kind::kGap;
      event.gap = StreamGapEvent{gap.timestamp, directed.direction,
                                 gap.stream_offset, gap.length};
      out.push_back(std::move(event));
      continue;
    }
    net::StreamChunk& chunk = directed.item.chunk;
    const util::BytesView chunk_bytes = chunk.bytes();
    obs::inc(metrics_.tcp_chunks);
    obs::inc(metrics_.tcp_bytes, chunk_bytes.size());
    parsed_scratch_.clear();
    parser.feed(chunk.timestamp, chunk_bytes, parsed_scratch_);
    for (auto& parsed : parsed_scratch_) {
      emit_record(key, state, directed.direction, parsed, out);
    }
  }
}

void RecordStreamExtractor::emit_record(const net::FlowKey& key, PerFlow& state,
                                        net::FlowDirection direction,
                                        TlsRecordParser::ParsedRecord& parsed,
                                        std::vector<StreamEvent>& out) {
  // Opportunistic SNI capture from client handshake records.
  if (!state.sni_searched && direction == net::FlowDirection::kClientToServer &&
      parsed.content_type == ContentType::kHandshake) {
    state.sni = extract_sni(parsed.payload);
    state.sni_searched = true;
  }
  RecordEvent event;
  event.timestamp = parsed.timestamp;
  event.direction = direction;
  event.content_type = parsed.content_type;
  event.record_length = parsed.length;
  event.stream_offset = parsed.stream_offset;
  event.after_gap = parsed.after_gap;
  obs::inc(metrics_.records);
  if (event.after_gap) obs::inc(metrics_.records_after_gap);
  switch (event.content_type) {
    case ContentType::kHandshake:
      obs::inc(metrics_.records_handshake);
      break;
    case ContentType::kApplicationData:
      obs::inc(metrics_.records_application);
      break;
    case ContentType::kAlert:
      obs::inc(metrics_.records_alert);
      break;
    default:
      obs::inc(metrics_.records_other);
      break;
  }
  if (event.is_client_application_data()) {
    obs::inc(metrics_.client_app_records);
    obs::observe(metrics_.client_record_lengths, event.record_length);
  }
  if (config_.retain_events) state.events.push_back(event);
  out.push_back(StreamEvent{key, StreamEvent::Kind::kRecord, event, {}});
}

void RecordStreamExtractor::sync_tls_counters(PerFlow& state) {
  const std::uint64_t skipped = state.client_parser.bytes_skipped() +
                                state.server_parser.bytes_skipped();
  const std::uint64_t resyncs =
      state.client_parser.resyncs() + state.server_parser.resyncs();
  obs::inc(metrics_.tls_skipped_bytes, skipped - state.tls_skipped_accounted);
  obs::inc(metrics_.tls_resyncs, resyncs - state.tls_resyncs_accounted);
  tls_skipped_total_ += skipped - state.tls_skipped_accounted;
  tls_resyncs_total_ += resyncs - state.tls_resyncs_accounted;
  state.tls_skipped_accounted = skipped;
  state.tls_resyncs_accounted = resyncs;
}

void RecordStreamExtractor::complete_flow(FlowMap::iterator it,
                                          std::vector<StreamEvent>& out) {
  const net::FlowKey key = it->first;
  PerFlow& state = it->second;
  // The stream is over: give the parsers their end-of-stream chance to
  // re-lock with relaxed validation and emit trailing records.
  parsed_scratch_.clear();
  state.client_parser.flush(state.last_seen, parsed_scratch_);
  for (auto& parsed : parsed_scratch_) {
    emit_record(key, state, net::FlowDirection::kClientToServer, parsed, out);
  }
  parsed_scratch_.clear();
  state.server_parser.flush(state.last_seen, parsed_scratch_);
  for (auto& parsed : parsed_scratch_) {
    emit_record(key, state, net::FlowDirection::kServerToClient, parsed, out);
  }
  parsed_scratch_.clear();
  sync_tls_counters(state);
  if (config_.retain_events) completed_.push_back(snapshot(key, state));
  erase_flow(it);
  ++flows_completed_;
}

std::vector<StreamEvent> RecordStreamExtractor::flush() {
  std::vector<StreamEvent> out;
  while (!flows_.empty()) {
    const auto it = flows_.begin();
    PerFlow& state = it->second;
    auto items = state.reassembler.flush(state.last_seen);
    process_items(it->first, state, items, out);
    complete_flow(it, out);
  }
  return out;
}

std::size_t RecordStreamExtractor::sweep_idle(util::SimTime now) {
  if (config_.idle_timeout == util::Duration{}) return 0;
  const std::uint64_t before = flows_evicted_;
  // Reset the cadence gate: a timer-driven sweep is authoritative.
  sweep_armed_ = false;
  evict_idle(now);
  return static_cast<std::size_t>(flows_evicted_ - before);
}

void RecordStreamExtractor::evict_idle(util::SimTime now) {
  // Sweep at a fraction of the timeout so the scan cost amortizes to
  // O(1) per packet while flows still leave within ~1.25x the timeout.
  const util::Duration cadence =
      util::Duration::nanos(config_.idle_timeout.total_nanos() / 4);
  if (sweep_armed_ && now - last_sweep_ < cadence) return;
  sweep_armed_ = true;
  last_sweep_ = now;

  const util::SimTime cutoff = now - config_.idle_timeout;
  std::uint64_t evicted = 0;
  for (FlowMap::iterator it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen < cutoff) {
      if (config_.retain_events) {
        completed_.push_back(snapshot(it->first, it->second));
      }
      it = erase_flow(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  flows_evicted_ += evicted;
  obs::inc(metrics_.flows_evicted, evicted);
}

FlowRecordStream RecordStreamExtractor::snapshot(const net::FlowKey& key,
                                                 const PerFlow& state) const {
  FlowRecordStream stream;
  stream.flow = key;
  stream.sni = state.sni;
  stream.events = state.events;
  stream.client_stream_bytes = state.reassembler.client_stream().delivered_bytes();
  stream.server_stream_bytes = state.reassembler.server_stream().delivered_bytes();
  stream.client_desynchronized = state.client_parser.desynchronized();
  stream.server_desynchronized = state.server_parser.desynchronized();
  stream.gaps = state.reassembler.client_stream().gaps_emitted() +
                state.reassembler.server_stream().gaps_emitted();
  stream.gap_bytes = state.reassembler.client_stream().gap_bytes() +
                     state.reassembler.server_stream().gap_bytes();
  stream.tls_bytes_skipped =
      state.client_parser.bytes_skipped() + state.server_parser.bytes_skipped();
  stream.tls_resyncs =
      state.client_parser.resyncs() + state.server_parser.resyncs();
  return stream;
}

std::vector<FlowRecordStream> RecordStreamExtractor::finish() {
  flush();
  std::vector<FlowRecordStream> out = completed_;
  // Order by first event time (completed_ holds retirement order).
  std::sort(out.begin(), out.end(),
            [](const FlowRecordStream& a, const FlowRecordStream& b) {
              const util::SimTime ta =
                  a.events.empty() ? util::SimTime() : a.events.front().timestamp;
              const util::SimTime tb =
                  b.events.empty() ? util::SimTime() : b.events.front().timestamp;
              return ta < tb;
            });
  return out;
}

std::size_t RecordStreamExtractor::buffered_reassembly_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, state] : flows_) total += state.reassembler.buffered_bytes();
  return total;
}

std::optional<std::string> RecordStreamExtractor::sni_of(
    const net::FlowKey& flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? std::nullopt : it->second.sni;
}

std::vector<FlowRecordStream> extract_record_streams(
    const std::vector<net::Packet>& packets) {
  RecordStreamExtractor extractor;
  for (const net::Packet& packet : packets) extractor.add_packet(packet);
  return extractor.finish();
}

}  // namespace wm::tls
