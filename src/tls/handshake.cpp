#include "wm/tls/handshake.hpp"

#include <stdexcept>

#include "wm/util/bytes.hpp"

namespace wm::tls {

using util::ByteReader;
using util::ByteWriter;
using util::Bytes;
using util::BytesView;

std::string to_string(HandshakeType type) {
  switch (type) {
    case HandshakeType::kHelloRequest: return "hello_request";
    case HandshakeType::kClientHello: return "client_hello";
    case HandshakeType::kServerHello: return "server_hello";
    case HandshakeType::kNewSessionTicket: return "new_session_ticket";
    case HandshakeType::kCertificate: return "certificate";
    case HandshakeType::kServerKeyExchange: return "server_key_exchange";
    case HandshakeType::kCertificateRequest: return "certificate_request";
    case HandshakeType::kServerHelloDone: return "server_hello_done";
    case HandshakeType::kClientKeyExchange: return "client_key_exchange";
    case HandshakeType::kFinished: return "finished";
  }
  return "handshake(" + std::to_string(static_cast<int>(type)) + ")";
}

namespace {

void write_extensions(ByteWriter& out, const std::vector<Extension>& extensions) {
  if (extensions.empty()) return;
  std::size_t total = 0;
  for (const Extension& ext : extensions) total += 4 + ext.body.size();
  out.write_u16_be(static_cast<std::uint16_t>(total));
  for (const Extension& ext : extensions) {
    out.write_u16_be(ext.type);
    out.write_u16_be(static_cast<std::uint16_t>(ext.body.size()));
    out.write_bytes(ext.body);
  }
}

std::optional<std::vector<Extension>> read_extensions(ByteReader& reader) {
  std::vector<Extension> out;
  if (reader.remaining() == 0) return out;  // extensions are optional
  if (reader.remaining() < 2) return std::nullopt;
  const std::uint16_t total = reader.read_u16_be();
  if (reader.remaining() < total) return std::nullopt;
  std::size_t consumed = 0;
  while (consumed < total) {
    if (reader.remaining() < 4) return std::nullopt;
    Extension ext;
    ext.type = reader.read_u16_be();
    const std::uint16_t len = reader.read_u16_be();
    if (reader.remaining() < len) return std::nullopt;
    ext.body = reader.read_bytes(len);
    consumed += 4 + len;
    out.push_back(std::move(ext));
  }
  return out;
}

/// Wrap a body in the 4-byte handshake message header.
Bytes wrap_handshake(HandshakeType type, BytesView body) {
  ByteWriter out(4 + body.size());
  out.write_u8(static_cast<std::uint8_t>(type));
  out.write_u24_be(static_cast<std::uint32_t>(body.size()));
  out.write_bytes(body);
  return out.take();
}

}  // namespace

void ClientHello::set_sni(std::string_view host_name) {
  // server_name extension: list length (2) + type host_name(0) (1) +
  // name length (2) + name bytes.
  ByteWriter body;
  body.write_u16_be(static_cast<std::uint16_t>(3 + host_name.size()));
  body.write_u8(0);  // host_name
  body.write_u16_be(static_cast<std::uint16_t>(host_name.size()));
  for (char c : host_name) body.write_u8(static_cast<std::uint8_t>(c));

  for (Extension& ext : extensions) {
    if (ext.type == static_cast<std::uint16_t>(ExtensionType::kServerName)) {
      ext.body = body.take();
      return;
    }
  }
  extensions.push_back(
      Extension{static_cast<std::uint16_t>(ExtensionType::kServerName), body.take()});
}

std::optional<std::string> ClientHello::sni() const {
  for (const Extension& ext : extensions) {
    if (ext.type != static_cast<std::uint16_t>(ExtensionType::kServerName)) continue;
    ByteReader reader(ext.body);
    try {
      const std::uint16_t list_len = reader.read_u16_be();
      (void)list_len;
      const std::uint8_t name_type = reader.read_u8();
      if (name_type != 0) return std::nullopt;
      const std::uint16_t name_len = reader.read_u16_be();
      const BytesView name = reader.read_view(name_len);
      return std::string(name.begin(), name.end());
    } catch (const util::OutOfBoundsError&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void ClientHello::set_alpn(const std::vector<std::string>& protocols) {
  ByteWriter list;
  for (const std::string& protocol : protocols) {
    list.write_u8(static_cast<std::uint8_t>(protocol.size()));
    for (char c : protocol) list.write_u8(static_cast<std::uint8_t>(c));
  }
  ByteWriter body;
  body.write_u16_be(static_cast<std::uint16_t>(list.size()));
  body.write_bytes(list.view());
  extensions.push_back(
      Extension{static_cast<std::uint16_t>(ExtensionType::kAlpn), body.take()});
}

Bytes ClientHello::serialize() const {
  ByteWriter body;
  body.write_u16_be(legacy_version);
  body.write_bytes(random);
  body.write_u8(static_cast<std::uint8_t>(session_id.size()));
  body.write_bytes(session_id);
  body.write_u16_be(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t suite : cipher_suites) body.write_u16_be(suite);
  body.write_u8(static_cast<std::uint8_t>(compression_methods.size()));
  for (std::uint8_t method : compression_methods) body.write_u8(method);
  write_extensions(body, extensions);
  return wrap_handshake(HandshakeType::kClientHello, body.view());
}

std::optional<ClientHello> ClientHello::parse(BytesView handshake_message) {
  ByteReader reader(handshake_message);
  try {
    const std::uint8_t msg_type = reader.read_u8();
    if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
      return std::nullopt;
    }
    const std::uint32_t body_len = reader.read_u24_be();
    if (reader.remaining() < body_len) return std::nullopt;

    ClientHello out;
    out.legacy_version = reader.read_u16_be();
    const BytesView random = reader.read_view(32);
    std::copy(random.begin(), random.end(), out.random.begin());
    const std::uint8_t session_len = reader.read_u8();
    out.session_id = reader.read_bytes(session_len);
    const std::uint16_t suites_len = reader.read_u16_be();
    if (suites_len % 2 != 0) return std::nullopt;
    out.cipher_suites.clear();
    for (std::size_t i = 0; i < suites_len / 2; ++i) {
      out.cipher_suites.push_back(reader.read_u16_be());
    }
    const std::uint8_t compression_len = reader.read_u8();
    out.compression_methods = reader.read_bytes(compression_len);
    auto extensions = read_extensions(reader);
    if (!extensions) return std::nullopt;
    out.extensions = std::move(*extensions);
    return out;
  } catch (const util::OutOfBoundsError&) {
    return std::nullopt;
  }
}

Bytes ServerHello::serialize() const {
  ByteWriter body;
  body.write_u16_be(legacy_version);
  body.write_bytes(random);
  body.write_u8(static_cast<std::uint8_t>(session_id.size()));
  body.write_bytes(session_id);
  body.write_u16_be(cipher_suite);
  body.write_u8(compression_method);
  write_extensions(body, extensions);
  return wrap_handshake(HandshakeType::kServerHello, body.view());
}

std::optional<ServerHello> ServerHello::parse(BytesView handshake_message) {
  ByteReader reader(handshake_message);
  try {
    const std::uint8_t msg_type = reader.read_u8();
    if (msg_type != static_cast<std::uint8_t>(HandshakeType::kServerHello)) {
      return std::nullopt;
    }
    const std::uint32_t body_len = reader.read_u24_be();
    if (reader.remaining() < body_len) return std::nullopt;

    ServerHello out;
    out.legacy_version = reader.read_u16_be();
    const BytesView random = reader.read_view(32);
    std::copy(random.begin(), random.end(), out.random.begin());
    const std::uint8_t session_len = reader.read_u8();
    out.session_id = reader.read_bytes(session_len);
    out.cipher_suite = reader.read_u16_be();
    out.compression_method = reader.read_u8();
    auto extensions = read_extensions(reader);
    if (!extensions) return std::nullopt;
    out.extensions = std::move(*extensions);
    return out;
  } catch (const util::OutOfBoundsError&) {
    return std::nullopt;
  }
}

Bytes opaque_handshake_message(HandshakeType type, std::size_t total_size) {
  if (total_size < 4) {
    throw std::invalid_argument("opaque_handshake_message: total_size < 4");
  }
  const std::size_t body_size = total_size - 4;
  ByteWriter out(total_size);
  out.write_u8(static_cast<std::uint8_t>(type));
  out.write_u24_be(static_cast<std::uint32_t>(body_size));
  out.write_repeated(0xab, body_size);
  return out.take();
}

std::optional<std::string> extract_sni(BytesView handshake_payload) {
  // Walk handshake messages until a ClientHello is found.
  std::size_t pos = 0;
  while (pos + 4 <= handshake_payload.size()) {
    const std::uint8_t type = handshake_payload[pos];
    const std::uint32_t len = (static_cast<std::uint32_t>(handshake_payload[pos + 1]) << 16) |
                              (static_cast<std::uint32_t>(handshake_payload[pos + 2]) << 8) |
                              static_cast<std::uint32_t>(handshake_payload[pos + 3]);
    if (pos + 4 + len > handshake_payload.size()) return std::nullopt;
    if (type == static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
      const auto hello = ClientHello::parse(handshake_payload.subspan(pos, 4 + len));
      if (!hello) return std::nullopt;
      return hello->sni();
    }
    pos += 4 + len;
  }
  return std::nullopt;
}

}  // namespace wm::tls
