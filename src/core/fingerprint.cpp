#include "wm/core/fingerprint.hpp"

#include <algorithm>

#include "wm/sim/session.hpp"

namespace wm::core {

void ConditionFingerprinter::add(sim::OperationalConditions conditions,
                                 std::shared_ptr<AttackPipeline> pipeline) {
  library_.push_back(FingerprintEntry{conditions, std::move(pipeline)});
}

ConditionFingerprinter ConditionFingerprinter::build_library(
    const story::StoryGraph& graph,
    const std::vector<sim::OperationalConditions>& conditions,
    std::size_t sessions_per_condition, std::uint64_t seed) {
  ConditionFingerprinter out;
  std::vector<story::Choice> alternating;
  for (int i = 0; i < 13; ++i) {
    alternating.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                     : story::Choice::kDefault);
  }

  std::uint64_t next_seed = seed;
  for (const sim::OperationalConditions& condition : conditions) {
    std::vector<CalibrationSession> calibration;
    for (std::size_t s = 0; s < sessions_per_condition; ++s) {
      sim::SessionConfig config;
      config.conditions = condition;
      config.seed = next_seed++;
      auto session = sim::simulate_session(graph, alternating, config);
      calibration.push_back(CalibrationSession{
          std::move(session.capture.packets), std::move(session.truth)});
    }
    auto pipeline = std::make_shared<AttackPipeline>("interval");
    pipeline->calibrate(calibration);
    out.add(condition, std::move(pipeline));
  }
  return out;
}

std::vector<FingerprintScore> ConditionFingerprinter::score(
    const std::vector<ClientRecordObservation>& observations) const {
  std::vector<FingerprintScore> scores;
  scores.reserve(library_.size());

  for (const FingerprintEntry& entry : library_) {
    FingerprintScore score;
    score.conditions = entry.conditions;
    for (const ClientRecordObservation& obs : observations) {
      switch (entry.pipeline->classifier().classify(obs.record_length)) {
        case RecordClass::kType1Json: ++score.type1_hits; break;
        case RecordClass::kType2Json: ++score.type2_hits; break;
        case RecordClass::kOther: break;
      }
    }
    // Structural constraints of the Fig. 1 protocol: at least one
    // question; never more overrides than questions; a film has a
    // bounded number of questions per session.
    const std::size_t question_cap = 64;
    score.plausible = score.type1_hits >= 1 &&
                      score.type1_hits <= question_cap &&
                      score.type2_hits <= score.type1_hits;
    // The true condition explains the most protocol structure: one
    // type-1 per question plus type-2 overrides. Impostor bands catch
    // at most the occasional stray telemetry record. Type-2 hits weigh
    // double — they only exist when the band layout matches the
    // protocol. Lower penalty = better.
    score.penalty = -static_cast<double>(score.type1_hits + 2 * score.type2_hits);
    scores.push_back(score);
  }

  std::stable_sort(scores.begin(), scores.end(),
                   [](const FingerprintScore& a, const FingerprintScore& b) {
                     if (a.plausible != b.plausible) return a.plausible;
                     return a.penalty < b.penalty;
                   });
  return scores;
}

std::optional<sim::OperationalConditions> ConditionFingerprinter::identify(
    const std::vector<ClientRecordObservation>& observations) const {
  const auto scores = score(observations);
  if (scores.empty() || !scores.front().plausible) return std::nullopt;
  return scores.front().conditions;
}

ConditionFingerprinter::Result ConditionFingerprinter::infer(
    const std::vector<net::Packet>& packets) const {
  Result result;
  const auto observations = extract_client_records(packets);
  result.conditions = identify(observations);
  if (!result.conditions) return result;
  for (const FingerprintEntry& entry : library_) {
    if (entry.conditions == *result.conditions) {
      result.session =
          decode_choices(entry.pipeline->classifier(), observations);
      break;
    }
  }
  return result;
}

}  // namespace wm::core
