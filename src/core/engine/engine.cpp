#include "wm/core/engine/engine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "wm/core/features.hpp"
#include "wm/net/flow.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/buffer_pool.hpp"
#include "wm/util/spsc_ring.hpp"
#include "wm/util/thread_annotations.hpp"

namespace wm::engine {

std::string EngineStats::to_string() const {
  std::ostringstream out;
  out << "shards=" << shards << " packets=" << packets_in
      << " bytes=" << bytes_in
      << " records=" << records << " client_records=" << client_records
      << " type1=" << type1_records << " type2=" << type2_records
      << " viewers=" << viewers_seen << " flows=" << flows_opened
      << " evicted=" << flows_evicted << " completed=" << flows_completed
      << " peak_flows=" << peak_active_flows
      << " gaps=" << gaps << " gap_bytes=" << gap_bytes
      << " resyncs=" << tls_resyncs << " tls_skipped=" << tls_skipped_bytes
      << " backpressure=" << backpressure_waits
      << " source_errors=" << source_errors;
  return out.str();
}

namespace {

/// The deterministic observation order both the batch pipeline and the
/// engine decode in. Record length breaks timestamp ties so the result
/// is independent of which shard delivered an observation first; the
/// after_gap flag breaks the residual tie (false first) because two
/// records equal in time and length can still decode differently when
/// one carries the gap taint.
bool observation_before(const core::ClientRecordObservation& a,
                        const core::ClientRecordObservation& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  if (a.record_length != b.record_length) return a.record_length < b.record_length;
  return !a.after_gap && b.after_gap;
}

/// Deterministic gap timeline order (gaps from different flows of one
/// viewer arrive in shard-dependent order).
bool gap_before(const core::GapSpan& a, const core::GapSpan& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.bytes < b.bytes;
}

std::string client_key(const net::FlowKey& flow) {
  return flow.client.is_v6 ? flow.client.v6.to_string()
                           : flow.client.v4.to_string();
}

}  // namespace

// --- Collector -------------------------------------------------------
//
// The only cross-shard state. Workers call on_record() once per
// *client application record* — orders of magnitude rarer than packets
// — so one mutex suffices; the packet hot path never reaches here.

class ShardedFlowEngine::Collector {
 public:
  Collector(const core::RecordClassifier& classifier, util::Duration gap,
            EventSink* sink, obs::Registry* metrics)
      : classifier_(classifier), gap_(gap), sink_(sink) {
    if (metrics != nullptr) {
      client_records_counter_ = metrics->counter("engine.collector.client_records", obs::Stability::kStable);
      type1_counter_ = metrics->counter("engine.collector.type1", obs::Stability::kStable);
      type2_counter_ = metrics->counter("engine.collector.type2", obs::Stability::kStable);
      other_counter_ = metrics->counter("engine.collector.other", obs::Stability::kStable);
      viewers_counter_ = metrics->counter("engine.collector.viewers", obs::Stability::kStable);
      sink_updates_counter_ = metrics->counter("engine.collector.sink_updates", obs::Stability::kStable);
      gaps_counter_ = metrics->counter("engine.collector.gaps", obs::Stability::kStable);
    }
  }

  /// Attach pool counters (hit/miss/high-water for the live-update
  /// snapshot pool). Volatile: recycling depends on worker timing.
  void set_pool_metrics(const util::PoolMetrics& metrics) {
    snapshot_pool_.set_metrics(metrics);
  }

  void on_record(const std::string& client,
                 const core::ClientRecordObservation& observation,
                 core::RecordClass cls) WM_EXCLUDES(mutex_) {
    // Live updates copy this viewer's observation log into a pooled
    // vector: after the first few records the pool hands back retained
    // capacity, so the per-record path stops allocating.
    SnapshotPool::Lease snapshot;
    if (sink_ != nullptr) snapshot = snapshot_pool_.acquire();
    bool live_update = false;
    core::DecodeOptions options;
    options.min_question_gap = gap_;
    {
      const util::LockGuard lock(mutex_);
      auto& observations = clients_[client];
      if (observations.empty()) obs::inc(viewers_counter_);
      observations.push_back(observation);
      ++client_records_;
      if (cls == core::RecordClass::kType1Json) ++type1_;
      if (cls == core::RecordClass::kType2Json) ++type2_;
      // Per-class counters before the total: a snapshot that reads the
      // total first (map order: "...client_records" < "...other" <
      // "...type1") then the parts can never see parts < total.
      switch (cls) {
        case core::RecordClass::kType1Json: obs::inc(type1_counter_); break;
        case core::RecordClass::kType2Json: obs::inc(type2_counter_); break;
        case core::RecordClass::kOther: obs::inc(other_counter_); break;
      }
      obs::inc(client_records_counter_);
      if (sink_ != nullptr && cls != core::RecordClass::kOther) {
        snapshot->assign(observations.begin(), observations.end());
        const auto gap_it = gaps_.find(client);
        if (gap_it != gaps_.end()) options.gaps = gap_it->second;
        live_update = true;
      }
    }
    if (!live_update) return;
    // Decode outside the lock; the snapshot is this viewer's few
    // hundred observations at most.
    std::sort(snapshot->begin(), snapshot->end(), observation_before);
    const core::InferredSession session =
        core::decode_choices(classifier_, *snapshot, options);

    // Diff the fresh decode against what was already announced for this
    // viewer, under the lock so concurrent workers (one viewer's flows
    // can land on different shards) advance the emit cursor
    // monotonically — each question is announced exactly once even when
    // two decodes race.
    std::size_t announce_from = 0;
    std::size_t announce_to = 0;
    bool announce_override = false;
    {
      const util::LockGuard lock(mutex_);
      EmitState& state = emitted_[client];
      if (session.questions.size() > state.questions) {
        announce_from = state.questions;
        announce_to = session.questions.size();
        state.questions = announce_to;
        state.last_choice = session.questions.back().choice;
      } else if (!session.questions.empty() &&
                 session.questions.size() == state.questions &&
                 session.questions.back().choice != state.last_choice &&
                 session.questions.back().choice != story::Choice::kDefault) {
        // The decoder only ever flips default -> non-default for a
        // given question; a stale racing snapshot that still shows the
        // default must not announce a "revert".
        announce_override = true;
        state.last_choice = session.questions.back().choice;
      }
    }
    for (std::size_t i = announce_from; i < announce_to; ++i) {
      const core::InferredQuestion& question = session.questions[i];
      QuestionOpenedEvent opened;
      opened.client = client;
      opened.question = question;
      opened.record_length = observation.record_length;
      opened.session = &session;
      obs::inc(sink_updates_counter_);
      sink_->on_question_opened(opened);
      if (question.choice != story::Choice::kDefault) {
        // Born non-default: an orphaned override synthesized it.
        announce_choice(client, question, observation, session);
      }
    }
    if (announce_override) {
      announce_choice(client, session.questions.back(), observation, session);
    }
  }

  /// A reassembly gap on one of this viewer's client->server streams:
  /// recorded into the viewer's gap timeline so decoding can lower the
  /// confidence of inferences it touches.
  void on_gap(const std::string& client, core::GapSpan gap)
      WM_EXCLUDES(mutex_) {
    {
      const util::LockGuard lock(mutex_);
      gaps_[client].push_back(gap);
      obs::inc(gaps_counter_);
    }
    if (sink_ != nullptr) {
      GapObservedEvent event;
      event.client = client;
      event.gap = gap;
      sink_->on_gap_observed(event);
    }
  }

  /// Single-threaded (post-join). Sorting per viewer then decoding
  /// reproduces the batch pipeline's observation order exactly.
  void finalize(EngineResult& result) WM_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    std::vector<core::ClientRecordObservation> all;
    std::vector<core::GapSpan> all_gaps;
    for (auto& [client, observations] : clients_) {
      std::sort(observations.begin(), observations.end(), observation_before);
      core::DecodeOptions options;
      options.min_question_gap = gap_;
      const auto gap_it = gaps_.find(client);
      if (gap_it != gaps_.end()) {
        options.gaps = gap_it->second;
        std::sort(options.gaps.begin(), options.gaps.end(), gap_before);
        all_gaps.insert(all_gaps.end(), options.gaps.begin(), options.gaps.end());
      }
      result.per_client.emplace(
          client, core::decode_choices(classifier_, observations, options));
      all.insert(all.end(), observations.begin(), observations.end());
    }
    std::sort(all.begin(), all.end(), observation_before);
    core::DecodeOptions combined_options;
    combined_options.min_question_gap = gap_;
    combined_options.gaps = std::move(all_gaps);
    std::sort(combined_options.gaps.begin(), combined_options.gaps.end(),
              gap_before);
    result.combined = core::decode_choices(classifier_, all, combined_options);
    result.stats.viewers_seen = clients_.size();
    result.stats.client_records = client_records_;
    result.stats.type1_records = type1_;
    result.stats.type2_records = type2_;
  }

 private:
  using SnapshotPool = util::ObjectPool<std::vector<core::ClientRecordObservation>>;

  /// What has already been announced through the sink for one viewer.
  struct EmitState {
    std::size_t questions = 0;
    story::Choice last_choice = story::Choice::kDefault;
  };

  void announce_choice(const std::string& client,
                       const core::InferredQuestion& question,
                       const core::ClientRecordObservation& observation,
                       const core::InferredSession& session) {
    ChoiceInferredEvent event;
    event.client = client;
    event.question = question;
    event.record_length = observation.record_length;
    event.at = observation.timestamp;
    event.final = false;  // finish() is authoritative in batch mode
    event.session = &session;
    obs::inc(sink_updates_counter_);
    sink_->on_choice_inferred(event);
  }

  const core::RecordClassifier& classifier_;
  const util::Duration gap_;
  EventSink* const sink_;
  SnapshotPool snapshot_pool_;
  // wm-lint: allow(mutex): collector merge point — workers hit it once
  // per flushed session batch, not per packet (see DESIGN.md s2.4).
  util::Mutex mutex_;
  std::map<std::string, std::vector<core::ClientRecordObservation>> clients_
      WM_GUARDED_BY(mutex_);
  /// Per-viewer gap timelines, parallel to clients_ (a viewer may have
  /// gaps before — or without — any decodable observation).
  std::map<std::string, std::vector<core::GapSpan>> gaps_
      WM_GUARDED_BY(mutex_);
  std::map<std::string, EmitState> emitted_ WM_GUARDED_BY(mutex_);
  std::uint64_t client_records_ WM_GUARDED_BY(mutex_) = 0;
  std::uint64_t type1_ WM_GUARDED_BY(mutex_) = 0;
  std::uint64_t type2_ WM_GUARDED_BY(mutex_) = 0;
  // Observability handles (null without a registry).
  obs::Counter* client_records_counter_ = nullptr;
  obs::Counter* type1_counter_ = nullptr;
  obs::Counter* type2_counter_ = nullptr;
  obs::Counter* other_counter_ = nullptr;
  obs::Counter* viewers_counter_ = nullptr;
  obs::Counter* sink_updates_counter_ = nullptr;
  obs::Counter* gaps_counter_ = nullptr;
};

// --- Shard -----------------------------------------------------------

struct ShardedFlowEngine::Shard {
  /// Batches the worker takes off inbound per wake: one blocking pop
  /// plus a non-blocking drain, so index publishes, wake fences and
  /// freelist returns amortize across up to this many batches
  /// (push_n/try_pop_n — the batched ring ops).
  static constexpr std::size_t kWorkerDrain = 8;

  Shard(const tls::RecordStreamExtractor::Config& extractor_config,
        std::size_t queue_capacity)
      : inbound(queue_capacity),
        freelist(inbound.capacity() + kWorkerDrain + 1),
        extractor(extractor_config) {
    // The arena backs both rings. Sizing: with inbound full (capacity
    // C), the worker holding a full drain run (kWorkerDrain batches)
    // and the dispatcher holding one pending batch, C + kWorkerDrain +
    // 1 batches are live — so after any successful inbound push at
    // least one batch sits in the freelist, and the dispatcher's
    // refill pop never blocks. Addresses are stable: the arena never
    // grows after construction.
    const std::size_t arena_size = inbound.capacity() + kWorkerDrain + 1;
    arena.reserve(arena_size);
    for (std::size_t i = 0; i < arena_size; ++i) {
      arena.push_back(std::make_unique<PacketBatch>());
      PacketBatch* batch = arena.back().get();
      // Pre-start, single-threaded: the arena was sized to fit.
      (void)freelist.try_push(batch);
    }
  }

  // Queue half: a lock-free SPSC ring pair between the feeding thread
  // (producer of inbound, consumer of freelist) and the worker. Full
  // batches travel down inbound; drained batches come back through
  // freelist with their slot capacity intact.
  util::SpscRing<PacketBatch*> inbound;
  util::SpscRing<PacketBatch*> freelist;
  std::vector<std::unique_ptr<PacketBatch>> arena;
  std::thread thread;

  // Analysis half: owned by the worker thread (or the feeding thread
  // in inline mode, or the joiner after shutdown) — never shared, so
  // the per-packet path is lock-free.
  tls::RecordStreamExtractor extractor;
  /// Cached per-flow collector key and SNI. The SNI is cached the first
  /// time the extractor resolves it so records flushed after the flow's
  /// state is retired (RST teardown, end-of-capture flush) keep it.
  struct ClientInfo {
    std::string key;
    std::optional<std::string> sni;
  };
  std::map<net::FlowKey, ClientInfo> clients;
  std::uint64_t records = 0;
  /// Scratch reused across batches by the slab path (feed_batch appends
  /// into it; capacity is retained between drains).
  std::vector<tls::StreamEvent> events;
  /// Recycled packet the scalar oracle materializes views into, so the
  /// per-view fallback path still allocates nothing in steady state.
  net::Packet scratch;
  /// Worker busy time per dequeued batch (null without a registry).
  obs::TimingSpan* work_span = nullptr;
};

ShardedFlowEngine::ShardedFlowEngine(const core::RecordClassifier& classifier,
                                     EngineConfig config, EventSink* sink)
    : classifier_(classifier),
      config_(config),
      collector_(std::make_unique<Collector>(classifier, config.min_question_gap,
                                             sink, config.metrics)) {
  tls::RecordStreamExtractor::Config extractor_config;
  extractor_config.retain_events = false;  // the collector is the memory
  extractor_config.idle_timeout = config_.flow_idle_timeout;
  extractor_config.reassembly = config_.reassembly;

  if (config_.metrics != nullptr) {
    packets_in_counter_ = config_.metrics->counter("engine.packets_in", obs::Stability::kStable);
    batches_counter_ =
        config_.metrics->counter("engine.batches", obs::Stability::kSharded);
    backpressure_counter_ = config_.metrics->counter(
        "engine.backpressure_waits", obs::Stability::kVolatile);
    config_.metrics
        ->counter("engine.shards_configured", obs::Stability::kSharded)
        ->add(config_.shards);
  }

  const std::size_t shard_count = std::max<std::size_t>(config_.shards, 1);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    if (config_.metrics != nullptr) {
      // Per-shard breakdowns are configuration-dependent; their sums
      // roll up under "engine." and stay invariant across shard counts
      // (every packet of a flow lands on exactly one shard).
      extractor_config.registry = config_.metrics;
      extractor_config.metrics_scope =
          "engine.shard[" + std::to_string(i) + "]";
      extractor_config.metrics_stability = obs::Stability::kSharded;
      extractor_config.metrics_rollup = "engine";
    }
    shards_.push_back(
        std::make_unique<Shard>(extractor_config, config_.queue_capacity));
    if (config_.metrics != nullptr) {
      shards_.back()->work_span = config_.metrics->timing(
          "engine.shard[" + std::to_string(i) + "].work");
    }
  }

  if (config_.metrics != nullptr) {
    util::PoolMetrics pool_metrics;
    pool_metrics.hits = config_.metrics->counter(
        "engine.collector.snapshot_pool.hits", obs::Stability::kVolatile);
    pool_metrics.misses = config_.metrics->counter(
        "engine.collector.snapshot_pool.misses", obs::Stability::kVolatile);
    pool_metrics.high_water = config_.metrics->counter(
        "engine.collector.snapshot_pool.high_water", obs::Stability::kVolatile);
    collector_->set_pool_metrics(pool_metrics);
  }

  if (config_.shards > 0) {
    pending_.resize(shards_.size(), nullptr);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      (void)shards_[i]->freelist.try_pop(pending_[i]);  // arena is pre-filled
    }
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->thread = std::thread([this, s] {
        // Batched drain: block for the first batch, then sweep up
        // whatever else is already queued — one index acquire and one
        // freelist publish per run instead of per batch.
        PacketBatch* local[Shard::kWorkerDrain] = {};
        while (s->inbound.pop(local[0])) {
          const std::size_t run =
              1 + s->inbound.try_pop_n(local + 1, Shard::kWorkerDrain - 1);
          {
            const obs::StageTimer timer(s->work_span);
            for (std::size_t i = 0; i < run; ++i) {
              process_batch(*s, *local[i]);
            }
          }
          // Slots keep their capacity for the refill.
          for (std::size_t i = 0; i < run; ++i) local[i]->clear();
          // The freelist ring holds the whole arena, so this never
          // parks; push_n still amortizes the wake edge.
          (void)s->freelist.push_n(local, run);
        }
      });
    }
  }
}

ShardedFlowEngine::~ShardedFlowEngine() {
  if (!finished_) shutdown_workers();
}

void ShardedFlowEngine::shutdown_workers() {
  if (config_.shards == 0) return;
  for (auto& shard : shards_) shard->inbound.close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedFlowEngine::process(Shard& shard, const net::Packet& packet) {
  for (const tls::StreamEvent& stream_event : shard.extractor.feed(packet)) {
    handle_event(shard, stream_event);
  }
}

void ShardedFlowEngine::process_batch(Shard& shard, const net::Packet* packets,
                                      std::size_t count) {
  if (!config_.slab_decode) {
    for (std::size_t i = 0; i < count; ++i) process(shard, packets[i]);
    return;
  }
  shard.events.clear();
  shard.extractor.feed_batch(packets, count, shard.events);
  for (const tls::StreamEvent& stream_event : shard.events) {
    handle_event(shard, stream_event);
  }
}

void ShardedFlowEngine::process_batch(Shard& shard,
                                      const net::PacketView* views,
                                      std::size_t count) {
  if (!config_.slab_decode) {
    // Oracle path: one recycled materialization per view, then the
    // scalar per-packet chain — identical semantics to feeding owned
    // packets (the reassembler copies payloads it must hold).
    for (std::size_t i = 0; i < count; ++i) {
      views[i].assign_to(shard.scratch);
      process(shard, shard.scratch);
    }
    return;
  }
  shard.events.clear();
  // stable_payload: the read_views() contract keeps the backing bytes
  // alive for the source's lifetime (which outlives finish() — see
  // consume()), so reassembly buffers borrowed spans instead of
  // copying out-of-order segments.
  shard.extractor.feed_batch(views, count, shard.events,
                             /*stable_payload=*/true);
  for (const tls::StreamEvent& stream_event : shard.events) {
    handle_event(shard, stream_event);
  }
}

void ShardedFlowEngine::process_batch(Shard& shard, const PacketBatch& batch) {
  if (batch.has_views()) {
    process_batch(shard, batch.views(), batch.size());
  } else {
    process_batch(shard, batch.begin(), batch.size());
  }
}

void ShardedFlowEngine::handle_event(Shard& shard,
                                     const tls::StreamEvent& stream_event) {
  auto [it, inserted] =
      shard.clients.try_emplace(stream_event.flow, Shard::ClientInfo{});
  if (inserted) it->second.key = client_key(stream_event.flow);
  Shard::ClientInfo& info = it->second;

  if (stream_event.kind == tls::StreamEvent::Kind::kGap) {
    // Only client->server holes can swallow the choice-marker uploads
    // the decoder reasons about; server-side loss is decode-neutral.
    const tls::StreamGapEvent& gap = stream_event.gap;
    if (gap.direction != net::FlowDirection::kClientToServer) return;
    collector_->on_gap(info.key, core::GapSpan{gap.timestamp, gap.length});
    return;
  }

  ++shard.records;
  const tls::RecordEvent& event = stream_event.event;
  if (!event.is_client_application_data()) return;

  if (!info.sni) info.sni = shard.extractor.sni_of(stream_event.flow);

  core::ClientRecordObservation observation;
  observation.timestamp = event.timestamp;
  observation.record_length = event.record_length;
  observation.flow_sni = info.sni;
  observation.after_gap = event.after_gap;
  collector_->on_record(info.key, observation,
                        classifier_.classify(event.record_length));
}

std::size_t ShardedFlowEngine::shard_for(const net::Packet& packet) const {
  return shard_for(util::BytesView(packet.data));
}

std::size_t ShardedFlowEngine::shard_for(util::BytesView frame) const {
  // One worker: everything lands on shard 0, and the header parse a
  // real flow hash would cost is pure dispatcher overhead.
  if (shards_.size() == 1) return 0;
  const auto hash = net::flow_shard_hash(frame);
  return hash ? static_cast<std::size_t>(*hash % shards_.size()) : 0;
}

PacketBatch& ShardedFlowEngine::pending_for(std::size_t shard_index,
                                            bool views) {
  PacketBatch* batch = pending_[shard_index];
  if (!batch->empty() && batch->has_views() != views) {
    dispatch(shard_index);
    batch = pending_[shard_index];
  }
  return *batch;
}

void ShardedFlowEngine::dispatch(std::size_t shard_index) {
  PacketBatch* batch = pending_[shard_index];
  if (batch == nullptr || batch->empty()) return;
  Shard& shard = *shards_[shard_index];
  if (!shard.inbound.try_push(batch)) {
    // Ring full: the worker is behind. Park until it drains a slot —
    // backpressure, never packet loss.
    ++backpressure_waits_;
    obs::inc(backpressure_counter_);
    shard.inbound.push(batch);
  }
  ++batches_dispatched_;
  obs::inc(batches_counter_);
  // Refill from the freelist. Arena sizing guarantees a recycled batch
  // is available once the push above has landed (see Shard's note), so
  // this pop returns without parking in practice.
  PacketBatch* fresh = nullptr;
  shard.freelist.pop(fresh);
  pending_[shard_index] = fresh;
}

void ShardedFlowEngine::feed(net::Packet packet) {
  packets_in_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(packet.data.size(), std::memory_order_relaxed);
  obs::inc(packets_in_counter_);
  if (config_.shards == 0) {
    process_batch(*shards_[0], &packet, 1);
    return;
  }
  const std::size_t index = shard_for(packet);
  pending_for(index, false).append(std::move(packet));
  if (pending_[index]->size() >= config_.dispatch_batch) dispatch(index);
}

void ShardedFlowEngine::ingest(const PacketBatch& batch) {
  if (batch.has_views()) {
    ingest_views(batch);
    return;
  }
  packets_in_.fetch_add(batch.size(), std::memory_order_relaxed);
  obs::inc(packets_in_counter_, batch.size());
  std::uint64_t bytes = 0;
  for (const net::Packet& packet : batch) bytes += packet.data.size();
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  if (config_.shards == 0) {
    // Inline mode analyzes straight out of the source's batch — the
    // fully zero-copy path (mmap page cache → TLS extractor).
    process_batch(*shards_[0], batch.begin(), batch.size());
    return;
  }
  // Sharded mode pays exactly one capacity-recycled copy per packet:
  // the batch's bytes are assigned into the shard's own slots, because
  // a borrowed batch only lives until the source's next read while the
  // worker drains asynchronously.
  for (const net::Packet& packet : batch) {
    const std::size_t index = shard_for(packet);
    pending_for(index, false).append(packet);
    if (pending_[index]->size() >= config_.dispatch_batch) dispatch(index);
  }
}

void ShardedFlowEngine::ingest_views(const PacketBatch& batch) {
  const net::PacketView* views = batch.views();
  const std::size_t count = batch.size();
  packets_in_.fetch_add(count, std::memory_order_relaxed);
  obs::inc(packets_in_counter_, count);
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < count; ++i) bytes += views[i].data.size();
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  if (config_.shards == 0) {
    // Inline mode: the fully zero-copy chain — mmap page cache (or the
    // caller's vector) straight into slab decode and reassembly.
    process_batch(*shards_[0], views, count);
    return;
  }
  // Sharded mode moves 24-byte view descriptors, never frame bytes:
  // the dispatcher hashes the 5-tuple out of the backing store and the
  // owning worker reads payloads from the same place.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index = shard_for(views[i].data);
    pending_for(index, true).append_view(views[i]);
    if (pending_[index]->size() >= config_.dispatch_batch) dispatch(index);
  }
}

void ShardedFlowEngine::ingest(PacketBatch&& batch) {
  net::Packet* slots = batch.mutable_slots();
  if (config_.shards == 0 || slots == nullptr || batch.has_views()) {
    // Inline mode analyzes in place anyway, and a borrowed batch does
    // not own its buffers — both take the copying overload.
    ingest(batch);
    return;
  }
  const std::size_t count = batch.size();
  packets_in_.fetch_add(count, std::memory_order_relaxed);
  obs::inc(packets_in_counter_, count);
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < count; ++i) bytes += slots[i].data.size();
  bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  // Owned batch, sharded mode: demux by swapping each slot's buffer
  // into the shard's pending batch — no byte copy. The emptied source
  // slot inherits the shard slot's previous capacity, so buffers
  // recycle in both directions and the steady state stays
  // allocation-free.
  for (std::size_t i = 0; i < count; ++i) {
    net::Packet& packet = slots[i];
    const std::size_t index = shard_for(packet);
    pending_[index]->append(std::move(packet));
    if (pending_[index]->size() >= config_.dispatch_batch) dispatch(index);
  }
  batch.clear();
}

void ShardedFlowEngine::flush_pending() {
  for (std::size_t i = 0; i < pending_.size(); ++i) dispatch(i);
}

std::size_t ShardedFlowEngine::consume(PacketSource& source) {
  const obs::StageTimer timer(config_.metrics, "engine.consume");
  std::size_t total = 0;
  PacketBatch batch;
  // Probe the zero-copy path once: a source that serves stable views
  // (mmap capture, in-memory vector) keeps serving them, so after a
  // nonzero first read we stay on read_views() to exhaustion and no
  // frame byte is ever copied between the backing store and the TLS
  // extractor. A first-call 0 means unsupported (or an already-empty
  // stream) — fall back to the slot-recycling read_batch() path.
  if (source.read_views(batch, config_.dispatch_batch) != 0) {
    do {
      total += batch.size();
      ingest(batch);  // view demux; read_views() clears before refilling
    } while (source.read_views(batch, config_.dispatch_batch) != 0);
    return total;
  }
  while (source.read_batch(batch, config_.dispatch_batch) != 0) {
    total += batch.size();
    ingest(std::move(batch));  // read_batch() clears before refilling
  }
  return total;
}

EngineResult ShardedFlowEngine::finish() {
  const obs::StageTimer timer(config_.metrics, "engine.finish");
  const bool first_finish = !finished_;
  if (first_finish && config_.shards > 0) {
    flush_pending();
    shutdown_workers();
  }
  finished_ = true;

  // End-of-capture flush: every live flow's outstanding reassembly
  // holes become gaps and the TLS parsers re-lock with relaxed
  // validation, so records cut off mid-capture still reach the
  // collector. Workers are joined (or never existed), so the feeding
  // thread owns every shard's analysis state here.
  if (first_finish) {
    for (auto& shard : shards_) {
      for (const tls::StreamEvent& stream_event : shard->extractor.flush()) {
        handle_event(*shard, stream_event);
      }
    }
  }

  EngineResult result;
  collector_->finalize(result);
  result.stats.shards = config_.shards;
  result.stats.packets_in = packets_in_.load(std::memory_order_relaxed);
  result.stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  result.stats.batches_dispatched = batches_dispatched_;
  result.stats.backpressure_waits = backpressure_waits_;
  for (const auto& shard : shards_) {
    result.stats.packets_undecodable += shard->extractor.packets_undecodable();
    result.stats.records += shard->records;
    result.stats.flows_opened += shard->extractor.flows_opened();
    result.stats.flows_evicted += shard->extractor.flows_evicted();
    result.stats.flows_completed += shard->extractor.flows_completed();
    result.stats.gaps += shard->extractor.gaps();
    result.stats.gap_bytes += shard->extractor.gap_bytes();
    result.stats.tls_resyncs += shard->extractor.tls_resyncs();
    result.stats.tls_skipped_bytes += shard->extractor.tls_bytes_skipped();
    result.stats.peak_active_flows += shard->extractor.peak_active_flows();
  }
  return result;
}

std::uint64_t ShardedFlowEngine::packets_in() const {
  return packets_in_.load(std::memory_order_relaxed);
}

EngineResult analyze(const core::RecordClassifier& classifier,
                     PacketSource& source, EngineConfig config,
                     EventSink* sink) {
  ShardedFlowEngine engine(classifier, config, sink);
  engine.consume(source);
  return engine.finish();
}

}  // namespace wm::engine
