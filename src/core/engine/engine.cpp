#include "wm/core/engine/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "wm/core/features.hpp"
#include "wm/net/flow.hpp"
#include "wm/tls/record_stream.hpp"

namespace wm::engine {

std::string EngineStats::to_string() const {
  std::ostringstream out;
  out << "shards=" << shards << " packets=" << packets_in
      << " records=" << records << " client_records=" << client_records
      << " type1=" << type1_records << " type2=" << type2_records
      << " viewers=" << viewers_seen << " flows=" << flows_opened
      << " evicted=" << flows_evicted << " peak_flows=" << peak_active_flows
      << " backpressure=" << backpressure_waits;
  return out.str();
}

namespace {

/// The deterministic observation order both the batch pipeline and the
/// engine decode in. Record length breaks timestamp ties so the result
/// is independent of which shard delivered an observation first; two
/// records equal in both fields classify identically, so any residual
/// tie is decode-neutral.
bool observation_before(const core::ClientRecordObservation& a,
                        const core::ClientRecordObservation& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.record_length < b.record_length;
}

std::string client_key(const net::FlowKey& flow) {
  return flow.client.is_v6 ? flow.client.v6.to_string()
                           : flow.client.v4.to_string();
}

}  // namespace

// --- Collector -------------------------------------------------------
//
// The only cross-shard state. Workers call on_record() once per
// *client application record* — orders of magnitude rarer than packets
// — so one mutex suffices; the packet hot path never reaches here.

class ShardedFlowEngine::Collector {
 public:
  Collector(const core::RecordClassifier& classifier, util::Duration gap,
            SessionSink sink, obs::Registry* metrics)
      : classifier_(classifier), gap_(gap), sink_(std::move(sink)) {
    if (metrics != nullptr) {
      client_records_counter_ = metrics->counter("engine.collector.client_records");
      type1_counter_ = metrics->counter("engine.collector.type1");
      type2_counter_ = metrics->counter("engine.collector.type2");
      other_counter_ = metrics->counter("engine.collector.other");
      viewers_counter_ = metrics->counter("engine.collector.viewers");
      sink_updates_counter_ = metrics->counter("engine.collector.sink_updates");
    }
  }

  void on_record(const std::string& client,
                 const core::ClientRecordObservation& observation,
                 core::RecordClass cls) {
    std::vector<core::ClientRecordObservation> snapshot;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto& observations = clients_[client];
      if (observations.empty()) obs::inc(viewers_counter_);
      observations.push_back(observation);
      ++client_records_;
      if (cls == core::RecordClass::kType1Json) ++type1_;
      if (cls == core::RecordClass::kType2Json) ++type2_;
      // Per-class counters before the total: a snapshot that reads the
      // total first (map order: "...client_records" < "...other" <
      // "...type1") then the parts can never see parts < total.
      switch (cls) {
        case core::RecordClass::kType1Json: obs::inc(type1_counter_); break;
        case core::RecordClass::kType2Json: obs::inc(type2_counter_); break;
        case core::RecordClass::kOther: obs::inc(other_counter_); break;
      }
      obs::inc(client_records_counter_);
      if (sink_ && cls != core::RecordClass::kOther) snapshot = observations;
    }
    if (snapshot.empty()) return;
    obs::inc(sink_updates_counter_);
    // Decode outside the lock; the snapshot is this viewer's few
    // hundred observations at most.
    std::sort(snapshot.begin(), snapshot.end(), observation_before);
    ViewerUpdate update;
    update.client = client;
    update.record_class = cls;
    update.record_length = observation.record_length;
    update.at = observation.timestamp;
    update.session = core::decode_choices(classifier_, snapshot, gap_);
    sink_(update);
  }

  /// Single-threaded (post-join). Sorting per viewer then decoding
  /// reproduces the batch pipeline's observation order exactly.
  void finalize(EngineResult& result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<core::ClientRecordObservation> all;
    for (auto& [client, observations] : clients_) {
      std::sort(observations.begin(), observations.end(), observation_before);
      result.per_client.emplace(
          client, core::decode_choices(classifier_, observations, gap_));
      all.insert(all.end(), observations.begin(), observations.end());
    }
    std::sort(all.begin(), all.end(), observation_before);
    result.combined = core::decode_choices(classifier_, all, gap_);
    result.stats.viewers_seen = clients_.size();
    result.stats.client_records = client_records_;
    result.stats.type1_records = type1_;
    result.stats.type2_records = type2_;
  }

 private:
  const core::RecordClassifier& classifier_;
  const util::Duration gap_;
  const SessionSink sink_;
  std::mutex mutex_;
  std::map<std::string, std::vector<core::ClientRecordObservation>> clients_;
  std::uint64_t client_records_ = 0;
  std::uint64_t type1_ = 0;
  std::uint64_t type2_ = 0;
  // Observability handles (null without a registry).
  obs::Counter* client_records_counter_ = nullptr;
  obs::Counter* type1_counter_ = nullptr;
  obs::Counter* type2_counter_ = nullptr;
  obs::Counter* other_counter_ = nullptr;
  obs::Counter* viewers_counter_ = nullptr;
  obs::Counter* sink_updates_counter_ = nullptr;
};

// --- Shard -----------------------------------------------------------

struct ShardedFlowEngine::Shard {
  explicit Shard(const tls::RecordStreamExtractor::Config& extractor_config)
      : extractor(extractor_config) {}

  // Queue half: shared between the feeding thread and the worker.
  std::mutex mutex;
  std::condition_variable can_push;
  std::condition_variable can_pop;
  std::deque<std::vector<net::Packet>> queue;
  bool closed = false;
  std::thread thread;

  // Analysis half: owned by the worker thread (or the feeding thread
  // in inline mode, or the joiner after shutdown) — never shared, so
  // the per-packet path is lock-free.
  tls::RecordStreamExtractor extractor;
  std::map<net::FlowKey, std::string> client_keys;
  std::uint64_t records = 0;
  std::uint64_t peak_active_flows = 0;
  /// Worker busy time per dequeued batch (null without a registry).
  obs::TimingSpan* work_span = nullptr;
};

ShardedFlowEngine::ShardedFlowEngine(const core::RecordClassifier& classifier,
                                     EngineConfig config, SessionSink sink)
    : classifier_(classifier),
      config_(config),
      collector_(std::make_unique<Collector>(classifier, config.min_question_gap,
                                             std::move(sink), config.metrics)) {
  tls::RecordStreamExtractor::Config extractor_config;
  extractor_config.retain_events = false;  // the collector is the memory
  extractor_config.idle_timeout = config_.flow_idle_timeout;

  if (config_.metrics != nullptr) {
    packets_in_counter_ = config_.metrics->counter("engine.packets_in");
    batches_counter_ =
        config_.metrics->counter("engine.batches", obs::Stability::kSharded);
    backpressure_counter_ = config_.metrics->counter(
        "engine.backpressure_waits", obs::Stability::kVolatile);
    config_.metrics
        ->counter("engine.shards_configured", obs::Stability::kSharded)
        ->add(config_.shards);
  }

  const std::size_t shard_count = std::max<std::size_t>(config_.shards, 1);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    if (config_.metrics != nullptr) {
      // Per-shard breakdowns are configuration-dependent; their sums
      // roll up under "engine." and stay invariant across shard counts
      // (every packet of a flow lands on exactly one shard).
      extractor_config.registry = config_.metrics;
      extractor_config.metrics_scope =
          "engine.shard[" + std::to_string(i) + "]";
      extractor_config.metrics_stability = obs::Stability::kSharded;
      extractor_config.metrics_rollup = "engine";
    }
    shards_.push_back(std::make_unique<Shard>(extractor_config));
    if (config_.metrics != nullptr) {
      shards_.back()->work_span = config_.metrics->timing(
          "engine.shard[" + std::to_string(i) + "].work");
    }
  }
  pending_.resize(shard_count);

  if (config_.shards > 0) {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->thread = std::thread([this, s] {
        for (;;) {
          std::vector<net::Packet> batch;
          {
            std::unique_lock<std::mutex> lock(s->mutex);
            s->can_pop.wait(lock, [s] { return s->closed || !s->queue.empty(); });
            if (s->queue.empty()) return;  // closed and drained
            batch = std::move(s->queue.front());
            s->queue.pop_front();
          }
          s->can_push.notify_one();
          const obs::StageTimer timer(s->work_span);
          for (const net::Packet& packet : batch) process(*s, packet);
        }
      });
    }
  }
}

ShardedFlowEngine::~ShardedFlowEngine() {
  if (!finished_ && config_.shards > 0) {
    for (auto& shard : shards_) {
      {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->closed = true;
      }
      shard->can_pop.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
}

void ShardedFlowEngine::process(Shard& shard, const net::Packet& packet) {
  for (const tls::StreamEvent& stream_event : shard.extractor.feed(packet)) {
    ++shard.records;
    const tls::RecordEvent& event = stream_event.event;
    if (!event.is_client_application_data()) continue;

    auto [it, inserted] =
        shard.client_keys.try_emplace(stream_event.flow, std::string());
    if (inserted) it->second = client_key(stream_event.flow);

    core::ClientRecordObservation observation;
    observation.timestamp = event.timestamp;
    observation.record_length = event.record_length;
    observation.flow_sni = shard.extractor.sni_of(stream_event.flow);
    collector_->on_record(it->second, observation,
                          classifier_.classify(event.record_length));
  }
  shard.peak_active_flows = std::max<std::uint64_t>(
      shard.peak_active_flows, shard.extractor.active_flows());
}

std::size_t ShardedFlowEngine::shard_for(const net::Packet& packet) const {
  const auto hash = net::flow_shard_hash(packet);
  return hash ? static_cast<std::size_t>(*hash % shards_.size()) : 0;
}

void ShardedFlowEngine::enqueue(std::size_t shard_index,
                                std::vector<net::Packet> batch) {
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.queue.size() >= config_.queue_capacity) {
      ++backpressure_waits_;
      obs::inc(backpressure_counter_);
      shard.can_push.wait(
          lock, [&] { return shard.queue.size() < config_.queue_capacity; });
    }
    shard.queue.push_back(std::move(batch));
  }
  shard.can_pop.notify_one();
  ++batches_dispatched_;
  obs::inc(batches_counter_);
}

void ShardedFlowEngine::feed(net::Packet packet) {
  packets_in_.fetch_add(1, std::memory_order_relaxed);
  obs::inc(packets_in_counter_);
  if (config_.shards == 0) {
    process(*shards_[0], packet);
    return;
  }
  const std::size_t index = shard_for(packet);
  std::vector<net::Packet>& batch = pending_[index];
  batch.push_back(std::move(packet));
  if (batch.size() >= config_.dispatch_batch) {
    std::vector<net::Packet> full;
    full.reserve(config_.dispatch_batch);
    std::swap(full, batch);
    enqueue(index, std::move(full));
  }
}

void ShardedFlowEngine::flush_pending() {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!pending_[i].empty()) {
      enqueue(i, std::move(pending_[i]));
      pending_[i] = {};
    }
  }
}

std::size_t ShardedFlowEngine::consume(PacketSource& source) {
  const obs::StageTimer timer(config_.metrics, "engine.consume");
  std::size_t total = 0;
  std::vector<net::Packet> buffer;
  buffer.reserve(config_.dispatch_batch);
  for (;;) {
    buffer.clear();
    if (source.read_batch(config_.dispatch_batch, buffer) == 0) break;
    total += buffer.size();
    for (net::Packet& packet : buffer) feed(std::move(packet));
  }
  return total;
}

EngineResult ShardedFlowEngine::finish() {
  const obs::StageTimer timer(config_.metrics, "engine.finish");
  if (config_.shards > 0 && !finished_) {
    flush_pending();
    for (auto& shard : shards_) {
      {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->closed = true;
      }
      shard->can_pop.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
  finished_ = true;

  EngineResult result;
  collector_->finalize(result);
  result.stats.shards = config_.shards;
  result.stats.packets_in = packets_in_.load(std::memory_order_relaxed);
  result.stats.batches_dispatched = batches_dispatched_;
  result.stats.backpressure_waits = backpressure_waits_;
  for (const auto& shard : shards_) {
    result.stats.packets_undecodable += shard->extractor.packets_undecodable();
    result.stats.records += shard->records;
    result.stats.flows_opened += shard->extractor.flows_opened();
    result.stats.flows_evicted += shard->extractor.flows_evicted();
    result.stats.peak_active_flows += shard->peak_active_flows;
  }
  return result;
}

std::uint64_t ShardedFlowEngine::packets_in() const {
  return packets_in_.load(std::memory_order_relaxed);
}

EngineResult analyze(const core::RecordClassifier& classifier,
                     PacketSource& source, EngineConfig config,
                     SessionSink sink) {
  ShardedFlowEngine engine(classifier, config, std::move(sink));
  engine.consume(source);
  return engine.finish();
}

}  // namespace wm::engine
