#include "wm/core/engine/source.hpp"

#include <algorithm>
#include <fstream>

#include "wm/net/checksum.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"

namespace wm::engine {

std::size_t PacketSource::read_batch(PacketBatch& out, std::size_t max) {
  out.clear();
  while (out.size() < max) {
    auto packet = next();
    if (!packet) break;
    out.append(std::move(*packet));
  }
  return out.size();
}

// --- VectorSource ----------------------------------------------------

std::optional<net::Packet> VectorSource::next() {
  if (index_ >= packets_->size()) return std::nullopt;
  if (packets_ == &owned_) return std::move(owned_[index_++]);
  return (*packets_)[index_++];
}

std::size_t VectorSource::read_batch(PacketBatch& out, std::size_t max) {
  out.clear();
  if (index_ >= packets_->size()) return 0;
  const std::size_t count = std::min(max, packets_->size() - index_);
  out.borrow(packets_->data() + index_, count);
  index_ += count;
  return count;
}

std::size_t VectorSource::read_views(PacketBatch& out, std::size_t max) {
  out.clear();
  if (index_ >= packets_->size()) return 0;
  const std::size_t count = std::min(max, packets_->size() - index_);
  for (std::size_t i = 0; i < count; ++i) {
    out.append_view(net::PacketView((*packets_)[index_ + i]));
  }
  index_ += count;
  return count;
}

// --- CaptureFileSource ----------------------------------------------

struct CaptureFileSource::Impl {
  // Exactly one reader is set, chosen by the file magic at open time.
  std::unique_ptr<net::PcapReader> pcap;
  std::unique_ptr<net::PcapngReader> pcapng;
  // Backing stream when the istream path was forced (allow_mmap off).
  std::unique_ptr<std::ifstream> stream;
  // Observability handles (null without a registry).
  obs::Counter* packets = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* errors = nullptr;

  std::optional<net::PacketView> next_view() {
    return pcap ? pcap->next_view() : pcapng->next_view();
  }
  [[nodiscard]] bool memory_mapped() const {
    return pcap ? pcap->memory_mapped() : pcapng->memory_mapped();
  }
};

CaptureFileSource::CaptureFileSource(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CaptureFileSource::~CaptureFileSource() = default;
CaptureFileSource::CaptureFileSource(CaptureFileSource&&) noexcept = default;
CaptureFileSource& CaptureFileSource::operator=(CaptureFileSource&&) noexcept =
    default;

bool CaptureFileSource::memory_mapped() const { return impl_->memory_mapped(); }

std::optional<net::Packet> CaptureFileSource::next() {
  if (error_) return std::nullopt;
  try {
    auto packet = impl_->pcap ? impl_->pcap->next() : impl_->pcapng->next();
    if (packet) {
      obs::inc(impl_->packets);
      obs::inc(impl_->bytes, packet->data.size());
    }
    return packet;
  } catch (const std::exception& e) {
    // A corrupt record ends the stream; what was already delivered
    // stays valid (a tap that dies mid-capture loses the tail only).
    error_ = Error{ErrorCode::kMalformedCapture, e.what()};
    obs::inc(impl_->errors);
    return std::nullopt;
  }
}

std::size_t CaptureFileSource::read_batch(PacketBatch& out, std::size_t max) {
  out.clear();
  if (error_) return 0;
  std::uint64_t bytes = 0;
  try {
    while (out.size() < max) {
      const auto view = impl_->next_view();
      if (!view) break;
      bytes += view->data.size();
      out.append(*view);
    }
  } catch (const std::exception& e) {
    error_ = Error{ErrorCode::kMalformedCapture, e.what()};
    obs::inc(impl_->errors);
  }
  // Metrics land once per batch, not once per packet; totals match the
  // next() path exactly.
  if (!out.empty()) {
    obs::inc(impl_->packets, out.size());
    obs::inc(impl_->bytes, bytes);
  }
  return out.size();
}

std::size_t CaptureFileSource::read_views(PacketBatch& out, std::size_t max) {
  out.clear();
  // Only the mmap readers yield views into storage that survives until
  // the source is destroyed; the istream readers reuse a staging buffer
  // per record, so they cannot honour read_views' lifetime contract.
  if (error_ || !impl_->memory_mapped()) return 0;
  std::uint64_t bytes = 0;
  try {
    while (out.size() < max) {
      const auto view = impl_->next_view();
      if (!view) break;
      bytes += view->data.size();
      out.append_view(*view);
    }
  } catch (const std::exception& e) {
    error_ = Error{ErrorCode::kMalformedCapture, e.what()};
    obs::inc(impl_->errors);
  }
  if (!out.empty()) {
    obs::inc(impl_->packets, out.size());
    obs::inc(impl_->bytes, bytes);
  }
  return out.size();
}

Result<std::unique_ptr<PacketSource>> open_capture(
    const std::filesystem::path& path, obs::Registry* metrics) {
  CaptureOptions options;
  options.metrics = metrics;
  return open_capture(path, options);
}

Result<std::unique_ptr<PacketSource>> open_capture(
    const std::filesystem::path& path, const CaptureOptions& options) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    return Error{ErrorCode::kNotFound, "cannot open " + path.string()};
  }
  std::uint8_t magic_bytes[4] = {0, 0, 0, 0};
  if (util::read_exact(probe, magic_bytes, 4) != 4) {
    return Error{ErrorCode::kUnsupportedFormat,
                 path.string() + " is too short to hold a capture-file magic"};
  }
  probe.close();

  // Assemble the magic in both byte orders; pcap files may be written
  // on either endianness, pcapng's SHB type is order-invariant.
  const std::uint32_t le = static_cast<std::uint32_t>(magic_bytes[0]) |
                           (static_cast<std::uint32_t>(magic_bytes[1]) << 8) |
                           (static_cast<std::uint32_t>(magic_bytes[2]) << 16) |
                           (static_cast<std::uint32_t>(magic_bytes[3]) << 24);
  const std::uint32_t be = static_cast<std::uint32_t>(magic_bytes[3]) |
                           (static_cast<std::uint32_t>(magic_bytes[2]) << 8) |
                           (static_cast<std::uint32_t>(magic_bytes[1]) << 16) |
                           (static_cast<std::uint32_t>(magic_bytes[0]) << 24);
  const bool is_pcapng =
      le == static_cast<std::uint32_t>(net::PcapngBlockType::kSectionHeader);
  const bool is_pcap = le == net::PcapFileHeader::kMagicMicros ||
                       le == net::PcapFileHeader::kMagicNanos ||
                       be == net::PcapFileHeader::kMagicMicros ||
                       be == net::PcapFileHeader::kMagicNanos;
  if (!is_pcapng && !is_pcap) {
    return Error{ErrorCode::kUnsupportedFormat,
                 path.string() + " has no pcap/pcapng magic"};
  }

  auto impl = std::make_unique<CaptureFileSource::Impl>();
  try {
    if (options.allow_mmap) {
      // Path constructors take the mmap fast path when the platform
      // allows and fall back to buffered streaming themselves.
      if (is_pcapng) {
        impl->pcapng = std::make_unique<net::PcapngReader>(path);
      } else {
        impl->pcap = std::make_unique<net::PcapReader>(path);
      }
    } else {
      // Forced streaming path: the readers' istream constructors never
      // map, so this is the oracle the mmap path is differenced against.
      impl->stream = std::make_unique<std::ifstream>(path, std::ios::binary);
      if (!*impl->stream) {
        return Error{ErrorCode::kNotFound, "cannot open " + path.string()};
      }
      if (is_pcapng) {
        impl->pcapng = std::make_unique<net::PcapngReader>(*impl->stream);
      } else {
        impl->pcap = std::make_unique<net::PcapReader>(*impl->stream);
      }
    }
  } catch (const std::exception& e) {
    return Error{ErrorCode::kMalformedCapture, e.what()};
  }
  if (options.metrics != nullptr) {
    impl->packets =
        options.metrics->counter("source.packets", obs::Stability::kStable);
    impl->bytes =
        options.metrics->counter("source.bytes", obs::Stability::kStable);
    impl->errors =
        options.metrics->counter("source.errors", obs::Stability::kStable);
    options.metrics
        ->counter(is_pcapng ? "source.format.pcapng" : "source.format.pcap",
                  obs::Stability::kStable)
        ->add(1);
    // Whether mmap engaged depends on the platform and open mode, not
    // on the packet stream — keep it out of the stable section.
    if (impl->memory_mapped()) {
      options.metrics->counter("source.mmap", obs::Stability::kSharded)->add(1);
    }
  }
  return std::unique_ptr<PacketSource>(
      new CaptureFileSource(std::move(impl)));
}

// --- ChunkedReplaySource --------------------------------------------

namespace {

/// RFC 1624 incremental checksum update for one changed 16-bit word.
void incremental_checksum_fix(std::uint8_t* checksum, std::uint16_t old_word,
                              std::uint16_t new_word) {
  std::uint32_t sum = static_cast<std::uint16_t>(
      ~((static_cast<std::uint16_t>(checksum[0]) << 8) | checksum[1]));
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  const std::uint16_t fixed = static_cast<std::uint16_t>(~sum);
  checksum[0] = static_cast<std::uint8_t>(fixed >> 8);
  checksum[1] = static_cast<std::uint8_t>(fixed & 0xff);
}

std::uint16_t word_at(const util::Bytes& data, std::size_t offset) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(data[offset]) << 8) |
                                    data[offset + 1]);
}

/// XOR `lap` into the second/third octet of both IPv4 addresses and
/// repair both checksums (IP header fully recomputed, TCP/UDP updated
/// incrementally through the pseudo-header delta). Leaves non-IPv4 and
/// VLAN-tagged frames untouched.
void rewrite_ipv4_lap(util::Bytes& data, std::uint16_t lap) {
  constexpr std::size_t kIp = 14;
  if (data.size() < kIp + 20) return;
  if (data[12] != 0x08 || data[13] != 0x00) return;
  const std::size_t header_len = static_cast<std::size_t>(data[kIp] & 0x0f) * 4;
  if (header_len < 20 || data.size() < kIp + header_len) return;

  const std::uint8_t protocol = data[kIp + 9];
  std::size_t transport_checksum = 0;
  const std::size_t transport = kIp + header_len;
  if (protocol == 6 && data.size() >= transport + 18) {
    transport_checksum = transport + 16;
  } else if (protocol == 17 && data.size() >= transport + 8 &&
             (data[transport + 6] != 0 || data[transport + 7] != 0)) {
    transport_checksum = transport + 6;  // zero means "no UDP checksum"
  }

  for (const std::size_t addr : {kIp + 12, kIp + 16}) {
    const std::uint16_t old_hi = word_at(data, addr);
    const std::uint16_t old_lo = word_at(data, addr + 2);
    data[addr + 1] ^= static_cast<std::uint8_t>(lap >> 8);
    data[addr + 2] ^= static_cast<std::uint8_t>(lap & 0xff);
    if (transport_checksum != 0) {
      incremental_checksum_fix(data.data() + transport_checksum, old_hi,
                               word_at(data, addr));
      incremental_checksum_fix(data.data() + transport_checksum, old_lo,
                               word_at(data, addr + 2));
    }
  }

  data[kIp + 10] = 0;
  data[kIp + 11] = 0;
  const std::uint16_t ip_checksum =
      net::internet_checksum(util::BytesView(data.data() + kIp, header_len));
  data[kIp + 10] = static_cast<std::uint8_t>(ip_checksum >> 8);
  data[kIp + 11] = static_cast<std::uint8_t>(ip_checksum & 0xff);
}

}  // namespace

ChunkedReplaySource::ChunkedReplaySource(std::vector<net::Packet> base,
                                         Config config)
    : base_(std::move(base)), config_(config) {
  util::SimTime last;
  for (const net::Packet& packet : base_) {
    last = std::max(last, packet.timestamp);
  }
  lap_span_ = (last - util::SimTime()) + config_.lap_gap;
}

std::optional<net::Packet> ChunkedReplaySource::next() {
  if (base_.empty()) return std::nullopt;
  if (index_ >= base_.size()) {
    ++lap_;
    index_ = 0;
  }
  if (lap_ >= config_.laps) return std::nullopt;

  net::Packet packet = base_[index_++];
  if (lap_ > 0) {
    packet.timestamp += lap_span_ * static_cast<std::int64_t>(lap_);
    if (config_.rewrite_addresses) {
      rewrite_ipv4_lap(packet.data, static_cast<std::uint16_t>(lap_));
    }
  }
  return packet;
}

std::size_t ChunkedReplaySource::read_batch(PacketBatch& out, std::size_t max) {
  out.clear();
  if (base_.empty()) return 0;
  if (index_ >= base_.size()) {
    ++lap_;
    index_ = 0;
  }
  if (lap_ >= config_.laps) return 0;

  // Batches never straddle a lap boundary; the next call rolls over.
  const std::size_t count = std::min(max, base_.size() - index_);
  if (lap_ == 0) {
    // First lap replays the base verbatim — borrow it outright.
    out.borrow(base_.data() + index_, count);
    index_ += count;
    return count;
  }
  const util::Duration shift = lap_span_ * static_cast<std::int64_t>(lap_);
  for (std::size_t i = 0; i < count; ++i) {
    net::Packet& slot = out.append(base_[index_ + i]);
    slot.timestamp += shift;
    if (config_.rewrite_addresses) {
      rewrite_ipv4_lap(slot.data, static_cast<std::uint16_t>(lap_));
    }
  }
  index_ += count;
  return count;
}

}  // namespace wm::engine
