#include "wm/core/behavior.hpp"

#include <algorithm>
#include <set>

#include "wm/util/strings.hpp"

namespace wm::core {

std::vector<TraitRule> default_trait_rules() {
  return {
      {"kill", "violence-affine"},
      {"chop", "violence-affine"},
      {"destroy", "destructive"},
      {"throw tea", "destructive"},
      {"lsd", "risk-taking"},
      {"jump", "self-harm-risk"},
      {"you jump", "self-harm-risk"},
      {"netflix", "meta-aware"},
      {"refuse", "independent"},
      {"accept", "conforming"},
      {"frosties", "brand:frosties"},
      {"sugar puffs", "brand:sugar-puffs"},
      {"thompson twins", "music:thompson-twins"},
      {"now 2", "music:now-2"},
      {"talk about mum", "trauma-open"},
  };
}

ViewerTraitProfile profile_viewer(const story::StoryGraph& graph,
                                  const std::vector<story::Choice>& choices,
                                  const std::vector<TraitRule>& rules) {
  ViewerTraitProfile profile;
  std::set<std::string> tags;

  story::SegmentId current = graph.start();
  std::size_t next_choice = 0;
  std::size_t non_default = 0;
  std::size_t steps = 0;
  const std::size_t step_limit = graph.segment_count() * (choices.size() + 2) + 16;

  while (current != story::kInvalidSegment && steps++ < step_limit) {
    const story::Segment& seg = graph.segment(current);
    if (seg.is_ending) {
      profile.ending = seg.name;
      break;
    }
    if (!seg.has_choice()) {
      current = seg.next;
      continue;
    }
    if (next_choice >= choices.size()) break;
    const story::Choice choice = choices[next_choice++];
    ++profile.questions;
    const std::string& label = choice == story::Choice::kDefault
                                   ? seg.choice->default_label
                                   : seg.choice->non_default_label;
    profile.picked_labels.push_back(label);
    if (choice == story::Choice::kNonDefault) ++non_default;

    const std::string lowered = util::to_lower(label);
    for (const TraitRule& rule : rules) {
      if (lowered.find(util::to_lower(rule.keyword)) != std::string::npos) {
        tags.insert(rule.tag);
      }
    }
    current = choice == story::Choice::kDefault ? seg.choice->default_next
                                                : seg.choice->non_default_next;
  }

  profile.exploration_rate =
      profile.questions == 0
          ? 0.0
          : static_cast<double>(non_default) / static_cast<double>(profile.questions);
  profile.tags.assign(tags.begin(), tags.end());
  return profile;
}

void CohortBehaviorReport::add(const ViewerTraitProfile& profile,
                               const std::vector<std::string>& group_keys) {
  for (const std::string& key : group_keys) {
    Group& group = groups[key];
    // Streaming mean update.
    group.mean_exploration =
        (group.mean_exploration * static_cast<double>(group.viewers) +
         profile.exploration_rate) /
        static_cast<double>(group.viewers + 1);
    ++group.viewers;
    for (const std::string& tag : profile.tags) {
      ++group.tag_counts[tag];
    }
  }
}

}  // namespace wm::core
