#include "wm/core/pipeline.hpp"

namespace wm::core {

AttackPipeline::AttackPipeline(std::string classifier_name)
    : classifier_(make_classifier(classifier_name)) {}

void AttackPipeline::calibrate(const std::vector<CalibrationSession>& sessions) {
  const obs::StageTimer timer(metrics_, "pipeline.calibrate");
  std::vector<LabeledObservation> labelled;
  for (const CalibrationSession& session : sessions) {
    const auto observations = extract_client_records(session.packets);
    auto session_labels = label_observations(observations, session.truth);
    labelled.insert(labelled.end(),
                    std::make_move_iterator(session_labels.begin()),
                    std::make_move_iterator(session_labels.end()));
  }
  if (metrics_ != nullptr) {
    metrics_->counter("pipeline.calibration.sessions", obs::Stability::kStable)->add(sessions.size());
    metrics_->counter("pipeline.calibration.observations", obs::Stability::kStable)->add(labelled.size());
  }
  classifier_->fit(labelled);
}

void AttackPipeline::calibrate(const std::vector<LabeledObservation>& labelled) {
  classifier_->fit(labelled);
}

bool AttackPipeline::calibrated() const { return classifier_->fitted(); }

InferReport AttackPipeline::infer(engine::PacketSource& source,
                                  const InferOptions& options) const {
  obs::Registry* registry =
      options.metrics != nullptr ? options.metrics : metrics_;
  const obs::StageTimer timer(registry, "pipeline.infer");

  engine::EngineConfig config;
  config.shards = options.shards;
  config.min_question_gap = options.min_question_gap;
  config.flow_idle_timeout = options.flow_idle_timeout;
  config.reassembly = options.reassembly;
  config.metrics = registry;
  engine::EngineResult result =
      engine::analyze(*classifier_, source, config, options.sink);

  InferReport report;
  report.combined = std::move(result.combined);
  report.stats = result.stats;
  // A mid-stream source failure (truncated record, corrupt framing) is
  // a data-quality fact, not a control-flow event: count it and keep
  // everything that decoded before the stream died.
  if (source.error()) {
    ++report.stats.source_errors;
    if (registry != nullptr) {
      registry->counter("pipeline.source_errors", obs::Stability::kStable)->add(1);
    }
  }
  if (options.per_client) {
    for (auto& [client, session] : result.per_client) {
      // Only report clients that look like interactive-video viewers.
      if (session.questions.empty()) continue;
      report.per_client.emplace(client, std::move(session));
    }
  }
  if (options.story != nullptr) {
    report.path = reconstruct_path(*options.story, report.combined.choices());
  }

  if (registry != nullptr) {
    registry->counter("pipeline.infer.runs", obs::Stability::kStable)->add(1);
    registry->counter("pipeline.questions", obs::Stability::kStable)
        ->add(report.combined.questions.size());
    std::uint64_t non_default = 0;
    for (const auto& question : report.combined.questions) {
      if (question.choice == story::Choice::kNonDefault) ++non_default;
    }
    registry->counter("pipeline.choices.non_default", obs::Stability::kStable)->add(non_default);
    registry->counter("pipeline.choices.default", obs::Stability::kStable)
        ->add(report.combined.questions.size() - non_default);
    registry->counter("pipeline.viewers.reported", obs::Stability::kStable)
        ->add(report.per_client.size());
    if (report.path) {
      registry->counter("pipeline.paths.reconstructed", obs::Stability::kStable)->add(1);
    }
  }
  return report;
}

Result<InferReport> AttackPipeline::infer_capture(
    const std::filesystem::path& path, const InferOptions& options) const {
  auto source = engine::open_capture(
      path, options.metrics != nullptr ? options.metrics : metrics_);
  if (!source.ok()) return source.error();
  InferReport report = infer(**source, options);
  // A corrupt tail surfaces after the stream ends, not as an exception.
  if (const auto& error = (*source)->error()) return *error;
  return report;
}

}  // namespace wm::core
