#include "wm/core/pipeline.hpp"

#include "wm/net/pcapng.hpp"

namespace wm::core {

AttackPipeline::AttackPipeline(std::string classifier_name)
    : classifier_(make_classifier(classifier_name)) {}

void AttackPipeline::calibrate(const std::vector<CalibrationSession>& sessions) {
  std::vector<LabeledObservation> labelled;
  for (const CalibrationSession& session : sessions) {
    const auto observations = extract_client_records(session.packets);
    auto session_labels = label_observations(observations, session.truth);
    labelled.insert(labelled.end(),
                    std::make_move_iterator(session_labels.begin()),
                    std::make_move_iterator(session_labels.end()));
  }
  classifier_->fit(labelled);
}

void AttackPipeline::calibrate(const std::vector<LabeledObservation>& labelled) {
  classifier_->fit(labelled);
}

bool AttackPipeline::calibrated() const { return classifier_->fitted(); }

InferredSession AttackPipeline::infer(const std::vector<net::Packet>& packets) const {
  return decode_choices(*classifier_, extract_client_records(packets));
}

InferredSession AttackPipeline::infer_pcap(const std::filesystem::path& path) const {
  // Accepts classic pcap or pcapng; the reader dispatches on the magic.
  return infer(net::read_any_capture(path));
}

std::map<std::string, InferredSession> AttackPipeline::infer_per_client(
    const std::vector<net::Packet>& packets) const {
  const auto streams = tls::extract_record_streams(packets);

  // Bucket streams by client endpoint address (ignoring the port: each
  // viewer owns several connections).
  std::map<std::string, std::vector<tls::FlowRecordStream>> by_client;
  for (const tls::FlowRecordStream& stream : streams) {
    const std::string key = stream.flow.client.is_v6
                                ? stream.flow.client.v6.to_string()
                                : stream.flow.client.v4.to_string();
    by_client[key].push_back(stream);
  }

  std::map<std::string, InferredSession> out;
  for (const auto& [client, client_streams] : by_client) {
    InferredSession session =
        decode_choices(*classifier_, extract_client_records(client_streams));
    // Only report clients that look like interactive-video viewers.
    if (session.questions.empty()) continue;
    out.emplace(client, std::move(session));
  }
  return out;
}

}  // namespace wm::core
