#include "wm/core/features.hpp"

#include <algorithm>
#include <cmath>

namespace wm::core {

std::string to_string(RecordClass cls) {
  switch (cls) {
    case RecordClass::kType1Json: return "type-1 JSON";
    case RecordClass::kType2Json: return "type-2 JSON";
    case RecordClass::kOther: return "others";
  }
  return "?";
}

std::vector<ClientRecordObservation> extract_client_records(
    const std::vector<tls::FlowRecordStream>& streams) {
  std::vector<ClientRecordObservation> out;
  for (const tls::FlowRecordStream& stream : streams) {
    for (const tls::RecordEvent& event : stream.events) {
      if (!event.is_client_application_data()) continue;
      ClientRecordObservation obs;
      obs.timestamp = event.timestamp;
      obs.record_length = event.record_length;
      obs.flow_sni = stream.sni;
      out.push_back(std::move(obs));
    }
  }
  // Record length breaks timestamp ties so the order (and therefore
  // the decode) is deterministic and matches the streaming engine's
  // collector, whose observations arrive in shard order.
  std::sort(out.begin(), out.end(),
            [](const ClientRecordObservation& a, const ClientRecordObservation& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.record_length < b.record_length;
            });
  return out;
}

std::vector<ClientRecordObservation> extract_client_records(
    const std::vector<net::Packet>& packets) {
  return extract_client_records(tls::extract_record_streams(packets));
}

std::vector<LabeledObservation> label_observations(
    const std::vector<ClientRecordObservation>& observations,
    const sim::SessionGroundTruth& truth, util::Duration tolerance) {
  std::vector<LabeledObservation> out;
  out.reserve(observations.size());
  for (const ClientRecordObservation& obs : observations) {
    out.push_back(LabeledObservation{obs, RecordClass::kOther});
  }

  // An upload may be carried by several back-to-back records (e.g. when
  // a record-splitting countermeasure is active). Labelling targets the
  // LAST record of the micro-burst nearest the noted time: for a
  // single-record upload that is the record itself; for a split upload
  // it is the tail fragment — the record whose length still varies with
  // the payload and therefore carries the signal.
  const util::Duration burst_gap = util::Duration::millis(5);
  auto claim_burst_tail = [&](util::SimTime target, RecordClass label) {
    std::size_t best = out.size();
    std::int64_t best_distance = tolerance.total_nanos();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].label != RecordClass::kOther) continue;  // already claimed
      const std::int64_t distance =
          std::abs((out[i].observation.timestamp - target).total_nanos());
      if (distance <= best_distance) {
        best = i;
        best_distance = distance;
      }
    }
    if (best >= out.size()) return;
    std::size_t tail = best;
    while (tail + 1 < out.size() && out[tail + 1].label == RecordClass::kOther &&
           out[tail + 1].observation.timestamp - out[tail].observation.timestamp <=
               burst_gap) {
      ++tail;
    }
    out[tail].label = label;
  };

  for (const sim::QuestionOutcome& q : truth.questions) {
    claim_burst_tail(q.question_time, RecordClass::kType1Json);
    if (q.choice == story::Choice::kNonDefault) {
      claim_burst_tail(q.decision_time, RecordClass::kType2Json);
    }
  }
  return out;
}

}  // namespace wm::core
