#include "wm/core/eval.hpp"

#include <algorithm>

namespace wm::core {

SessionScore score_session(const sim::SessionGroundTruth& truth,
                           const InferredSession& inferred) {
  SessionScore score;
  score.questions_truth = truth.questions.size();
  score.questions_inferred = inferred.questions.size();
  score.question_count_match =
      score.questions_truth == score.questions_inferred;

  const std::size_t aligned =
      std::min(score.questions_truth, score.questions_inferred);
  for (std::size_t i = 0; i < aligned; ++i) {
    if (truth.questions[i].choice == inferred.questions[i].choice) {
      ++score.choices_correct;
    }
  }
  score.choice_accuracy =
      score.questions_truth == 0
          ? 1.0
          : static_cast<double>(score.choices_correct) /
                static_cast<double>(score.questions_truth);
  return score;
}

AggregateScore aggregate_scores(const std::vector<SessionScore>& scores) {
  AggregateScore out;
  out.sessions = scores.size();
  double accuracy_sum = 0.0;
  for (const SessionScore& score : scores) {
    out.questions += score.questions_truth;
    out.correct += score.choices_correct;
    accuracy_sum += score.choice_accuracy;
    out.worst_accuracy = std::min(out.worst_accuracy, score.choice_accuracy);
  }
  out.mean_accuracy = scores.empty() ? 1.0 : accuracy_sum / static_cast<double>(scores.size());
  out.pooled_accuracy =
      out.questions == 0
          ? 1.0
          : static_cast<double>(out.correct) / static_cast<double>(out.questions);
  if (scores.empty()) out.worst_accuracy = 1.0;
  return out;
}

}  // namespace wm::core
