#include "wm/core/decoder.hpp"

#include <algorithm>

namespace wm::core {

std::vector<story::Choice> InferredSession::choices() const {
  std::vector<story::Choice> out;
  out.reserve(questions.size());
  for (const InferredQuestion& q : questions) out.push_back(q.choice);
  return out;
}

namespace {

/// Lower a question's confidence (min-combine) and record why.
void taint(InferredQuestion& question, double confidence, const char* tag) {
  question.confidence = std::min(question.confidence, confidence);
  if (!question.evidence.empty()) question.evidence += ';';
  question.evidence += tag;
}

/// Any gap strictly after `after` (or anywhere, when unset) and at or
/// before `until`? `gaps` must be sorted by time.
bool gap_between(const std::vector<GapSpan>& gaps,
                 std::optional<util::SimTime> after, util::SimTime until) {
  for (const GapSpan& gap : gaps) {
    if (gap.at > until) break;
    if (!after || gap.at > *after) return true;
  }
  return false;
}

}  // namespace

InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    const DecodeOptions& options) {
  InferredSession out;
  std::vector<GapSpan> gaps = options.gaps;
  std::sort(gaps.begin(), gaps.end(), [](const GapSpan& a, const GapSpan& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.bytes < b.bytes;
  });

  std::optional<util::SimTime> last_type1;
  // The last time a question was created (by a real type-1 *or* by a
  // synthesized orphan). Separate from last_type1 so synthesis never
  // feeds the duplicate-suppression window.
  std::optional<util::SimTime> last_anchor;

  for (const ClientRecordObservation& obs : observations) {
    const RecordClass cls = classifier.classify(obs.record_length);
    switch (cls) {
      case RecordClass::kType1Json: {
        ++out.type1_records;
        // Suppress duplicates (retransmission artifacts).
        if (last_type1 && obs.timestamp - *last_type1 < options.min_question_gap) break;
        last_type1 = obs.timestamp;
        last_anchor = obs.timestamp;
        InferredQuestion question;
        question.index = out.questions.size() + 1;
        question.question_time = obs.timestamp;
        question.choice = story::Choice::kDefault;  // until a type-2 shows
        if (obs.after_gap) {
          taint(question, options.after_gap_confidence, "type1_after_gap");
        }
        out.questions.push_back(std::move(question));
        break;
      }
      case RecordClass::kType2Json: {
        ++out.type2_records;
        const bool hole_since_anchor =
            gap_between(gaps, last_anchor, obs.timestamp);
        if (hole_since_anchor || (out.questions.empty() && obs.after_gap)) {
          // A hole sits between the last question anchor and this
          // override: the type-1 that should anchor it was presumably
          // lost in the gap. Synthesize the question at low confidence
          // rather than crediting the override to the previous question
          // at full strength.
          InferredQuestion question;
          question.index = out.questions.size() + 1;
          question.question_time = obs.timestamp;
          question.choice = story::Choice::kNonDefault;
          question.override_time = obs.timestamp;
          taint(question, options.after_gap_confidence,
                "type2_presumed_lost_type1");
          out.questions.push_back(std::move(question));
          last_anchor = obs.timestamp;
          break;
        }
        if (out.questions.empty()) break;  // stray; nothing to attach to
        InferredQuestion& current = out.questions.back();
        // Only the first override of a question counts.
        if (current.choice == story::Choice::kDefault) {
          current.choice = story::Choice::kNonDefault;
          current.override_time = obs.timestamp;
          if (obs.after_gap) {
            taint(current, options.after_gap_confidence, "type2_after_gap");
          }
        }
        break;
      }
      case RecordClass::kOther:
        ++out.other_records;
        break;
    }
  }

  // Post-pass: a gap shortly before a question appeared, or anywhere
  // before the next question, may have swallowed one of its markers
  // (most importantly a lost override) — cap the confidence.
  for (std::size_t i = 0; i < out.questions.size(); ++i) {
    InferredQuestion& question = out.questions[i];
    const util::SimTime start = question.question_time - options.gap_window;
    for (const GapSpan& gap : gaps) {
      if (gap.at < start) continue;
      if (i + 1 < out.questions.size() &&
          gap.at >= out.questions[i + 1].question_time) {
        break;
      }
      taint(question, options.gap_window_confidence, "gap_in_window");
      break;
    }
  }
  return out;
}

InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    util::Duration min_question_gap) {
  DecodeOptions options;
  options.min_question_gap = min_question_gap;
  return decode_choices(classifier, observations, options);
}

InferredPath reconstruct_path(const story::StoryGraph& graph,
                              const std::vector<story::Choice>& choices) {
  InferredPath out;
  const story::StoryGraph::Traversal traversal = graph.traverse(choices);
  out.segments = traversal.path;
  out.segment_names.reserve(traversal.path.size());
  for (story::SegmentId id : traversal.path) {
    out.segment_names.push_back(graph.segment(id).name);
  }
  out.reached_ending = traversal.reached_ending;
  out.choice_surplus = static_cast<std::int64_t>(choices.size()) -
                       static_cast<std::int64_t>(traversal.choices_consumed);
  return out;
}

}  // namespace wm::core
