#include "wm/core/decoder.hpp"

namespace wm::core {

std::vector<story::Choice> InferredSession::choices() const {
  std::vector<story::Choice> out;
  out.reserve(questions.size());
  for (const InferredQuestion& q : questions) out.push_back(q.choice);
  return out;
}

InferredSession decode_choices(
    const RecordClassifier& classifier,
    const std::vector<ClientRecordObservation>& observations,
    util::Duration min_question_gap) {
  InferredSession out;
  std::optional<util::SimTime> last_type1;

  for (const ClientRecordObservation& obs : observations) {
    const RecordClass cls = classifier.classify(obs.record_length);
    switch (cls) {
      case RecordClass::kType1Json: {
        ++out.type1_records;
        // Suppress duplicates (retransmission artifacts).
        if (last_type1 && obs.timestamp - *last_type1 < min_question_gap) break;
        last_type1 = obs.timestamp;
        InferredQuestion question;
        question.index = out.questions.size() + 1;
        question.question_time = obs.timestamp;
        question.choice = story::Choice::kDefault;  // until a type-2 shows
        out.questions.push_back(question);
        break;
      }
      case RecordClass::kType2Json: {
        ++out.type2_records;
        if (out.questions.empty()) break;  // stray; nothing to attach to
        InferredQuestion& current = out.questions.back();
        // Only the first override of a question counts.
        if (current.choice == story::Choice::kDefault) {
          current.choice = story::Choice::kNonDefault;
          current.override_time = obs.timestamp;
        }
        break;
      }
      case RecordClass::kOther:
        ++out.other_records;
        break;
    }
  }
  return out;
}

InferredPath reconstruct_path(const story::StoryGraph& graph,
                              const std::vector<story::Choice>& choices) {
  InferredPath out;
  const story::StoryGraph::Traversal traversal = graph.traverse(choices);
  out.segments = traversal.path;
  out.segment_names.reserve(traversal.path.size());
  for (story::SegmentId id : traversal.path) {
    out.segment_names.push_back(graph.segment(id).name);
  }
  out.reached_ending = traversal.reached_ending;
  out.choice_surplus = static_cast<std::int64_t>(choices.size()) -
                       static_cast<std::int64_t>(traversal.choices_consumed);
  return out;
}

}  // namespace wm::core
