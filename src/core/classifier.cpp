#include "wm/core/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace wm::core {

namespace {

util::IntHistogram histogram_of(const std::vector<LabeledObservation>& calibration,
                                RecordClass cls) {
  util::IntHistogram hist;
  for (const LabeledObservation& item : calibration) {
    if (item.label == cls) hist.add(item.observation.record_length);
  }
  return hist;
}

}  // namespace

void IntervalClassifier::fit(const std::vector<LabeledObservation>& calibration) {
  const util::IntHistogram type1 = histogram_of(calibration, RecordClass::kType1Json);
  const util::IntHistogram type2 = histogram_of(calibration, RecordClass::kType2Json);
  const auto band1 = util::covering_interval(type1);
  const auto band2 = util::covering_interval(type2);
  if (!band1) {
    throw std::invalid_argument(
        "IntervalClassifier::fit: no type-1 JSON calibration examples");
  }
  if (!band2) {
    throw std::invalid_argument(
        "IntervalClassifier::fit: no type-2 JSON calibration examples");
  }
  // Adaptive guard: a finite calibration set underestimates the true
  // band (the covering interval of n uniform samples over width w has
  // expected width w(n-1)/(n+1)), so widen proportionally to the
  // observed width, never less than the fixed guard.
  const auto widen = [this](const util::IntInterval& band) {
    const std::int64_t width = band.hi - band.lo + 1;
    const std::int64_t guard = std::max(guard_, width / 3);
    return util::IntInterval{band.lo - guard, band.hi + guard};
  };
  type1_ = widen(*band1);
  type2_ = widen(*band2);
  bands_overlap_ = type1_.overlaps(type2_);
  fitted_ = true;
}

RecordClass IntervalClassifier::classify(std::uint16_t record_length) const {
  if (!fitted_) throw std::logic_error("IntervalClassifier: classify before fit");
  const std::int64_t length = record_length;
  const bool in1 = type1_.contains(length);
  const bool in2 = type2_.contains(length);
  if (in1 && in2) return RecordClass::kOther;  // contested -> abstain
  if (in1) return RecordClass::kType1Json;
  if (in2) return RecordClass::kType2Json;
  return RecordClass::kOther;
}

void KnnClassifier::fit(const std::vector<LabeledObservation>& calibration) {
  points_.clear();
  points_.reserve(calibration.size());
  for (const LabeledObservation& item : calibration) {
    points_.emplace_back(item.observation.record_length, item.label);
  }
  if (points_.empty()) {
    throw std::invalid_argument("KnnClassifier::fit: empty calibration set");
  }
  std::sort(points_.begin(), points_.end());
}

RecordClass KnnClassifier::classify(std::uint16_t record_length) const {
  if (points_.empty()) throw std::logic_error("KnnClassifier: classify before fit");
  const std::int64_t target = record_length;

  // Two-pointer expansion around the insertion point.
  const auto first_geq = std::lower_bound(
      points_.begin(), points_.end(), std::make_pair(target, RecordClass::kType1Json),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ptrdiff_t left = (first_geq - points_.begin()) - 1;
  std::ptrdiff_t right = first_geq - points_.begin();

  std::array<std::size_t, kRecordClassCount> votes{};
  for (std::size_t taken = 0; taken < k_ && (left >= 0 || right < static_cast<std::ptrdiff_t>(points_.size()));
       ++taken) {
    const std::int64_t left_dist =
        left >= 0 ? target - points_[static_cast<std::size_t>(left)].first
                  : std::numeric_limits<std::int64_t>::max();
    const std::int64_t right_dist =
        right < static_cast<std::ptrdiff_t>(points_.size())
            ? points_[static_cast<std::size_t>(right)].first - target
            : std::numeric_limits<std::int64_t>::max();
    if (left_dist <= right_dist) {
      ++votes[static_cast<std::size_t>(points_[static_cast<std::size_t>(left)].second)];
      --left;
    } else {
      ++votes[static_cast<std::size_t>(points_[static_cast<std::size_t>(right)].second)];
      ++right;
    }
  }

  // Majority vote; ties resolve to kOther (conservative).
  std::size_t best = static_cast<std::size_t>(RecordClass::kOther);
  for (std::size_t cls = 0; cls < kRecordClassCount; ++cls) {
    if (votes[cls] > votes[best]) best = cls;
  }
  return static_cast<RecordClass>(best);
}

void GaussianNbClassifier::fit(const std::vector<LabeledObservation>& calibration) {
  if (calibration.empty()) {
    throw std::invalid_argument("GaussianNbClassifier::fit: empty calibration set");
  }
  std::array<util::RunningStats, kRecordClassCount> acc{};
  for (const LabeledObservation& item : calibration) {
    acc[static_cast<std::size_t>(item.label)].add(item.observation.record_length);
  }
  const double total = static_cast<double>(calibration.size());
  for (std::size_t cls = 0; cls < kRecordClassCount; ++cls) {
    ClassStats& s = stats_[cls];
    s.present = acc[cls].count() > 0;
    if (!s.present) continue;
    s.mean = acc[cls].mean();
    // Variance floor keeps near-constant bands from degenerating.
    s.variance = std::max(acc[cls].variance(), 1.5);
    s.log_prior = std::log(static_cast<double>(acc[cls].count()) / total);
  }
  fitted_ = true;
}

RecordClass GaussianNbClassifier::classify(std::uint16_t record_length) const {
  if (!fitted_) throw std::logic_error("GaussianNbClassifier: classify before fit");
  const double x = record_length;
  double best_score = -std::numeric_limits<double>::infinity();
  RecordClass best = RecordClass::kOther;
  for (std::size_t cls = 0; cls < kRecordClassCount; ++cls) {
    const ClassStats& s = stats_[cls];
    if (!s.present) continue;
    const double delta = x - s.mean;
    const double score = s.log_prior -
                         0.5 * std::log(2.0 * std::numbers::pi * s.variance) -
                         delta * delta / (2.0 * s.variance);
    if (score > best_score) {
      best_score = score;
      best = static_cast<RecordClass>(cls);
    }
  }
  return best;
}

std::unique_ptr<RecordClassifier> make_classifier(const std::string& name) {
  if (name == "interval") return std::make_unique<IntervalClassifier>();
  if (name == "knn") return std::make_unique<KnnClassifier>();
  if (name == "gaussian-nb") return std::make_unique<GaussianNbClassifier>();
  throw std::invalid_argument("make_classifier: unknown classifier '" + name + "'");
}

util::ConfusionMatrix evaluate_classifier(
    const RecordClassifier& classifier,
    const std::vector<LabeledObservation>& labelled) {
  util::ConfusionMatrix matrix({"type-1", "type-2", "others"});
  for (const LabeledObservation& item : labelled) {
    matrix.add(static_cast<std::size_t>(item.label),
               static_cast<std::size_t>(
                   classifier.classify(item.observation.record_length)));
  }
  return matrix;
}

}  // namespace wm::core
