#include "wm/core/bitrate_baseline.hpp"

#include <cmath>
#include <stdexcept>

#include "wm/util/stats.hpp"

namespace wm::core {

std::vector<BitrateWindow> extract_bitrate_windows(
    const std::vector<net::Packet>& packets,
    const std::vector<util::SimTime>& question_times, util::Duration window) {
  std::vector<BitrateWindow> out;
  out.reserve(question_times.size());

  // Collect (time, downstream payload bytes) pairs once.
  std::vector<std::pair<util::SimTime, std::size_t>> downstream;
  downstream.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    const auto decoded = net::decode_packet(packet);
    if (!decoded || !decoded->has_tcp()) continue;
    // Downstream = from port 443.
    if (decoded->tcp().source_port != 443) continue;
    if (decoded->transport_payload.empty()) continue;
    downstream.emplace_back(packet.timestamp, decoded->transport_payload.size());
  }

  for (util::SimTime question : question_times) {
    BitrateWindow w;
    w.window_start = question;
    const util::SimTime end = question + window;
    for (const auto& [t, bytes] : downstream) {
      if (t >= question && t < end) {
        w.bytes_in_window += static_cast<double>(bytes);
      }
    }
    const double seconds = window.to_seconds();
    w.mean_throughput_bps = seconds > 0.0 ? w.bytes_in_window * 8.0 / seconds : 0.0;
    out.push_back(w);
  }
  return out;
}

void BitrateBaseline::fit(const std::vector<Calibration>& sessions) {
  util::RunningStats default_stats;
  util::RunningStats non_default_stats;

  for (const Calibration& session : sessions) {
    std::vector<util::SimTime> question_times;
    question_times.reserve(session.truth.questions.size());
    for (const sim::QuestionOutcome& q : session.truth.questions) {
      question_times.push_back(q.question_time);
    }
    const auto windows =
        extract_bitrate_windows(session.packets, question_times, window_);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (session.truth.questions[i].choice == story::Choice::kDefault) {
        default_stats.add(windows[i].bytes_in_window);
      } else {
        non_default_stats.add(windows[i].bytes_in_window);
      }
    }
  }

  if (default_stats.count() == 0 || non_default_stats.count() == 0) {
    throw std::invalid_argument(
        "BitrateBaseline::fit: calibration lacks one of the classes");
  }
  default_mean_ = default_stats.mean();
  non_default_mean_ = non_default_stats.mean();
  fitted_ = true;
}

std::vector<story::Choice> BitrateBaseline::predict(
    const std::vector<net::Packet>& packets,
    const std::vector<util::SimTime>& question_times) const {
  if (!fitted_) throw std::logic_error("BitrateBaseline: predict before fit");
  const auto windows = extract_bitrate_windows(packets, question_times, window_);
  std::vector<story::Choice> out;
  out.reserve(windows.size());
  for (const BitrateWindow& w : windows) {
    const double to_default = std::abs(w.bytes_in_window - default_mean_);
    const double to_non_default = std::abs(w.bytes_in_window - non_default_mean_);
    out.push_back(to_default <= to_non_default ? story::Choice::kDefault
                                               : story::Choice::kNonDefault);
  }
  return out;
}

}  // namespace wm::core
