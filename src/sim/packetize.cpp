#include "wm/sim/packetize.hpp"

#include <algorithm>

#include "wm/tls/record.hpp"
#include "wm/tls/session.hpp"

namespace wm::sim {

using net::FlowDirection;
using net::Packet;
using net::TcpConnectionBuilder;
using net::TcpEndpointConfig;
using util::Duration;
using util::SimTime;

namespace {

net::MacAddress mac_from(std::uint64_t tag) {
  std::array<std::uint8_t, 6> octets{};
  octets[0] = 0x02;  // locally administered
  for (std::size_t i = 1; i < 6; ++i) {
    octets[i] = static_cast<std::uint8_t>((tag >> (8 * (5 - i))) & 0xff);
  }
  return net::MacAddress(octets);
}

/// One TLS-over-TCP connection being synthesized.
class SimulatedConnection {
 public:
  SimulatedConnection(const PacketizeConfig& config, NetworkModel& network,
                      net::Ipv4Address server_ip, std::uint16_t client_port,
                      tls::TlsSessionConfig tls_config, std::uint16_t mss,
                      util::Rng& rng)
      : network_(network),
        rng_(rng),
        session_(std::move(tls_config), rng.fork()),
        builder_(
            TcpEndpointConfig{mac_from(0x0a0b0c01), config.client_ip, client_port,
                              1000 + static_cast<std::uint32_t>(rng.next_below(1u << 20)),
                              mss, 65535},
            TcpEndpointConfig{mac_from(0x0a0b0c02), server_ip, 443,
                              5000 + static_cast<std::uint32_t>(rng.next_below(1u << 20)),
                              mss, 65535}) {}

  /// TCP + TLS handshakes starting at `t`; returns time when the
  /// connection is ready for application data.
  SimTime establish(SimTime t) {
    const Duration rtt = network_.sample_one_way_delay() * 2.0;
    builder_.handshake(t, rtt);
    SimTime cursor = t + rtt;
    cursor = send_records(FlowDirection::kClientToServer, cursor,
                          session_.client_hello_flight());
    cursor += network_.sample_one_way_delay();
    cursor = send_records(FlowDirection::kServerToClient, cursor,
                          session_.server_hello_flight());
    cursor += network_.sample_one_way_delay();
    cursor = send_records(FlowDirection::kClientToServer, cursor,
                          session_.client_finished_flight());
    return cursor + network_.sample_one_way_delay();
  }

  /// Seal and transmit one application payload. Returns the timestamp
  /// after the last emitted segment.
  SimTime send_application(FlowDirection direction, SimTime t,
                           std::size_t plaintext_size) {
    return send_records(direction, t,
                        session_.seal_application_data(plaintext_size));
  }

  void close(SimTime t) {
    send_records(FlowDirection::kClientToServer, t, {session_.close_notify()});
    builder_.close(t + Duration::millis(2), network_.sample_one_way_delay() * 2.0);
  }

  [[nodiscard]] std::vector<Packet> take_packets() { return builder_.take_packets(); }
  [[nodiscard]] std::size_t retransmits() const { return retransmits_; }

 private:
  SimTime send_records(FlowDirection direction, SimTime t,
                       const std::vector<tls::TlsRecord>& records) {
    const util::Bytes bytes = tls::serialize_records(records);
    const std::size_t first_packet = builder_.packets().size();
    // Pace segments at the link's serialization rate.
    const Duration gap = network_.transmission_time(1500);
    builder_.send(direction, t, bytes, gap);
    const std::size_t emitted = builder_.packets().size() - first_packet;

    // Occasional visible retransmission of one segment in the batch.
    if (emitted > 0 && network_.lose_segment()) {
      const std::size_t victim =
          first_packet + static_cast<std::size_t>(rng_.next_below(emitted));
      const SimTime when = builder_.packets().back().timestamp +
                           network_.sample_one_way_delay() * 3.0;
      builder_.retransmit(victim, when);
      ++retransmits_;
    }

    const SimTime last = builder_.packets().back().timestamp;
    // Peer acknowledges the batch.
    builder_.ack(direction == FlowDirection::kClientToServer
                     ? FlowDirection::kServerToClient
                     : FlowDirection::kClientToServer,
                 last + network_.sample_one_way_delay());
    return last + Duration::micros(50);
  }

  NetworkModel& network_;
  util::Rng& rng_;
  tls::TlsSession session_;
  TcpConnectionBuilder builder_;
  std::size_t retransmits_ = 0;
};

}  // namespace

SessionCapture packetize(const AppTrace& trace, const TrafficProfile& profile,
                         const PacketizeConfig& config, util::Rng& rng) {
  SessionCapture capture;
  capture.client_ip = config.client_ip;
  capture.cdn_ip = config.cdn_ip;
  capture.api_ip = config.api_ip;
  capture.cdn_sni = profile.tls.sni;
  capture.api_sni = "www.netflix.com";

  NetworkModel network(NetworkModel::params_for(profile.conditions), rng.fork());

  tls::TlsSessionConfig cdn_tls = profile.tls;
  tls::TlsSessionConfig api_tls = profile.tls;
  api_tls.sni = capture.api_sni;
  if (config.api_tls13_pad_to > 0 && tls::is_tls13_suite(api_tls.suite)) {
    api_tls.tls13_pad_to = config.api_tls13_pad_to;
  }

  SimulatedConnection cdn(config, network, config.cdn_ip, config.cdn_client_port,
                          cdn_tls, profile.mss, rng);
  SimulatedConnection api(config, network, config.api_ip, config.api_client_port,
                          api_tls, profile.mss, rng);

  // Bring both connections up before the first application event.
  SimTime ready = cdn.establish(SimTime::from_seconds(0.02));
  ready = std::max(ready, api.establish(SimTime::from_seconds(0.09)));

  SimTime last_event_time = ready;
  for (const AppEvent& event : trace.events) {
    const SimTime t = std::max(event.time, ready);
    last_event_time = std::max(last_event_time, t);
    SimulatedConnection& conn = event.flow == AppFlow::kCdn ? cdn : api;

    if (event.from_client) {
      std::vector<std::size_t> sizes{event.plaintext_size};
      if (config.client_transform && event.flow == AppFlow::kApi) {
        sizes = config.client_transform(event.client_kind, event.plaintext_size);
      }
      SimTime cursor = t;
      for (std::size_t size : sizes) {
        if (size == 0) continue;
        cursor = conn.send_application(FlowDirection::kClientToServer, cursor, size);
        cursor += Duration::micros(200);
      }
      last_event_time = std::max(last_event_time, cursor);
    } else {
      const SimTime arrival = t + network.sample_one_way_delay();
      const SimTime done = conn.send_application(FlowDirection::kServerToClient,
                                                 arrival, event.plaintext_size);
      last_event_time = std::max(last_event_time, done);
    }
  }

  cdn.close(last_event_time + Duration::millis(500));
  api.close(last_event_time + Duration::millis(520));

  std::vector<Packet> packets = cdn.take_packets();
  {
    std::vector<Packet> api_packets = api.take_packets();
    packets.insert(packets.end(), std::make_move_iterator(api_packets.begin()),
                   std::make_move_iterator(api_packets.end()));
  }
  capture.retransmitted_segments = cdn.retransmits() + api.retransmits();

  // Background flows.
  if (config.include_cross_traffic) {
    util::Rng cross_rng = rng.fork();
    const auto plan = make_cross_traffic_plan(profile.conditions.traffic, cross_rng);
    capture.cross_traffic_flows = plan.size();
    std::uint16_t port = 52000;
    std::uint8_t host_octet = 40;
    for (const CrossTrafficFlowSpec& spec : plan) {
      tls::TlsSessionConfig tls_config;
      tls_config.suite = tls::CipherSuite::kTlsAes128GcmSha256;
      tls_config.sni = spec.sni;
      PacketizeConfig sub = config;
      SimulatedConnection conn(sub, network,
                               net::Ipv4Address(104, 16, 32, host_octet++), port++,
                               tls_config, profile.mss, cross_rng);
      SimTime t = conn.establish(
          SimTime::from_seconds(0.2 + cross_rng.uniform(0.0, 2.0)));
      for (std::size_t i = 0; i < spec.request_count; ++i) {
        t = conn.send_application(FlowDirection::kClientToServer, t,
                                  spec.request_size);
        t = conn.send_application(FlowDirection::kServerToClient,
                                  t + network.sample_one_way_delay(),
                                  spec.response_size);
        t += spec.spacing;
      }
      conn.close(t);
      std::vector<Packet> cross_packets = conn.take_packets();
      packets.insert(packets.end(), std::make_move_iterator(cross_packets.begin()),
                     std::make_move_iterator(cross_packets.end()));
    }
  }

  // Mild capture-order perturbation of server packets, then global sort.
  if (config.reorder_jitter_ms > 0.0) {
    util::Rng jitter_rng = rng.fork();
    for (Packet& packet : packets) {
      const double jitter =
          jitter_rng.normal(0.0, config.reorder_jitter_ms / 1000.0);
      const auto decoded = net::decode_packet(packet);
      if (decoded && decoded->has_ipv4() &&
          decoded->ipv4().source != config.client_ip) {
        const std::int64_t adjusted =
            packet.timestamp.nanos() +
            static_cast<std::int64_t>(jitter * 1e9);
        packet.timestamp = SimTime::from_nanos(std::max<std::int64_t>(adjusted, 0));
      }
    }
  }

  std::stable_sort(packets.begin(), packets.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  capture.packets = std::move(packets);
  return capture;
}

}  // namespace wm::sim
