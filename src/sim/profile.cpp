#include "wm/sim/profile.hpp"

#include <stdexcept>

#include "wm/util/strings.hpp"

namespace wm::sim {

std::string to_string(OperatingSystem value) {
  switch (value) {
    case OperatingSystem::kWindows: return "Windows";
    case OperatingSystem::kLinux: return "Linux";
    case OperatingSystem::kMac: return "Mac";
  }
  return "?";
}

std::string to_string(Platform value) {
  switch (value) {
    case Platform::kDesktop: return "Desktop";
    case Platform::kLaptop: return "Laptop";
  }
  return "?";
}

std::string to_string(TrafficCondition value) {
  switch (value) {
    case TrafficCondition::kMorning: return "Morning";
    case TrafficCondition::kNoon: return "Noon";
    case TrafficCondition::kNight: return "Night";
  }
  return "?";
}

std::string to_string(ConnectionType value) {
  switch (value) {
    case ConnectionType::kWired: return "Wired";
    case ConnectionType::kWireless: return "Wireless";
  }
  return "?";
}

std::string to_string(Browser value) {
  switch (value) {
    case Browser::kChrome: return "Google-chrome";
    case Browser::kFirefox: return "Firefox";
  }
  return "?";
}

std::string OperationalConditions::to_string() const {
  return "(" + sim::to_string(platform) + ", " + sim::to_string(browser) + ", " +
         (connection == ConnectionType::kWired ? "Ethernet" : "WiFi") + ", " +
         sim::to_string(os) + ", " + sim::to_string(traffic) + ")";
}

std::vector<OperationalConditions> all_operational_conditions() {
  std::vector<OperationalConditions> out;
  for (auto os : {OperatingSystem::kWindows, OperatingSystem::kLinux,
                  OperatingSystem::kMac}) {
    for (auto platform : {Platform::kDesktop, Platform::kLaptop}) {
      for (auto traffic : {TrafficCondition::kMorning, TrafficCondition::kNoon,
                           TrafficCondition::kNight}) {
        for (auto connection : {ConnectionType::kWired, ConnectionType::kWireless}) {
          for (auto browser : {Browser::kChrome, Browser::kFirefox}) {
            out.push_back({os, platform, traffic, connection, browser});
          }
        }
      }
    }
  }
  return out;
}

std::string to_string(ClientMessageKind kind) {
  switch (kind) {
    case ClientMessageKind::kType1Json: return "type-1 JSON";
    case ClientMessageKind::kType2Json: return "type-2 JSON";
    case ClientMessageKind::kChunkRequest: return "chunk request";
    case ClientMessageKind::kTelemetry: return "telemetry";
    case ClientMessageKind::kLogBatch: return "log batch";
    case ClientMessageKind::kDecoyUpload: return "decoy upload";
  }
  return "?";
}

std::size_t TrafficProfile::sample_plaintext(ClientMessageKind kind,
                                             util::Rng& rng) const {
  switch (kind) {
    case ClientMessageKind::kType1Json: return type1_plaintext.sample(rng);
    case ClientMessageKind::kType2Json: return type2_plaintext.sample(rng);
    case ClientMessageKind::kChunkRequest:
      return chunk_request_plaintext.sample(rng);
    case ClientMessageKind::kTelemetry: return telemetry_plaintext.sample(rng);
    case ClientMessageKind::kLogBatch: return log_batch_plaintext.sample(rng);
    case ClientMessageKind::kDecoyUpload:
      // Indistinguishable from a genuine override upload by design.
      return type2_plaintext.sample(rng);
  }
  throw std::logic_error("sample_plaintext: unknown kind");
}

std::pair<std::size_t, std::size_t> TrafficProfile::sealed_band(
    ClientMessageKind kind) const {
  const SizeBand* band = nullptr;
  switch (kind) {
    case ClientMessageKind::kType1Json: band = &type1_plaintext; break;
    case ClientMessageKind::kType2Json: band = &type2_plaintext; break;
    case ClientMessageKind::kChunkRequest: band = &chunk_request_plaintext; break;
    case ClientMessageKind::kTelemetry: band = &telemetry_plaintext; break;
    case ClientMessageKind::kLogBatch: band = &log_batch_plaintext; break;
    case ClientMessageKind::kDecoyUpload: band = &type2_plaintext; break;
  }
  const tls::CipherModel cipher(tls.suite, tls.tls13_pad_to);
  return {cipher.seal_size(band->base), cipher.seal_size(band->max())};
}

TrafficProfile make_traffic_profile(const OperationalConditions& conditions) {
  TrafficProfile profile;
  profile.conditions = conditions;

  // --- State-JSON plaintext sizes -----------------------------------
  // The JSON schema is fixed; the OS and browser contribute different
  // user-agent / platform / capability strings, shifting the size by a
  // per-combination constant. Calibrated so that with the Firefox TLS
  // 1.2 AES-256-GCM stack (record = plaintext + 24) the sealed bands
  // reproduce Fig. 2:
  //   Linux/Firefox:   type-1 2211-2213, type-2 2992-3017
  //   Windows/Firefox: type-1 2341-2343, type-2 3118-3147
  std::size_t type1_os_delta = 0;
  std::size_t type2_os_delta = 0;
  std::size_t type2_os_spread = 25;
  switch (conditions.os) {
    case OperatingSystem::kLinux:
      break;
    case OperatingSystem::kWindows:
      type1_os_delta = 130;
      type2_os_delta = 126;
      type2_os_spread = 29;
      break;
    case OperatingSystem::kMac:
      type1_os_delta = 64;
      type2_os_delta = 58;
      type2_os_spread = 27;
      break;
  }
  const std::size_t browser_delta =
      conditions.browser == Browser::kChrome ? 41 : 0;

  profile.type1_plaintext = SizeBand{2187 + type1_os_delta + browser_delta, 2};
  profile.type2_plaintext =
      SizeBand{2968 + type2_os_delta + browser_delta, type2_os_spread};

  // --- Other client messages ----------------------------------------
  // Chunk requests: HTTP range GETs, a few hundred bytes.
  profile.chunk_request_plaintext = SizeBand{380, 320};
  // Telemetry reports: sit between the type-1 band and the type-2 band,
  // leaving the guard gaps visible in Fig. 2 (8 bytes above type-1,
  // ~170 below type-2).
  const std::size_t telemetry_base = profile.type1_plaintext.max() + 6;
  const std::size_t telemetry_ceiling = profile.type2_plaintext.base - 170;
  profile.telemetry_plaintext =
      SizeBand{telemetry_base, telemetry_ceiling - telemetry_base};
  // Log batches: large, always above every JSON band (>= 4334 sealed in
  // the Linux/Firefox condition).
  profile.log_batch_plaintext = SizeBand{4310, 2200};

  // --- TLS stack ------------------------------------------------------
  profile.tls.sni = "occ-0-2433-2430.1.nflxvideo.net";
  profile.tls.alpn = {"h2", "http/1.1"};
  if (conditions.browser == Browser::kChrome) {
    // Chrome negotiates TLS 1.3 (record = plaintext + 17, no padding).
    profile.tls.suite = tls::CipherSuite::kTlsAes128GcmSha256;
    profile.tls.record_version = 0x0303;
  } else {
    // Firefox against this CDN host: TLS 1.2 ECDHE AES-256-GCM
    // (record = plaintext + 24).
    profile.tls.suite = tls::CipherSuite::kTlsEcdheRsaAes256GcmSha384;
    profile.tls.record_version = 0x0303;
  }
  profile.tls.certificate_chain_size = 4208;

  // --- Transport ------------------------------------------------------
  profile.mss = conditions.connection == ConnectionType::kWired ? 1448 : 1412;

  // Telemetry cadence is a player property, not an OS property.
  profile.telemetry_period_seconds = 15.0;
  profile.log_batch_probability = 0.12;

  return profile;
}

}  // namespace wm::sim
