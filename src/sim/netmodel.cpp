#include "wm/sim/netmodel.hpp"

#include <algorithm>

namespace wm::sim {

NetworkModel::Params NetworkModel::params_for(
    const OperationalConditions& conditions) {
  Params params;
  if (conditions.connection == ConnectionType::kWireless) {
    params.base_rtt = util::Duration::millis(26);
    params.jitter_stddev = util::Duration::millis(6);
    params.loss_rate = 0.004;
    params.bandwidth_mbps = 60.0;
  } else {
    params.base_rtt = util::Duration::millis(14);
    params.jitter_stddev = util::Duration::millis(1);
    params.loss_rate = 0.0003;
    params.bandwidth_mbps = 150.0;
  }
  switch (conditions.traffic) {
    case TrafficCondition::kMorning: params.load_factor = 1.15; break;
    case TrafficCondition::kNoon: params.load_factor = 1.0; break;
    case TrafficCondition::kNight: params.load_factor = 1.45; break;
  }
  return params;
}

NetworkModel::NetworkModel(Params params, util::Rng rng)
    : params_(params), rng_(rng) {}

util::Duration NetworkModel::sample_one_way_delay() {
  const double half_rtt_s = params_.base_rtt.to_seconds() / 2.0;
  const double jitter_s =
      rng_.normal(0.0, params_.jitter_stddev.to_seconds() * params_.load_factor);
  const double delay_s = std::max(half_rtt_s * params_.load_factor + jitter_s,
                                  half_rtt_s * 0.5);
  return util::Duration::from_seconds(delay_s);
}

bool NetworkModel::lose_segment() {
  return rng_.bernoulli(params_.loss_rate * params_.load_factor);
}

util::Duration NetworkModel::transmission_time(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (params_.bandwidth_mbps * 1e6) *
      params_.load_factor;
  return util::Duration::from_seconds(seconds);
}

std::vector<CrossTrafficFlowSpec> make_cross_traffic_plan(TrafficCondition condition,
                                                          util::Rng& rng) {
  static const std::vector<std::string> kHosts = {
      "www.wikipedia.org",     "fonts.gstatic.com",     "cdn.sstatic.net",
      "api.github.com",        "static.xx.fbcdn.net",   "www.google-analytics.com",
      "updates.push.services.mozilla.com", "mail.example.org",
  };

  std::size_t flow_count = 2;
  switch (condition) {
    case TrafficCondition::kMorning: flow_count = 3; break;
    case TrafficCondition::kNoon: flow_count = 2; break;
    case TrafficCondition::kNight: flow_count = 5; break;
  }
  flow_count += static_cast<std::size_t>(rng.next_below(2));

  std::vector<CrossTrafficFlowSpec> out;
  out.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    CrossTrafficFlowSpec spec;
    spec.sni = kHosts[static_cast<std::size_t>(rng.next_below(kHosts.size()))];
    spec.request_count = 3 + static_cast<std::size_t>(rng.next_below(8));
    spec.request_size = 300 + static_cast<std::size_t>(rng.next_below(900));
    spec.response_size = 8'000 + static_cast<std::size_t>(rng.next_below(120'000));
    spec.spacing = util::Duration::millis(
        300 + static_cast<std::int64_t>(rng.next_below(1500)));
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace wm::sim
