#include "wm/sim/impairments.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "wm/net/flow.hpp"

namespace wm::sim {

std::vector<net::Packet> drop_packets(const std::vector<net::Packet>& packets,
                                      double loss_rate, util::Rng& rng) {
  std::vector<net::Packet> out;
  out.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    if (rng.bernoulli(loss_rate)) continue;
    out.push_back(packet);
  }
  return out;
}

namespace {

/// A condemned run of 32-bit sequence space on one directional stream.
struct SeqRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  // exclusive
};

}  // namespace

std::vector<net::Packet> drop_segments(const std::vector<net::Packet>& packets,
                                       double loss_rate, util::Rng& rng) {
  std::vector<net::Packet> out;
  out.reserve(packets.size());
  // Condemned byte ranges per directional stream ("src > dst"). The
  // simulated captures never wrap the 32-bit sequence space, so plain
  // interval overlap suffices.
  std::map<std::string, std::vector<SeqRange>> condemned;
  for (const net::Packet& packet : packets) {
    const auto decoded = net::decode_packet(packet);
    if (!decoded || !decoded->has_tcp() || decoded->transport_payload.empty()) {
      out.push_back(packet);
      continue;
    }
    const auto endpoints = net::packet_endpoints(*decoded);
    if (!endpoints) {
      out.push_back(packet);
      continue;
    }
    const std::string key =
        endpoints->source.to_string() + '>' + endpoints->destination.to_string();
    const std::uint32_t seq = decoded->tcp().sequence;
    const std::uint32_t len = static_cast<std::uint32_t>(
        decoded->transport_payload.size() + decoded->transport_payload_missing);
    auto& ranges = condemned[key];
    const bool retransmits_condemned_bytes =
        std::any_of(ranges.begin(), ranges.end(), [&](const SeqRange& r) {
          return seq < r.end && r.begin < seq + len;
        });
    if (retransmits_condemned_bytes) continue;
    if (rng.bernoulli(loss_rate)) {
      ranges.push_back(SeqRange{seq, seq + len});
      continue;
    }
    out.push_back(packet);
  }
  return out;
}

std::vector<net::Packet> truncate_snaplen(const std::vector<net::Packet>& packets,
                                          std::size_t snaplen) {
  std::vector<net::Packet> out;
  out.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    net::Packet copy = packet;
    if (copy.data.size() > snaplen) {
      copy.original_length = std::max(copy.original_length, copy.data.size());
      copy.data.resize(snaplen);
    }
    out.push_back(std::move(copy));
  }
  return out;
}

std::vector<net::Packet> jitter_order(const std::vector<net::Packet>& packets,
                                      double jitter_seconds, util::Rng& rng) {
  std::vector<net::Packet> out = packets;
  for (net::Packet& packet : out) {
    const double shift = rng.normal(0.0, jitter_seconds);
    const std::int64_t adjusted =
        packet.timestamp.nanos() + static_cast<std::int64_t>(shift * 1e9);
    packet.timestamp = util::SimTime::from_nanos(std::max<std::int64_t>(adjusted, 0));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

}  // namespace wm::sim
