#include "wm/sim/impairments.hpp"

#include <algorithm>

namespace wm::sim {

std::vector<net::Packet> drop_packets(const std::vector<net::Packet>& packets,
                                      double loss_rate, util::Rng& rng) {
  std::vector<net::Packet> out;
  out.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    if (rng.bernoulli(loss_rate)) continue;
    out.push_back(packet);
  }
  return out;
}

std::vector<net::Packet> truncate_snaplen(const std::vector<net::Packet>& packets,
                                          std::size_t snaplen) {
  std::vector<net::Packet> out;
  out.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    net::Packet copy = packet;
    if (copy.data.size() > snaplen) {
      copy.original_length = std::max(copy.original_length, copy.data.size());
      copy.data.resize(snaplen);
    }
    out.push_back(std::move(copy));
  }
  return out;
}

std::vector<net::Packet> jitter_order(const std::vector<net::Packet>& packets,
                                      double jitter_seconds, util::Rng& rng) {
  std::vector<net::Packet> out = packets;
  for (net::Packet& packet : out) {
    const double shift = rng.normal(0.0, jitter_seconds);
    const std::int64_t adjusted =
        packet.timestamp.nanos() + static_cast<std::int64_t>(shift * 1e9);
    packet.timestamp = util::SimTime::from_nanos(std::max<std::int64_t>(adjusted, 0));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

}  // namespace wm::sim
