#include "wm/sim/session.hpp"

namespace wm::sim {

SessionResult simulate_session(const story::StoryGraph& graph,
                               const std::vector<story::Choice>& choices,
                               const SessionConfig& config) {
  util::Rng rng(config.seed);
  SessionResult result;
  result.profile = make_traffic_profile(config.conditions);

  util::Rng trace_rng = rng.fork();
  AppTrace trace = simulate_app_trace(graph, choices, result.profile,
                                      config.streaming, trace_rng);
  result.truth = trace.truth;
  result.session_length = trace.session_length;

  util::Rng wire_rng = rng.fork();
  result.capture = packetize(trace, result.profile, config.packetize, wire_rng);
  return result;
}

}  // namespace wm::sim
