#include "wm/sim/http.hpp"

#include "wm/util/strings.hpp"

namespace wm::sim {

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::size_t HttpRequest::serialized_size() const { return serialize().size(); }

namespace {

std::string opaque_token(util::Rng& rng, std::size_t length) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.next_below(64)]);
  }
  return out;
}

/// Grow a designated padding header until the request hits target_size.
void pad_request_to(HttpRequest& request, const std::string& header,
                    std::size_t target_size) {
  const std::size_t base = request.serialized_size();
  if (target_size <= base) return;
  std::size_t deficit = target_size - base;
  // Adding the header itself costs "name: \r\n" + value.
  const std::size_t envelope = header.size() + 4;
  if (request.headers.count(header) == 0) {
    if (deficit <= envelope) return;  // cannot hit exactly; stay under
    deficit -= envelope;
  }
  std::string filler(deficit, 'x');
  for (std::size_t i = 0; i < filler.size(); ++i) {
    filler[i] = static_cast<char>('a' + (i * 13 + deficit) % 26);
  }
  request.headers[header] = std::move(filler);
}

}  // namespace

HttpRequest make_chunk_request(std::string_view host, std::string_view segment_name,
                               std::size_t chunk_index, std::uint64_t byte_offset,
                               std::size_t chunk_bytes, std::size_t target_size,
                               util::Rng& rng) {
  HttpRequest request;
  request.method = "GET";
  request.target = util::format("/range/%llu-%llu?o=AQ&v=5&e=171&t=%s",
                                static_cast<unsigned long long>(byte_offset),
                                static_cast<unsigned long long>(byte_offset +
                                                                chunk_bytes - 1),
                                opaque_token(rng, 24).c_str());
  request.headers["Host"] = std::string(host);
  request.headers["Accept"] = "*/*";
  request.headers["Accept-Encoding"] = "identity";
  request.headers["Connection"] = "keep-alive";
  request.headers["X-Playback-Session-Id"] = opaque_token(rng, 36);
  request.headers["X-Segment"] =
      util::format("%s/%zu", std::string(segment_name).c_str(), chunk_index);
  pad_request_to(request, "Cookie", target_size);
  return request;
}

HttpRequest make_state_post(std::string_view host, std::string_view json_body,
                            std::size_t target_size) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/ichnaea/log";
  request.headers["Host"] = std::string(host);
  request.headers["Content-Type"] = "application/json";
  request.headers["Accept"] = "application/json";
  request.headers["Connection"] = "keep-alive";
  request.body.assign(json_body.begin(), json_body.end());
  request.headers["Content-Length"] = std::to_string(request.body.size());
  pad_request_to(request, "Cookie", target_size);
  return request;
}

std::optional<HttpRequest> parse_http_request(std::string_view text) {
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) return std::nullopt;

  HttpRequest request;
  const auto lines = util::split(text.substr(0, header_end), '\n');
  if (lines.empty()) return std::nullopt;

  // Request line: METHOD SP TARGET SP VERSION\r
  std::string_view first = util::trim(lines[0]);
  const auto sp1 = first.find(' ');
  const auto sp2 = first.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;
  request.method = std::string(first.substr(0, sp1));
  request.target = std::string(first.substr(sp1 + 1, sp2 - sp1 - 1));
  if (!util::starts_with(first.substr(sp2 + 1), "HTTP/")) return std::nullopt;

  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = util::trim(lines[i]);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    request.headers[std::string(util::trim(line.substr(0, colon)))] =
        std::string(util::trim(line.substr(colon + 1)));
  }
  request.body = std::string(text.substr(header_end + 4));
  return request;
}

}  // namespace wm::sim
