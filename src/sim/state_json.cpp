#include "wm/sim/state_json.hpp"

#include "wm/util/strings.hpp"

namespace wm::sim {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

namespace {

std::string hex_token(util::Rng& rng, std::size_t length) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kDigits[rng.next_below(16)]);
  }
  return out;
}

/// Shared envelope of both state types.
JsonObject base_envelope(const PlaybackIdentity& identity, util::SimTime position) {
  JsonObject root;
  root["version"] = JsonValue(2);
  root["esn"] = JsonValue(identity.esn);
  root["profileGuid"] = JsonValue(identity.profile_guid);
  root["movieId"] = JsonValue(static_cast<std::int64_t>(identity.movie_id));
  root["sessionId"] = JsonValue(static_cast<std::int64_t>(identity.session_id));
  root["positionMs"] = JsonValue(position.nanos() / 1'000'000);
  root["trackingInfo"] = JsonValue(JsonObject{
      {"uiVersion", JsonValue("shakti-v1a2b3c4")},
      {"playbackContext", JsonValue("interactive")},
  });
  return root;
}

/// Pad the document's "impressionData" member (an opaque base64-ish
/// blob in the real player) so the compact serialization hits
/// target_size exactly when attainable.
JsonValue pad_to_size(JsonObject root, std::size_t target_size) {
  // Insert an empty impressionData, then grow it by the deficit.
  root["impressionData"] = JsonValue(std::string());
  JsonValue document(std::move(root));
  const std::size_t base = document.dump().size();
  if (target_size > base) {
    const std::size_t deficit = target_size - base;
    std::string filler(deficit, 'A');
    // Deterministic non-uniform content so the blob looks like data.
    for (std::size_t i = 0; i < filler.size(); ++i) {
      filler[i] = static_cast<char>('A' + (i * 31 + deficit) % 26);
    }
    document.as_object()["impressionData"] = JsonValue(std::move(filler));
  }
  return document;
}

}  // namespace

PlaybackIdentity PlaybackIdentity::sample(util::Rng& rng) {
  PlaybackIdentity identity;
  identity.session_id = rng.next_u64() >> 1;
  identity.esn = "NFCDIE-03-" + hex_token(rng, 24);
  identity.profile_guid = hex_token(rng, 32);
  return identity;
}

JsonValue make_type1_state(const PlaybackIdentity& identity,
                           std::size_t question_index,
                           const std::string& segment_name, util::SimTime position,
                           std::size_t target_size) {
  JsonObject root = base_envelope(identity, position);
  root["event"] = JsonValue("interactiveStateSnapshot");
  root["momentType"] = JsonValue("scene:cs_bs");  // choice-point moment
  root["questionIndex"] = JsonValue(static_cast<std::int64_t>(question_index));
  root["segment"] = JsonValue(segment_name);
  root["choiceWindowMs"] = JsonValue(10'000);
  return pad_to_size(std::move(root), target_size);
}

JsonValue make_type2_state(const PlaybackIdentity& identity,
                           std::size_t question_index,
                           const std::string& chosen_label,
                           const std::string& next_segment, util::SimTime position,
                           std::size_t target_size) {
  JsonObject root = base_envelope(identity, position);
  root["event"] = JsonValue("interactiveChoiceOverride");
  root["momentType"] = JsonValue("notification:playbackImpression");
  root["questionIndex"] = JsonValue(static_cast<std::int64_t>(question_index));
  root["choice"] = JsonValue(JsonObject{
      {"label", JsonValue(chosen_label)},
      {"isDefault", JsonValue(false)},
      {"nextSegment", JsonValue(next_segment)},
  });
  root["discardedPrefetch"] = JsonValue(true);
  return pad_to_size(std::move(root), target_size);
}

std::string serialize_state(const JsonValue& state) { return state.dump(); }

std::size_t serialized_size(const JsonValue& state) { return state.dump().size(); }

}  // namespace wm::sim
