#include "wm/sim/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "wm/sim/http.hpp"
#include "wm/sim/netmodel.hpp"
#include "wm/sim/state_json.hpp"
#include "wm/util/strings.hpp"

namespace wm::sim {

using story::Choice;
using story::Segment;
using story::SegmentId;
using story::StoryGraph;
using util::Duration;
using util::SimTime;

std::string to_string(AppFlow flow) {
  return flow == AppFlow::kCdn ? "CDN" : "API";
}

std::vector<Choice> SessionGroundTruth::choices() const {
  std::vector<Choice> out;
  out.reserve(questions.size());
  for (const QuestionOutcome& q : questions) out.push_back(q.choice);
  return out;
}

namespace {

/// Engine state wrapped in a class so helpers share context.
class TraceBuilder {
 public:
  TraceBuilder(const StoryGraph& graph, const std::vector<Choice>& choices,
               const TrafficProfile& profile, const StreamingConfig& config,
               util::Rng& rng)
      : graph_(graph),
        choices_(choices),
        profile_(profile),
        config_(config),
        rng_(rng),
        identity_(PlaybackIdentity::sample(rng)) {}

  AppTrace run() {
    // Playback starts shortly after the connections come up; the
    // packetizer inserts the handshakes before this.
    clock_ = SimTime::from_seconds(0.8);
    schedule_telemetry(clock_);

    SegmentId current = graph_.start();
    std::size_t next_choice_index = 0;

    while (current != story::kInvalidSegment) {
      const Segment& seg = graph_.segment(current);
      trace_.truth.path.push_back(current);

      if (seg.is_ending) {
        stream_segment_chunks(current, seg, /*skip_chunks=*/0);
        trace_.truth.reached_ending = true;
        break;
      }

      if (!seg.has_choice()) {
        stream_segment_chunks(current, seg, carried_prefetch_chunks_);
        carried_prefetch_chunks_ = 0;
        current = seg.next;
        continue;
      }

      // Segment with a choice point.
      stream_segment_chunks(current, seg, carried_prefetch_chunks_);
      carried_prefetch_chunks_ = 0;

      if (next_choice_index >= choices_.size()) break;  // viewer walked away
      const Choice choice = choices_[next_choice_index++];
      current = run_choice_point(current, seg, choice);
    }

    emit_telemetry_until(clock_);
    std::stable_sort(trace_.events.begin(), trace_.events.end(),
                     [](const AppEvent& a, const AppEvent& b) { return a.time < b.time; });
    trace_.session_length = clock_ - SimTime();
    return std::move(trace_);
  }

 private:
  [[nodiscard]] Duration scaled(Duration d) const { return d * config_.time_scale; }

  [[nodiscard]] std::size_t chunk_bytes() {
    std::uint32_t kbps = config_.bitrate_kbps;
    if (config_.adaptive_bitrate && !config_.bitrate_ladder_kbps.empty()) {
      maybe_switch_quality();
      kbps = config_.bitrate_ladder_kbps[quality_level_];
    }
    return static_cast<std::size_t>(static_cast<double>(kbps) * 1000.0 / 8.0 *
                                    config_.chunk_seconds);
  }

  /// ABR controller: random-walk over the ladder, biased downward under
  /// higher simulated load (night/wireless conditions).
  void maybe_switch_quality() {
    const auto params = NetworkModel::params_for(profile_.conditions);
    // Switch on ~20% of chunks; heavier load biases down.
    if (!rng_.bernoulli(0.2)) return;
    const double down_bias = std::min(0.9, 0.35 * params.load_factor);
    const std::size_t top = config_.bitrate_ladder_kbps.size() - 1;
    if (rng_.bernoulli(down_bias)) {
      if (quality_level_ > 0) --quality_level_;
    } else if (quality_level_ < top) {
      ++quality_level_;
    }
  }

  [[nodiscard]] std::size_t chunks_in(const Segment& seg) const {
    const double seconds = scaled(seg.duration).to_seconds();
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(seconds / config_.chunk_seconds)));
  }

  void emit_client(AppFlow flow, SimTime t, ClientMessageKind kind,
                   std::string note, std::size_t question_index = 0,
                   SegmentId segment = story::kInvalidSegment) {
    AppEvent event;
    event.time = t;
    event.flow = flow;
    event.from_client = true;
    event.client_kind = kind;
    event.plaintext_size = profile_.sample_plaintext(kind, rng_);
    event.note = std::move(note);
    event.question_index = question_index;
    event.segment = segment;
    trace_.events.push_back(std::move(event));
  }

  /// Request + receive one media chunk; returns the event index of the
  /// server chunk (so prefetch abort can annotate it).
  std::size_t emit_chunk(SimTime t, SegmentId segment, std::size_t chunk_index,
                         bool prefetch) {
    chunk_bytes_current_ = chunk_bytes();
    emit_client(AppFlow::kCdn, t, ClientMessageKind::kChunkRequest,
                util::format("GET %s chunk %zu",
                             graph_.segment(segment).name.c_str(), chunk_index),
                0, segment);
    {
      // Render the request as real HTTP bytes sized to the sample.
      AppEvent& event = trace_.events.back();
      const std::size_t bytes = chunk_bytes_current_;
      const HttpRequest request = make_chunk_request(
          profile_.tls.sni, graph_.segment(segment).name, chunk_index,
          static_cast<std::uint64_t>(chunk_index) * bytes, bytes,
          event.plaintext_size, rng_);
      event.state_json = request.serialize();
      event.plaintext_size = event.state_json.size();
    }
    AppEvent data;
    data.time = t + Duration::millis(8);
    data.flow = AppFlow::kCdn;
    data.from_client = false;
    data.plaintext_size = chunk_bytes_current_;
    data.note = util::format("%s chunk %zu%s", graph_.segment(segment).name.c_str(),
                             chunk_index, prefetch ? " (prefetch)" : "");
    data.segment = segment;
    data.is_prefetch = prefetch;
    trace_.events.push_back(std::move(data));
    return trace_.events.size() - 1;
  }

  /// Stream all chunks of a segment, pacing fetches at chunk cadence
  /// after an initial buffer burst. `skip_chunks` were already
  /// prefetched during the previous choice window.
  void stream_segment_chunks(SegmentId id, const Segment& seg,
                             std::size_t skip_chunks) {
    const std::size_t total = chunks_in(seg);
    const Duration cadence = Duration::from_seconds(config_.chunk_seconds);
    SimTime t = clock_;
    for (std::size_t i = skip_chunks; i < total; ++i) {
      const bool buffered_burst = i < skip_chunks + config_.startup_buffer_chunks;
      emit_chunk(t, id, i, /*prefetch=*/false);
      t += buffered_burst ? Duration::millis(120) : cadence;
      emit_telemetry_until(t);
    }
    // Playback time dominates the wall clock.
    clock_ += scaled(seg.duration);
    emit_telemetry_until(clock_);
  }

  /// Handle the question at the end of `seg`; returns the next segment.
  SegmentId run_choice_point(SegmentId id, const Segment& seg, Choice choice) {
    const story::ChoicePoint& cp = *seg.choice;
    // The choice window is a UI constant (10 s in the film): it does
    // NOT shrink with time_scale, which only compresses script content.
    const Duration window = Duration::from_seconds(config_.choice_window_seconds);

    // Question appears: type-1 JSON (Fig. 1) — a real document whose
    // compact serialization has the profile-sampled size.
    const std::size_t question_index = trace_.truth.questions.size() + 1;
    const SimTime question_time = clock_;
    emit_client(AppFlow::kApi, question_time, ClientMessageKind::kType1Json,
                util::format("Q%zu appears: \"%s\" -> type-1 JSON", question_index,
                             cp.prompt.c_str()),
                question_index, id);
    {
      AppEvent& event = trace_.events.back();
      const util::JsonValue doc = make_type1_state(
          identity_, question_index, seg.name, question_time, /*target_size=*/0);
      const HttpRequest post =
          make_state_post("www.netflix.com", serialize_state(doc),
                          event.plaintext_size);
      event.state_json = post.serialize();
      event.plaintext_size = event.state_json.size();
    }

    // Viewer decides somewhere inside the window.
    const double frac = rng_.uniform(config_.decision_min_fraction,
                                     config_.decision_max_fraction);
    const SimTime decision_time = question_time + window * frac;

    // Prefetch default-branch chunks during the window. Normally the
    // prefetch stops at the (observable) decision; under the uniform-
    // upload defence the player keeps prefetching to the window's end
    // so the prefetch pattern is choice-independent too.
    const SimTime window_end = question_time + window;
    const SimTime prefetch_until =
        config_.uniform_decision_uploads ? window_end : decision_time;
    const SegmentId default_next = cp.default_next;
    const Duration prefetch_cadence = Duration::from_seconds(
        std::max(config_.chunk_seconds * 0.35, 0.05));
    std::vector<std::size_t> prefetched_event_indices;
    SimTime t = question_time + Duration::millis(60);
    std::size_t prefetch_count = 0;
    const std::size_t prefetch_cap = chunks_in(graph_.segment(default_next));
    while (t < prefetch_until && prefetch_count < prefetch_cap) {
      prefetched_event_indices.push_back(
          emit_chunk(t, default_next, prefetch_count, /*prefetch=*/true));
      ++prefetch_count;
      t += prefetch_cadence;
    }

    QuestionOutcome outcome;
    outcome.index = question_index;
    outcome.segment = id;
    outcome.prompt = cp.prompt;
    outcome.choice = choice;
    outcome.question_time = question_time;
    outcome.decision_time = decision_time;
    trace_.truth.questions.push_back(outcome);

    if (config_.uniform_decision_uploads) {
      // Timing defence: EVERY question produces exactly one upload, of
      // type-2 shape, at the window's end — a real override for
      // non-default picks, a decoy otherwise.
      const bool overridden = choice == Choice::kNonDefault;
      emit_client(AppFlow::kApi, window_end,
                  overridden ? ClientMessageKind::kType2Json
                             : ClientMessageKind::kDecoyUpload,
                  util::format("Q%zu: uniform upload at window end (%s)",
                               question_index, overridden ? "override" : "decoy"),
                  question_index, id);
      if (overridden) {
        AppEvent& event = trace_.events.back();
        const util::JsonValue doc = make_type2_state(
            identity_, question_index, cp.non_default_label,
            graph_.segment(cp.non_default_next).name, window_end,
            /*target_size=*/0);
        const HttpRequest post =
            make_state_post("www.netflix.com", serialize_state(doc),
                            event.plaintext_size);
        event.state_json = post.serialize();
        event.plaintext_size = event.state_json.size();
      }
      clock_ = window_end + Duration::millis(40);
      if (overridden) {
        for (std::size_t event_index : prefetched_event_indices) {
          trace_.events[event_index].prefetch_aborted = true;
        }
        carried_prefetch_chunks_ = 0;
        return cp.non_default_next;
      }
      carried_prefetch_chunks_ = prefetch_count;
      return default_next;
    }

    clock_ = decision_time;

    if (choice == Choice::kDefault) {
      // Streaming continues uninterrupted; prefetched chunks count
      // toward the next segment.
      carried_prefetch_chunks_ = prefetch_count;
      return default_next;
    }

    // Non-default: type-2 JSON, prefetch abandoned, request Si'.
    emit_client(AppFlow::kApi, decision_time, ClientMessageKind::kType2Json,
                util::format("Q%zu: viewer picks \"%s\" (non-default) -> type-2 JSON",
                             question_index, cp.non_default_label.c_str()),
                question_index, id);
    {
      AppEvent& event = trace_.events.back();
      const util::JsonValue doc = make_type2_state(
          identity_, question_index, cp.non_default_label,
          graph_.segment(cp.non_default_next).name, decision_time,
          /*target_size=*/0);
      const HttpRequest post =
          make_state_post("www.netflix.com", serialize_state(doc),
                          event.plaintext_size);
      event.state_json = post.serialize();
      event.plaintext_size = event.state_json.size();
    }
    for (std::size_t event_index : prefetched_event_indices) {
      trace_.events[event_index].prefetch_aborted = true;
    }
    carried_prefetch_chunks_ = 0;
    clock_ += Duration::millis(40);  // request turnaround
    return cp.non_default_next;
  }

  void schedule_telemetry(SimTime from) {
    // Telemetry cadence is a player constant, not script content: it is
    // not compressed by time_scale.
    const double period = profile_.telemetry_period_seconds /
                          std::max(config_.telemetry_rate_multiplier, 1e-9);
    next_telemetry_ = from + Duration::from_seconds(period * rng_.uniform(0.4, 1.0));
  }

  void emit_telemetry_until(SimTime t) {
    while (next_telemetry_ < t) {
      const bool batch = rng_.bernoulli(profile_.log_batch_probability);
      emit_client(AppFlow::kApi, next_telemetry_,
                  batch ? ClientMessageKind::kLogBatch
                        : ClientMessageKind::kTelemetry,
                  batch ? "log batch" : "playback telemetry");
      const double period = profile_.telemetry_period_seconds /
                            std::max(config_.telemetry_rate_multiplier, 1e-9);
      next_telemetry_ += Duration::from_seconds(period * rng_.uniform(0.7, 1.3));
    }
  }

  const StoryGraph& graph_;
  const std::vector<Choice>& choices_;
  const TrafficProfile& profile_;
  const StreamingConfig& config_;
  util::Rng& rng_;

  AppTrace trace_;
  PlaybackIdentity identity_;
  std::size_t quality_level_ = 1;  // ABR: start one rung above lowest
  std::size_t chunk_bytes_current_ = 0;
  SimTime clock_;
  SimTime next_telemetry_;
  std::size_t carried_prefetch_chunks_ = 0;
};

}  // namespace

AppTrace simulate_app_trace(const StoryGraph& graph,
                            const std::vector<Choice>& choices,
                            const TrafficProfile& profile,
                            const StreamingConfig& config, util::Rng& rng) {
  TraceBuilder builder(graph, choices, profile, config, rng);
  return builder.run();
}

}  // namespace wm::sim
