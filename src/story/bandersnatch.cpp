#include "wm/story/bandersnatch.hpp"

#include <stdexcept>

namespace wm::story {

namespace {

using util::Duration;

/// Builder that lets the script below read like a script.
class GraphBuilder {
 public:
  SegmentId add_linear(std::string name, int seconds, SegmentId next) {
    Segment seg;
    seg.name = std::move(name);
    seg.duration = Duration::seconds(seconds);
    seg.next = next;
    return push(std::move(seg));
  }

  SegmentId add_choice(std::string name, int seconds, std::string prompt,
                       std::string default_label, SegmentId default_next,
                       std::string non_default_label, SegmentId non_default_next) {
    Segment seg;
    seg.name = std::move(name);
    seg.duration = Duration::seconds(seconds);
    ChoicePoint cp;
    cp.prompt = std::move(prompt);
    cp.default_label = std::move(default_label);
    cp.non_default_label = std::move(non_default_label);
    cp.default_next = default_next;
    cp.non_default_next = non_default_next;
    seg.choice = std::move(cp);
    return push(std::move(seg));
  }

  SegmentId add_ending(std::string name, int seconds) {
    Segment seg;
    seg.name = std::move(name);
    seg.duration = Duration::seconds(seconds);
    seg.is_ending = true;
    return push(std::move(seg));
  }

  /// Reserve an id now, fill it later (for forward references).
  SegmentId reserve() {
    segments_.emplace_back();
    return static_cast<SegmentId>(segments_.size() - 1);
  }

  void fill_linear(SegmentId id, std::string name, int seconds, SegmentId next) {
    Segment seg;
    seg.name = std::move(name);
    seg.duration = Duration::seconds(seconds);
    seg.next = next;
    segments_.at(id) = std::move(seg);
  }

  void fill_choice(SegmentId id, std::string name, int seconds, std::string prompt,
                   std::string default_label, SegmentId default_next,
                   std::string non_default_label, SegmentId non_default_next) {
    Segment seg;
    seg.name = std::move(name);
    seg.duration = Duration::seconds(seconds);
    ChoicePoint cp;
    cp.prompt = std::move(prompt);
    cp.default_label = std::move(default_label);
    cp.non_default_label = std::move(non_default_label);
    cp.default_next = default_next;
    cp.non_default_next = non_default_next;
    seg.choice = std::move(cp);
    segments_.at(id) = std::move(seg);
  }

  StoryGraph build(std::string title, SegmentId start) {
    return StoryGraph(std::move(title), start, std::move(segments_));
  }

 private:
  SegmentId push(Segment seg) {
    segments_.push_back(std::move(seg));
    return static_cast<SegmentId>(segments_.size() - 1);
  }

  std::vector<Segment> segments_;
};

}  // namespace

StoryGraph make_bandersnatch() {
  GraphBuilder b;

  // Build from the endings backwards so most edges are backward
  // references; a few forward references use reserve()/fill_*.

  // --- Endings -----------------------------------------------------
  const SegmentId end_credits_low = b.add_ending("ENDING_ZERO_STARS", 90);
  const SegmentId end_prison = b.add_ending("ENDING_PRISON", 150);
  const SegmentId end_five_stars = b.add_ending("ENDING_FIVE_STARS", 180);
  const SegmentId end_train = b.add_ending("ENDING_TRAIN_MEMORY", 160);
  const SegmentId end_netflix = b.add_ending("ENDING_NETFLIX_META", 140);

  // --- Act 3: the crunch -------------------------------------------
  // Q12: what to do with the body.
  const SegmentId q12 = b.add_choice(
      "BODY_DILEMMA", 120, "Bury body or chop up body?",
      "Bury body", end_prison,        // S12: buried -> found -> prison
      "Chop up body", end_five_stars  // S12': game ships, 5 stars
  );

  // Q11: confront dad.
  const SegmentId back_off_path = b.add_linear("BACK_OFF_COOLDOWN", 75, end_credits_low);
  const SegmentId q11 = b.add_choice(
      "DAD_CONFRONTATION", 95, "Kill dad or back off?",
      "Back off", back_off_path,  // S11
      "Kill dad", q12             // S11'
  );

  // Q10: frustration at the desk.
  const SegmentId q10 = b.add_choice(
      "DESK_FRUSTRATION", 80, "Destroy computer or hit desk?",
      "Hit desk", q11,              // S10
      "Destroy computer", end_credits_low  // S10': game unfinished
  );

  // Q9: the tea moment (quoted in the paper's introduction).
  const SegmentId q9 = b.add_choice(
      "TEA_MOMENT", 70, "Throw tea over computer or shout at dad?",
      "Shout at dad", q10,          // S9
      "Throw tea over computer", q11  // S9'
  );

  // --- Act 2b: Colin's flat ----------------------------------------
  // Q8: the balcony.
  const SegmentId q8 = b.add_choice(
      "BALCONY", 110, "Who jumps: Colin or you?",
      "Colin jumps", q9,        // S8 — story continues darker
      "You jump", end_credits_low  // S8' — abrupt ending
  );

  // Q7: the acid.
  const SegmentId refused_lsd = b.add_linear("SPIKED_TEA_ANYWAY", 60, q8);
  const SegmentId q7 = b.add_choice(
      "COLINS_FLAT", 100, "Take LSD or refuse?",
      "Refuse", refused_lsd,  // S7 — Colin spikes the tea regardless
      "Take LSD", q8          // S7'
  );

  // --- Act 2a: therapy track ----------------------------------------
  // Q6: nervous habit (merges back into the main line at Q9).
  const SegmentId q6 = b.add_choice(
      "THERAPY_SESSION", 85, "Bite nails or pull earlobe?",
      "Pull earlobe", q9,  // S6
      "Bite nails", q9     // S6' — same next segment, different JSON path
  );

  // Q5: the paper's second quoted question.
  const SegmentId q5 = b.add_choice(
      "STREET_SPLIT", 65, "Visit therapist or follow Colin?",
      "Visit therapist", q6,  // S5
      "Follow Colin", q7      // S5'
  );

  // Q4: in Dr Haynes' office, only on the therapist track re-entry.
  const SegmentId q4 = b.add_choice(
      "HAYNES_OFFICE", 75, "Talk about mum or not now?",
      "Not now", q5,          // S4
      "Talk about mum", end_train  // S4' — early traumatic ending
  );

  // --- Act 1: Tuckersoft --------------------------------------------
  // A meta branch: accepting the job leads to a final fourth-wall
  // question that can reach the Netflix-aware ending, so all five
  // endings are live.
  const SegmentId q_meta = b.add_choice(
      "PACS_DILEMMA", 50, "Who is controlling you? Netflix or PACS?",
      "PACS", end_credits_low,  // S13
      "Netflix", end_netflix    // S13'
  );

  // Q3: the job offer. Accepting ends the story early with a bad game
  // (zero stars) unless the meta branch intervenes; refusing continues
  // at home.
  const SegmentId work_montage = b.add_linear("TUCKERSOFT_MONTAGE", 55, q_meta);
  const SegmentId home_work = b.add_linear("HOME_CODING", 70, q4);
  const SegmentId q3 = b.add_choice(
      "TUCKERSOFT_OFFER", 90, "Accept or refuse the job offer?",
      "Refuse", home_work,   // S3 — the 'correct' path
      "Accept", work_montage  // S3'
  );

  // Q2: music on the bus (paper's Table/intro example of benign taste).
  const SegmentId q2 = b.add_choice(
      "BUS_RIDE", 60, "Thompson Twins or Now 2?",
      "Thompson Twins", q3,  // S2
      "Now 2", q3            // S2' — same next segment, different state
  );

  // Q1: breakfast (the paper's first quoted question).
  const SegmentId q1 = b.add_choice(
      "BREAKFAST", 45, "Frosties or Sugar Puffs?",
      "Sugar Puffs", q2,  // S1
      "Frosties", q2      // S1'
  );

  // Segment 0: common opening, as in Fig. 1.
  const SegmentId opening = b.add_linear("SEGMENT_0_OPENING", 210, q1);

  return b.build("Black Mirror: Bandersnatch (reproduction)", opening);
}

}  // namespace wm::story
