#include "wm/story/generator.hpp"

#include <stdexcept>

#include "wm/util/strings.hpp"

namespace wm::story {

StoryGraph generate_story(GeneratorConfig config, util::Rng& rng) {
  if (config.questions == 0) {
    throw std::invalid_argument("generate_story: need at least one question");
  }
  if (config.min_segment_seconds <= 0 ||
      config.max_segment_seconds < config.min_segment_seconds) {
    throw std::invalid_argument("generate_story: bad segment duration bounds");
  }

  std::vector<Segment> segments;
  auto duration = [&] {
    return util::Duration::seconds(
        rng.uniform_int(config.min_segment_seconds, config.max_segment_seconds));
  };
  auto add = [&](Segment seg) {
    segments.push_back(std::move(seg));
    return static_cast<SegmentId>(segments.size() - 1);
  };

  // Final ending that the spine converges to.
  Segment final_ending;
  final_ending.name = "GEN_ENDING_MAIN";
  final_ending.duration = duration();
  final_ending.is_ending = true;
  const SegmentId main_ending = add(std::move(final_ending));

  // Build the spine backwards: question N -> ... -> question 1 -> start.
  SegmentId next_on_spine = main_ending;
  for (std::size_t q = config.questions; q >= 1; --q) {
    // Non-default branch target.
    SegmentId non_default_target = kInvalidSegment;
    if (rng.bernoulli(config.early_ending_probability)) {
      Segment early;
      early.name = util::format("GEN_ENDING_Q%zu", q);
      early.duration = duration();
      early.is_ending = true;
      non_default_target = add(std::move(early));
    } else if (rng.bernoulli(config.merge_probability)) {
      non_default_target = next_on_spine;  // immediate merge
    } else {
      Segment detour;
      detour.name = util::format("GEN_DETOUR_Q%zu", q);
      detour.duration = duration();
      detour.next = next_on_spine;
      non_default_target = add(std::move(detour));
    }

    Segment question;
    question.name = util::format("GEN_Q%zu", q);
    question.duration = duration();
    ChoicePoint cp;
    cp.prompt = util::format("Generated question %zu?", q);
    cp.default_label = "Option A";
    cp.non_default_label = "Option B";
    cp.default_next = next_on_spine;
    cp.non_default_next = non_default_target;
    question.choice = std::move(cp);
    next_on_spine = add(std::move(question));

    // Occasionally interleave a linear segment before the question.
    if (rng.bernoulli(0.5)) {
      Segment filler;
      filler.name = util::format("GEN_LINEAR_BEFORE_Q%zu", q);
      filler.duration = duration();
      filler.next = next_on_spine;
      next_on_spine = add(std::move(filler));
    }
  }

  Segment opening;
  opening.name = "GEN_OPENING";
  opening.duration = duration();
  opening.next = next_on_spine;
  const SegmentId start = add(std::move(opening));

  StoryGraph graph(util::format("Generated story (%zu questions)", config.questions),
                   start, std::move(segments));
  return graph;
}

}  // namespace wm::story
