#include "wm/story/graph.hpp"

#include <set>
#include <stdexcept>

#include "wm/util/strings.hpp"

namespace wm::story {

std::string to_string(Choice choice) {
  return choice == Choice::kDefault ? "default" : "non-default";
}

std::string choice_notation(std::size_t question_index, Choice choice) {
  std::string out = "S" + std::to_string(question_index);
  if (choice == Choice::kNonDefault) out += "'";
  return out;
}

StoryGraph::StoryGraph(std::string title, SegmentId start,
                       std::vector<Segment> segments)
    : title_(std::move(title)), start_(start), segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("StoryGraph: no segments");
  }
  if (start_ >= segments_.size()) {
    throw std::invalid_argument("StoryGraph: start segment out of range");
  }
}

const Segment& StoryGraph::segment(SegmentId id) const {
  if (id >= segments_.size()) {
    throw std::out_of_range("StoryGraph::segment: id " + std::to_string(id) +
                            " out of range");
  }
  return segments_[id];
}

std::vector<std::string> StoryGraph::validate() const {
  std::vector<std::string> problems;
  auto check_edge = [&](SegmentId from, SegmentId to, const char* kind) {
    if (to == kInvalidSegment || to >= segments_.size()) {
      problems.push_back(util::format("segment %u (%s): %s edge is invalid", from,
                                      segments_[from].name.c_str(), kind));
    }
  };

  bool has_ending = false;
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    const Segment& seg = segments_[id];
    if (seg.is_ending) {
      has_ending = true;
      if (seg.has_choice()) {
        problems.push_back(
            util::format("segment %u (%s): ending has a choice point", id,
                         seg.name.c_str()));
      }
      continue;
    }
    if (seg.has_choice()) {
      check_edge(id, seg.choice->default_next, "default");
      check_edge(id, seg.choice->non_default_next, "non-default");
    } else {
      check_edge(id, seg.next, "pass-through");
    }
    if (seg.duration <= util::Duration()) {
      problems.push_back(util::format("segment %u (%s): non-positive duration", id,
                                      seg.name.c_str()));
    }
  }
  if (!has_ending) problems.emplace_back("graph has no ending segment");

  // Reachability of at least one ending from start.
  std::set<SegmentId> visited;
  std::vector<SegmentId> stack{start_};
  bool ending_reachable = false;
  while (!stack.empty()) {
    const SegmentId id = stack.back();
    stack.pop_back();
    if (id == kInvalidSegment || id >= segments_.size()) continue;
    if (!visited.insert(id).second) continue;
    const Segment& seg = segments_[id];
    if (seg.is_ending) {
      ending_reachable = true;
      continue;
    }
    if (seg.has_choice()) {
      stack.push_back(seg.choice->default_next);
      stack.push_back(seg.choice->non_default_next);
    } else {
      stack.push_back(seg.next);
    }
  }
  if (!ending_reachable) {
    problems.emplace_back("no ending is reachable from the start segment");
  }
  return problems;
}

StoryGraph::Traversal StoryGraph::traverse(const std::vector<Choice>& choices) const {
  Traversal out;
  SegmentId current = start_;
  std::size_t next_choice = 0;
  // Guard against cycles that consume no choices.
  std::size_t steps = 0;
  const std::size_t step_limit = segments_.size() * (choices.size() + 2) + 16;

  while (current != kInvalidSegment && current < segments_.size() &&
         steps++ < step_limit) {
    out.path.push_back(current);
    const Segment& seg = segments_[current];
    if (seg.is_ending) {
      out.reached_ending = true;
      break;
    }
    if (seg.has_choice()) {
      if (next_choice >= choices.size()) break;  // viewer stopped watching
      out.questions.push_back(current);
      const Choice choice = choices[next_choice++];
      ++out.choices_consumed;
      current = choice == Choice::kDefault ? seg.choice->default_next
                                           : seg.choice->non_default_next;
    } else {
      current = seg.next;
    }
  }
  return out;
}

std::size_t StoryGraph::max_questions() const {
  return choice_segments().size();
}

std::vector<SegmentId> StoryGraph::choice_segments() const {
  std::vector<SegmentId> out;
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    if (segments_[id].has_choice()) out.push_back(id);
  }
  return out;
}

}  // namespace wm::story
